#include "doc/document.h"

#include <algorithm>

#include "cpnet/serialize.h"
#include "cpnet/update.h"

namespace mmconf::doc {

using cpnet::Assignment;
using cpnet::kUnassigned;
using cpnet::ValueId;
using cpnet::VarId;

Status MultimediaDocument::BindTree() {
  ++structure_version_;
  flat_ = FlattenTree(root_.get());
  if (flat_.empty()) {
    return Status::InvalidArgument("document has no components");
  }
  by_name_.clear();
  parent_index_.assign(flat_.size(), -1);
  // Recompute parent indices by walking composites.
  std::map<const MultimediaComponent*, int> index_of;
  for (size_t i = 0; i < flat_.size(); ++i) {
    index_of[flat_[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < flat_.size(); ++i) {
    if (const CompositeMultimediaComponent* composite =
            flat_[i]->AsComposite()) {
      for (const auto& child : composite->children()) {
        parent_index_[static_cast<size_t>(index_of[child.get()])] =
            static_cast<int>(i);
      }
    }
  }
  for (const MultimediaComponent* component : flat_) {
    if (by_name_.count(component->name()) > 0) {
      return Status::InvalidArgument("duplicate component name \"" +
                                     component->name() + "\"");
    }
    std::vector<std::string> domain = component->DomainValueNames();
    if (domain.empty()) {
      return Status::InvalidArgument("component \"" + component->name() +
                                     "\" has no presentation options");
    }
    VarId var = net_.AddVariable(component->name(), domain);
    by_name_.emplace(component->name(), var);
    // Default author preference: domain order.
    cpnet::PreferenceRanking ranking(domain.size());
    for (size_t k = 0; k < domain.size(); ++k) {
      ranking[k] = static_cast<ValueId>(k);
    }
    MMCONF_RETURN_IF_ERROR(net_.SetUnconditionalPreference(var, ranking));
  }
  return net_.Validate();
}

Result<MultimediaDocument> MultimediaDocument::Create(
    std::unique_ptr<MultimediaComponent> root) {
  if (root == nullptr) {
    return Status::InvalidArgument("document root must not be null");
  }
  MultimediaDocument document;
  document.root_ = std::move(root);
  MMCONF_RETURN_IF_ERROR(document.BindTree());
  return document;
}

Result<VarId> MultimediaDocument::VarOf(
    const std::string& component_name) const {
  auto it = by_name_.find(component_name);
  if (it != by_name_.end()) return it->second;
  // Extension variables (operation variables, bandwidth tuning) are not
  // components but are addressable for evidence purposes.
  Result<VarId> extension = net_.FindVariable(component_name);
  if (extension.ok()) return extension;
  return Status::NotFound("no component named \"" + component_name + "\"");
}

Result<const MultimediaComponent*> MultimediaDocument::Find(
    const std::string& component_name) const {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component_name));
  if (static_cast<size_t>(var) >= flat_.size()) {
    return Status::NotFound("\"" + component_name +
                            "\" is an extension variable, not a component");
  }
  return flat_[static_cast<size_t>(var)];
}

Status MultimediaDocument::SetParentsByName(
    const std::string& component, const std::vector<std::string>& parents) {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component));
  std::vector<VarId> parent_vars;
  for (const std::string& parent : parents) {
    MMCONF_ASSIGN_OR_RETURN(VarId parent_var, VarOf(parent));
    parent_vars.push_back(parent_var);
  }
  return net_.SetParents(var, parent_vars);
}

namespace {

Result<ValueId> ValueByName(const cpnet::CpNet& net, VarId var,
                            const std::string& value_name) {
  const std::vector<std::string>& names = net.ValueNames(var);
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == value_name) return static_cast<ValueId>(i);
  }
  return Status::InvalidArgument("component \"" + net.VariableName(var) +
                                 "\" has no presentation \"" + value_name +
                                 "\"");
}

}  // namespace

Status MultimediaDocument::SetPreferenceByName(
    const std::string& component,
    const std::vector<std::string>& parent_values,
    const std::vector<std::string>& ranking) {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component));
  const std::vector<VarId>& parents = net_.Parents(var);
  if (parent_values.size() != parents.size()) {
    return Status::InvalidArgument(
        "component \"" + component + "\" has " +
        std::to_string(parents.size()) + " parents, got " +
        std::to_string(parent_values.size()) + " values");
  }
  std::vector<ValueId> parent_ids;
  for (size_t i = 0; i < parents.size(); ++i) {
    MMCONF_ASSIGN_OR_RETURN(ValueId value,
                            ValueByName(net_, parents[i], parent_values[i]));
    parent_ids.push_back(value);
  }
  cpnet::PreferenceRanking ranking_ids;
  for (const std::string& value_name : ranking) {
    MMCONF_ASSIGN_OR_RETURN(ValueId value,
                            ValueByName(net_, var, value_name));
    ranking_ids.push_back(value);
  }
  return net_.SetPreference(var, parent_ids, std::move(ranking_ids));
}

Status MultimediaDocument::SetUnconditionalPreferenceByName(
    const std::string& component, const std::vector<std::string>& ranking) {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component));
  cpnet::PreferenceRanking ranking_ids;
  for (const std::string& value_name : ranking) {
    MMCONF_ASSIGN_OR_RETURN(ValueId value,
                            ValueByName(net_, var, value_name));
    ranking_ids.push_back(value);
  }
  return net_.SetUnconditionalPreference(var, ranking_ids);
}

Status MultimediaDocument::Finalize() { return net_.Validate(); }

Result<Assignment> MultimediaDocument::DefaultPresentation() const {
  return net_.OptimalOutcome();
}

Result<Assignment> MultimediaDocument::EvidenceFrom(
    const std::vector<ViewerChoice>& events) const {
  Assignment evidence(net_.num_variables());
  for (const ViewerChoice& event : events) {
    MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(event.component));
    if (event.presentation.empty()) {
      evidence.Clear(var);
      continue;
    }
    MMCONF_ASSIGN_OR_RETURN(ValueId value,
                            ValueByName(net_, var, event.presentation));
    evidence.Set(var, value);
  }
  return evidence;
}

Result<Assignment> MultimediaDocument::ReconfigPresentation(
    const std::vector<ViewerChoice>& events) const {
  MMCONF_ASSIGN_OR_RETURN(Assignment evidence, EvidenceFrom(events));
  return net_.OptimalCompletion(evidence);
}

Result<MMPresentation> MultimediaDocument::PresentationFor(
    const Assignment& configuration,
    const std::string& component_name) const {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component_name));
  if (configuration.size() != net_.num_variables() ||
      !configuration.IsAssigned(var)) {
    return Status::InvalidArgument(
        "configuration does not assign component \"" + component_name +
        "\"");
  }
  ValueId value = configuration.Get(var);
  if (static_cast<size_t>(var) >= flat_.size()) {
    // Extension variable: report its chosen value as a pseudo
    // presentation so callers can render it uniformly.
    MMPresentation pseudo;
    pseudo.name = net_.ValueNames(var)[static_cast<size_t>(value)];
    pseudo.kind = PresentationKind::kText;
    return pseudo;
  }
  const MultimediaComponent* component = flat_[static_cast<size_t>(var)];
  if (const PrimitiveMultimediaComponent* primitive =
          component->AsPrimitive()) {
    return primitive->PresentationAt(value);
  }
  MMPresentation pseudo;
  pseudo.name = net_.ValueNames(var)[static_cast<size_t>(value)];
  pseudo.kind = value == CompositeMultimediaComponent::kHidden
                    ? PresentationKind::kHidden
                    : PresentationKind::kText;
  return pseudo;
}

Result<bool> MultimediaDocument::IsVisible(
    const Assignment& configuration,
    const std::string& component_name) const {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component_name));
  if (configuration.size() != net_.num_variables()) {
    return Status::InvalidArgument("configuration size mismatch");
  }
  if (static_cast<size_t>(var) >= flat_.size()) {
    return true;  // Extension variables carry no content to hide.
  }
  int index = var;
  while (index >= 0) {
    const MultimediaComponent* component =
        flat_[static_cast<size_t>(index)];
    if (!configuration.IsAssigned(index)) {
      return Status::InvalidArgument("configuration does not assign \"" +
                                     component->name() + "\"");
    }
    ValueId value = configuration.Get(index);
    if (component->IsComposite()) {
      if (value == CompositeMultimediaComponent::kHidden) return false;
    } else {
      const PrimitiveMultimediaComponent* primitive =
          component->AsPrimitive();
      MMCONF_ASSIGN_OR_RETURN(MMPresentation presentation,
                              primitive->PresentationAt(value));
      if (presentation.kind == PresentationKind::kHidden) return false;
    }
    index = parent_index_[static_cast<size_t>(index)];
  }
  return true;
}

Status MultimediaDocument::ComputeVisibility(
    const Assignment& configuration, std::vector<char>* visible) const {
  if (configuration.size() != net_.num_variables()) {
    return Status::InvalidArgument("configuration size mismatch");
  }
  visible->assign(flat_.size(), 0);
  for (size_t i = 0; i < flat_.size(); ++i) {
    VarId var = static_cast<VarId>(i);
    if (!configuration.IsAssigned(var)) {
      return Status::InvalidArgument("configuration does not assign \"" +
                                     flat_[i]->name() + "\"");
    }
    ValueId value = configuration.Get(var);
    bool self_shown;
    if (const PrimitiveMultimediaComponent* primitive =
            flat_[i]->AsPrimitive()) {
      if (value < 0 ||
          static_cast<size_t>(value) >= primitive->presentations().size()) {
        return Status::OutOfRange("value outside domain of \"" +
                                  flat_[i]->name() + "\"");
      }
      self_shown = primitive->presentations()[static_cast<size_t>(value)]
                       .kind != PresentationKind::kHidden;
    } else {
      self_shown = value != CompositeMultimediaComponent::kHidden;
    }
    int parent = parent_index_[i];
    (*visible)[i] =
        self_shown && (parent < 0 || (*visible)[static_cast<size_t>(parent)]);
  }
  return Status::OK();
}

Result<size_t> MultimediaDocument::DeliveryCostBytes(
    const Assignment& configuration) const {
  size_t total = 0;
  for (size_t i = 0; i < flat_.size(); ++i) {
    const PrimitiveMultimediaComponent* primitive = flat_[i]->AsPrimitive();
    if (primitive == nullptr) continue;
    MMCONF_ASSIGN_OR_RETURN(bool visible,
                            IsVisible(configuration, primitive->name()));
    if (!visible) continue;
    MMCONF_ASSIGN_OR_RETURN(
        MMPresentation presentation,
        PresentationFor(configuration, primitive->name()));
    total += PresentationCostBytes(presentation,
                                   primitive->content().content_bytes);
  }
  return total;
}

namespace {

/// Mutable search for a composite by name.
CompositeMultimediaComponent* FindCompositeMutable(
    MultimediaComponent* node, const std::string& name) {
  if (node == nullptr || !node->IsComposite()) return nullptr;
  auto* composite = static_cast<CompositeMultimediaComponent*>(node);
  if (composite->name() == name) return composite;
  for (const auto& child : composite->children()) {
    if (CompositeMultimediaComponent* found =
            FindCompositeMutable(child.get(), name)) {
      return found;
    }
  }
  return nullptr;
}

/// Copies parents and CPT rankings from `from` into `to`, matching
/// variables by name. Variables of `from` absent from `to` (extension
/// variables) are appended first, so every parent reference resolves.
/// `to` variables with no counterpart (or a changed domain) keep their
/// current defaults.
Status TransplantPreferences(const cpnet::CpNet& from, cpnet::CpNet& to) {
  for (size_t f = 0; f < from.num_variables(); ++f) {
    VarId from_var = static_cast<VarId>(f);
    if (!to.FindVariable(from.VariableName(from_var)).ok()) {
      to.AddVariable(from.VariableName(from_var),
                     from.ValueNames(from_var));
    }
  }
  for (size_t f = 0; f < from.num_variables(); ++f) {
    VarId from_var = static_cast<VarId>(f);
    MMCONF_ASSIGN_OR_RETURN(VarId to_var,
                            to.FindVariable(from.VariableName(from_var)));
    if (to.ValueNames(to_var) != from.ValueNames(from_var)) {
      continue;  // Domain changed: keep the fresh defaults.
    }
    std::vector<VarId> parents;
    for (VarId from_parent : from.Parents(from_var)) {
      MMCONF_ASSIGN_OR_RETURN(
          VarId to_parent,
          to.FindVariable(from.VariableName(from_parent)));
      parents.push_back(to_parent);
    }
    MMCONF_RETURN_IF_ERROR(to.SetParents(to_var, parents));
    const cpnet::Cpt& cpt = from.CptOf(from_var);
    for (size_t row = 0; row < cpt.num_rows(); ++row) {
      MMCONF_ASSIGN_OR_RETURN(cpnet::PreferenceRanking ranking,
                              cpt.Ranking(row));
      MMCONF_RETURN_IF_ERROR(
          to.SetPreference(to_var, cpt.RowValues(row), std::move(ranking)));
    }
  }
  return to.Validate();
}

}  // namespace

Result<VarId> MultimediaDocument::AddComponent(
    const std::string& parent_composite,
    std::unique_ptr<PrimitiveMultimediaComponent> component) {
  if (component == nullptr) {
    return Status::InvalidArgument("component must not be null");
  }
  if (VarOf(component->name()).ok()) {
    return Status::AlreadyExists("component \"" + component->name() +
                                 "\" already exists");
  }
  CompositeMultimediaComponent* parent =
      FindCompositeMutable(root_.get(), parent_composite);
  if (parent == nullptr) {
    return Status::NotFound("no composite named \"" + parent_composite +
                            "\"");
  }
  std::string name = component->name();
  parent->AddChild(std::move(component));
  cpnet::CpNet old_net = std::move(net_);
  net_ = cpnet::CpNet();
  MMCONF_RETURN_IF_ERROR(BindTree());
  MMCONF_RETURN_IF_ERROR(TransplantPreferences(old_net, net_));
  return VarOf(name);
}

Status MultimediaDocument::RemoveComponent(
    const std::string& component_name) {
  MMCONF_ASSIGN_OR_RETURN(const MultimediaComponent* component,
                          Find(component_name));
  if (component == root_.get()) {
    return Status::InvalidArgument("cannot remove the document root");
  }
  if (const CompositeMultimediaComponent* composite =
          component->AsComposite()) {
    if (!composite->children().empty()) {
      return Status::FailedPrecondition(
          "remove the children of \"" + component_name + "\" first");
    }
  }
  // Restriction value: the component's hidden presentation, else 0.
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component_name));
  cpnet::ValueId restriction = 0;
  if (const PrimitiveMultimediaComponent* primitive =
          component->AsPrimitive()) {
    for (size_t v = 0; v < primitive->presentations().size(); ++v) {
      if (primitive->presentations()[v].kind == PresentationKind::kHidden) {
        restriction = static_cast<cpnet::ValueId>(v);
      }
    }
  } else {
    restriction = CompositeMultimediaComponent::kHidden;
  }
  MMCONF_ASSIGN_OR_RETURN(
      cpnet::CpNetEditor::RemovalResult removal,
      cpnet::CpNetEditor::RemoveComponent(net_, var, restriction));

  // Detach the node from its parent composite.
  int parent_flat = parent_index_[static_cast<size_t>(var)];
  CompositeMultimediaComponent* parent = FindCompositeMutable(
      root_.get(), flat_[static_cast<size_t>(parent_flat)]->name());
  if (parent == nullptr || !parent->RemoveChild(component_name)) {
    return Status::Internal("component tree inconsistent while removing \"" +
                            component_name + "\"");
  }

  // Rebind; the compacted net's variable order equals the new pre-order
  // (a leaf removal preserves the relative order of everything else), so
  // the edited net replaces the fresh defaults via transplant.
  cpnet::CpNet edited = std::move(removal.net);
  net_ = cpnet::CpNet();
  MMCONF_RETURN_IF_ERROR(BindTree());
  return TransplantPreferences(edited, net_);
}

Result<VarId> MultimediaDocument::AddOperationVariable(
    const std::string& component, const std::string& trigger_presentation,
    const std::string& op_name) {
  MMCONF_ASSIGN_OR_RETURN(VarId var, VarOf(component));
  MMCONF_ASSIGN_OR_RETURN(ValueId trigger,
                          ValueByName(net_, var, trigger_presentation));
  if (by_name_.count(op_name) > 0 || net_.FindVariable(op_name).ok()) {
    return Status::AlreadyExists("variable \"" + op_name +
                                 "\" already exists");
  }
  return cpnet::CpNetEditor::AddOperationVariable(
      net_, var, trigger, op_name, "applied", "plain");
}

Result<MultimediaDocument::ConfigurationDelta>
MultimediaDocument::DiffConfigurations(const Assignment& before,
                                       const Assignment& after) const {
  if (after.size() != net_.num_variables() || !after.IsComplete()) {
    return Status::InvalidArgument(
        "`after` must be a full assignment over the current network");
  }
  ConfigurationDelta delta;
  for (size_t i = 0; i < flat_.size(); ++i) {
    VarId var = static_cast<VarId>(i);
    bool changed = i >= before.size() || !before.IsAssigned(var) ||
                   before.Get(var) != after.Get(var);
    if (!changed) continue;
    const MultimediaComponent* component = flat_[i];
    delta.changed_components.push_back(component->name());
    delta.changed_vars.push_back(var);
    MMCONF_ASSIGN_OR_RETURN(bool visible,
                            IsVisible(after, component->name()));
    if (!visible || component->IsComposite()) continue;
    MMCONF_ASSIGN_OR_RETURN(MMPresentation presentation,
                            PresentationFor(after, component->name()));
    delta.redisplay_cost_bytes += PresentationCostBytes(
        presentation, component->AsPrimitive()->content().content_bytes);
  }
  return delta;
}

namespace {

void EncodeComponent(const MultimediaComponent* component, ByteWriter& w) {
  if (const CompositeMultimediaComponent* composite =
          component->AsComposite()) {
    w.PutU8(0);  // composite tag
    w.PutString(composite->name());
    w.PutVarint(composite->children().size());
    for (const auto& child : composite->children()) {
      EncodeComponent(child.get(), w);
    }
  } else {
    const PrimitiveMultimediaComponent* primitive = component->AsPrimitive();
    w.PutU8(1);  // primitive tag
    w.PutString(primitive->name());
    w.PutString(primitive->content().media_type);
    w.PutU64(primitive->content().object_id);
    w.PutU64(primitive->content().content_bytes);
    w.PutVarint(primitive->presentations().size());
    for (const MMPresentation& presentation : primitive->presentations()) {
      w.PutString(presentation.name);
      w.PutU8(static_cast<uint8_t>(presentation.kind));
      w.PutI32(presentation.resolution_drop);
    }
  }
}

Result<std::unique_ptr<MultimediaComponent>> DecodeComponent(ByteReader& r,
                                                             int depth) {
  if (depth > 64) return Status::Corruption("component tree too deep");
  MMCONF_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  MMCONF_ASSIGN_OR_RETURN(std::string name, r.GetString());
  if (tag == 0) {
    auto composite = std::make_unique<CompositeMultimediaComponent>(name);
    MMCONF_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    for (uint64_t i = 0; i < count; ++i) {
      MMCONF_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaComponent> child,
                              DecodeComponent(r, depth + 1));
      composite->AddChild(std::move(child));
    }
    return std::unique_ptr<MultimediaComponent>(std::move(composite));
  }
  if (tag != 1) return Status::Corruption("bad component tag");
  ContentRef content;
  MMCONF_ASSIGN_OR_RETURN(content.media_type, r.GetString());
  MMCONF_ASSIGN_OR_RETURN(content.object_id, r.GetU64());
  MMCONF_ASSIGN_OR_RETURN(uint64_t content_bytes, r.GetU64());
  content.content_bytes = content_bytes;
  MMCONF_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::vector<MMPresentation> presentations;
  for (uint64_t i = 0; i < count; ++i) {
    MMPresentation presentation;
    MMCONF_ASSIGN_OR_RETURN(presentation.name, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (kind > static_cast<uint8_t>(PresentationKind::kAudioSummary)) {
      return Status::Corruption("bad presentation kind");
    }
    presentation.kind = static_cast<PresentationKind>(kind);
    MMCONF_ASSIGN_OR_RETURN(presentation.resolution_drop, r.GetI32());
    presentations.push_back(std::move(presentation));
  }
  return std::unique_ptr<MultimediaComponent>(
      std::make_unique<PrimitiveMultimediaComponent>(
          name, std::move(content), std::move(presentations)));
}

}  // namespace

Bytes MultimediaDocument::Encode() const {
  ByteWriter w;
  w.PutU32(0x4d4d4443);  // "MMDC"
  EncodeComponent(root_.get(), w);
  w.PutString(cpnet::ToText(net_));
  return w.Take();
}

Result<MultimediaDocument> MultimediaDocument::Decode(const Bytes& bytes) {
  ByteReader r(bytes);
  MMCONF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != 0x4d4d4443) return Status::Corruption("bad document magic");
  MMCONF_ASSIGN_OR_RETURN(std::unique_ptr<MultimediaComponent> root,
                          DecodeComponent(r, 0));
  MMCONF_ASSIGN_OR_RETURN(std::string net_text, r.GetString());
  MMCONF_ASSIGN_OR_RETURN(MultimediaDocument document,
                          Create(std::move(root)));
  MMCONF_ASSIGN_OR_RETURN(cpnet::CpNet net, cpnet::FromText(net_text));
  // The serialized net replaces the default one; the leading variables
  // must match the tree binding (operation variables may follow).
  if (net.num_variables() < document.net_.num_variables()) {
    return Status::Corruption("CP-net does not match component tree");
  }
  for (size_t v = 0; v < document.net_.num_variables(); ++v) {
    if (net.VariableName(static_cast<VarId>(v)) !=
        document.net_.VariableName(static_cast<VarId>(v))) {
      return Status::Corruption("CP-net variable order mismatch");
    }
  }
  document.net_ = std::move(net);
  return document;
}

}  // namespace mmconf::doc
