#ifndef MMCONF_NET_NETWORK_H_
#define MMCONF_NET_NETWORK_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace mmconf::net {

/// Node in the simulated network (a client site, the interaction server,
/// or the database server).
using NodeId = int;

/// Directed link characteristics. Transfers on a link are serialized:
/// a message occupies the link for size/bandwidth seconds, then rides the
/// propagation latency. This is the bandwidth model behind the paper's
/// Section 4.4 concerns ("communication bandwidth limitations").
struct LinkSpec {
  double bandwidth_bytes_per_sec = 1e6;
  MicrosT latency_micros = 20000;
};

/// A delivered message.
struct Delivery {
  NodeId from = 0;
  NodeId to = 0;
  size_t bytes = 0;
  std::string tag;
  Bytes payload;
  MicrosT sent_at = 0;
  MicrosT delivered_at = 0;
};

/// Deterministic virtual-time network simulator. All time comes from the
/// shared Clock; Send() schedules a delivery, Advance*() moves the clock
/// and returns what arrived. The paper runs clients, interaction server
/// and Oracle on separate Internet sites; this simulator reproduces the
/// timing-relevant behaviour (bandwidth serialization, latency,
/// per-client asymmetry) in-process and reproducibly.
class Network {
 public:
  explicit Network(Clock* clock) : clock_(clock) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; returns its id.
  NodeId AddNode(std::string name);
  const std::string& NodeName(NodeId node) const;
  size_t num_nodes() const { return node_names_.size(); }

  /// Sets the directed link from -> to. Overwrites any existing spec.
  Status SetLink(NodeId from, NodeId to, const LinkSpec& spec);
  /// Sets both directions.
  Status SetDuplexLink(NodeId a, NodeId b, const LinkSpec& spec);
  Result<LinkSpec> GetLink(NodeId from, NodeId to) const;
  bool HasLink(NodeId from, NodeId to) const;

  /// Tears down the directed link (failure injection: a partitioned or
  /// crashed peer). In-flight deliveries already scheduled still arrive;
  /// subsequent Sends fail with NotFound. NotFound if no such link.
  Status RemoveLink(NodeId from, NodeId to);
  /// Tears down both directions (either missing direction is ignored).
  void Partition(NodeId a, NodeId b);

  /// Schedules a transfer of `bytes` (payload may be smaller or empty —
  /// `bytes` is what occupies the wire, e.g. an encoded image the caller
  /// does not want to copy). Returns the delivery timestamp.
  /// NotFound if no link exists.
  Result<MicrosT> Send(NodeId from, NodeId to, size_t bytes, std::string tag,
                       Bytes payload = {});

  /// Advances the clock just past the last scheduled delivery and
  /// returns all deliveries in timestamp order.
  std::vector<Delivery> AdvanceUntilIdle();

  /// Advances the clock to `t`, returning deliveries due at or before it.
  std::vector<Delivery> AdvanceTo(MicrosT t);

  /// Deliveries pending (scheduled but not yet collected).
  size_t pending() const { return pending_.size(); }

  /// Total bytes ever sent on from->to (0 if never used).
  size_t BytesSent(NodeId from, NodeId to) const;
  size_t TotalBytesSent() const { return total_bytes_; }

  Clock* clock() const { return clock_; }

 private:
  struct LinkState {
    LinkSpec spec;
    MicrosT free_at = 0;  ///< when the wire finishes its current transfer
    size_t bytes_sent = 0;
  };

  Status CheckNode(NodeId node) const;

  Clock* clock_;
  std::vector<std::string> node_names_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::vector<Delivery> pending_;  // kept sorted by delivered_at
  size_t total_bytes_ = 0;
};

}  // namespace mmconf::net

#endif  // MMCONF_NET_NETWORK_H_
