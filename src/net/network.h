#ifndef MMCONF_NET_NETWORK_H_
#define MMCONF_NET_NETWORK_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmconf::net {

/// Node in the simulated network (a client site, the interaction server,
/// or the database server).
using NodeId = int;

/// Directed link characteristics. Transfers on a link are serialized:
/// a message occupies the link for size/bandwidth seconds, then rides the
/// propagation latency. This is the bandwidth model behind the paper's
/// Section 4.4 concerns ("communication bandwidth limitations").
struct LinkSpec {
  double bandwidth_bytes_per_sec = 1e6;
  MicrosT latency_micros = 20000;
};

/// Scheduled outage window on a directed link: any message sent while
/// `down_at <= now < up_at` is silently lost (a transient last-mile flap,
/// as opposed to RemoveLink's hard partition).
struct LinkFlap {
  MicrosT down_at = 0;
  MicrosT up_at = 0;
};

/// Deterministic fault model for a directed link. All randomness comes
/// from a per-link Rng seeded from the Network's fault seed and the link
/// endpoints, so a given seed reproduces the exact same loss pattern
/// regardless of traffic on other links.
struct FaultSpec {
  double drop_probability = 0.0;       ///< chance a message is lost in flight
  double duplicate_probability = 0.0;  ///< chance a second copy is delivered
  MicrosT jitter_micros = 0;           ///< extra uniform latency in [0, jitter]
  std::vector<LinkFlap> flaps;         ///< scheduled outages
};

/// Per-link fault counters ("drops observed" for reliability reporting).
struct FaultStats {
  size_t dropped = 0;       ///< messages lost to drop_probability
  size_t flap_dropped = 0;  ///< messages lost inside a scheduled flap
  size_t duplicated = 0;    ///< extra copies delivered
};

/// A delivered message.
struct Delivery {
  NodeId from = 0;
  NodeId to = 0;
  size_t bytes = 0;
  std::string tag;
  Bytes payload;
  MicrosT sent_at = 0;
  MicrosT delivered_at = 0;
};

/// Deterministic virtual-time network simulator. All time comes from the
/// shared Clock; Send() schedules a delivery, Advance*() moves the clock
/// and returns what arrived. The paper runs clients, interaction server
/// and Oracle on separate Internet sites; this simulator reproduces the
/// timing-relevant behaviour (bandwidth serialization, latency,
/// per-client asymmetry) in-process and reproducibly. Links may carry a
/// FaultSpec to model lossy last-mile behaviour (drops, duplication,
/// jitter, flaps) without losing reproducibility.
class Network {
 public:
  explicit Network(Clock* clock, uint64_t fault_seed = 0x5eedf00dull)
      : clock_(clock), fault_seed_(fault_seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; returns its id.
  NodeId AddNode(std::string name);
  const std::string& NodeName(NodeId node) const;
  size_t num_nodes() const { return node_names_.size(); }

  /// Sets the directed link from -> to. Overwrites any existing spec.
  Status SetLink(NodeId from, NodeId to, const LinkSpec& spec);
  /// Sets both directions.
  Status SetDuplexLink(NodeId a, NodeId b, const LinkSpec& spec);
  Result<LinkSpec> GetLink(NodeId from, NodeId to) const;
  bool HasLink(NodeId from, NodeId to) const;

  /// Attaches a fault model to an existing link (NotFound otherwise).
  /// The link's fault Rng is (re)seeded from the Network fault seed and
  /// the endpoints, so the loss pattern is reproducible per link.
  Status SetFault(NodeId from, NodeId to, const FaultSpec& spec);
  /// Attaches the fault model to both directions.
  Status SetDuplexFault(NodeId a, NodeId b, const FaultSpec& spec);
  /// Removes any fault model on from -> to (stats are kept).
  void ClearFault(NodeId from, NodeId to);
  FaultStats GetFaultStats(NodeId from, NodeId to) const;
  FaultStats TotalFaultStats() const;

  /// Tears down the directed link (failure injection: a partitioned or
  /// crashed peer). In-flight deliveries already scheduled still arrive;
  /// subsequent Sends fail with NotFound. NotFound if no such link.
  Status RemoveLink(NodeId from, NodeId to);
  /// Tears down both directions (either missing direction is ignored).
  void Partition(NodeId a, NodeId b);

  /// Schedules a transfer of `bytes` (payload may be smaller or empty —
  /// `bytes` is what occupies the wire, e.g. an encoded image the caller
  /// does not want to copy; a payload larger than `bytes` is
  /// InvalidArgument). Returns the delivery timestamp — for a faulty link
  /// this is the sender's estimate: the message may be silently dropped,
  /// duplicated, or jittered, and the sender cannot tell.
  /// NotFound if no link exists.
  Result<MicrosT> Send(NodeId from, NodeId to, size_t bytes, std::string tag,
                       Bytes payload = {});

  /// Advances the clock just past the last scheduled delivery and
  /// returns all deliveries in timestamp order.
  std::vector<Delivery> AdvanceUntilIdle();

  /// Advances the clock to `t` (or keeps the current time if `t` is in
  /// the past), returning deliveries due at or before the resulting
  /// clock — so deliveries already due at NowMicros() are never stranded.
  std::vector<Delivery> AdvanceTo(MicrosT t);

  /// Deliveries pending (scheduled but not yet collected).
  size_t pending() const { return pending_.size(); }
  /// Timestamp of the earliest pending delivery, or -1 when idle.
  MicrosT NextDeliveryAt() const {
    return pending_.empty() ? -1 : pending_.front().delivered_at;
  }

  /// Total bytes ever sent on from->to (0 if never used). Duplicated
  /// copies are not billed: the sender transmitted the bytes once.
  size_t BytesSent(NodeId from, NodeId to) const;
  size_t TotalBytesSent() const { return total_bytes_; }

  /// Publishes wire activity into the obs layer: `net.*` counters and
  /// the jitter histogram in `metrics`, instant trace events for fault
  /// decisions (drop/flap/duplicate) with pid = sending node. Either
  /// pointer may be null; both must outlive the network. Counter handles
  /// are cached here, so the Send hot path pays plain increments only.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  Clock* clock() const { return clock_; }

 private:
  struct LinkState {
    LinkSpec spec;
    MicrosT free_at = 0;  ///< when the wire finishes its current transfer
    size_t bytes_sent = 0;
    bool has_fault = false;
    FaultSpec fault;
    Rng fault_rng;
    FaultStats fault_stats;
  };

  Status CheckNode(NodeId node) const;
  void Schedule(Delivery delivery);

  Clock* clock_;
  uint64_t fault_seed_;
  std::vector<std::string> node_names_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::vector<Delivery> pending_;  // kept sorted by delivered_at
  size_t total_bytes_ = 0;
  /// Observability (null = not instrumented). Handles cached by
  /// SetObserver so increments never look up by name.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_sends_ = nullptr;
  obs::Counter* m_send_bytes_ = nullptr;
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_flap_drops_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Histogram* m_jitter_ = nullptr;
};

}  // namespace mmconf::net

#endif  // MMCONF_NET_NETWORK_H_
