#ifndef MMCONF_NET_RELIABLE_H_
#define MMCONF_NET_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace mmconf::net {

/// Identifier of a message accepted by the ReliableTransport.
using MsgId = uint64_t;

/// Retransmission schedule: a message is resent whenever no ack arrived
/// within the current timeout (measured from the expected delivery time,
/// so slow transfers do not trigger spurious retries); each retry
/// multiplies the timeout by `backoff_factor` up to `max_timeout_micros`.
/// After `max_attempts` total attempts the message fails.
struct RetryPolicy {
  MicrosT initial_timeout_micros = 250000;
  double backoff_factor = 2.0;
  MicrosT max_timeout_micros = 2000000;
  int max_attempts = 5;
  /// Completed-message records (acked/failed) kept for StateOf/AckedAt
  /// queries. Seqs are monotone and senders query soon after completion,
  /// so old records only cost memory; beyond the cap the oldest (by
  /// completion order) are dropped and query as NotFound. 0 = unbounded.
  size_t completed_retention = 1 << 16;
};

/// Lifecycle of a reliable message.
enum class SendState {
  kInFlight,  ///< sent, not yet acked; retries may still be pending
  kAcked,     ///< the receiver acknowledged it
  kFailed,    ///< retry budget exhausted without an ack
};

/// Sentinel ETA: the link was down at send time, so the first attempt
/// could not be scheduled and no delivery estimate exists. The message
/// is still in flight — retries may deliver it once the link returns.
/// Distinct from any real timestamp (virtual time starts at 0), so
/// callers can no longer mistake "unknown" for "delivered at t=0".
inline constexpr MicrosT kEtaLinkDown = -1;

/// What Send() hands back: the id to query later and the sender's
/// estimate of the first attempt's delivery time (kEtaLinkDown when the
/// link was down at send time and the first attempt could not be
/// scheduled).
struct SendHandle {
  MsgId id = 0;
  MicrosT first_attempt_eta = kEtaLinkDown;
};

/// Per-channel (directed node pair) reliability counters.
struct ChannelStats {
  size_t sent = 0;                   ///< app messages accepted
  size_t attempts = 0;               ///< wire attempts, first sends included
  size_t retries = 0;                ///< attempts beyond the first
  size_t acked = 0;                  ///< messages confirmed delivered
  size_t failed = 0;                 ///< messages expired after the cap
  size_t duplicates_suppressed = 0;  ///< receiver-side dedup hits
  size_t acks_sent = 0;              ///< acks emitted by the receiver side
};

/// A message whose retry budget ran out, reported to the failure
/// callback so the application can degrade gracefully (e.g. evict the
/// unreachable room member) instead of wedging.
struct FailedMessage {
  MsgId id = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::string tag;
  int attempts = 0;
};

/// Reliable-messaging layer over the lossy Network: per-channel sequence
/// numbers, receiver-side dedup and acks, per-message timeout with
/// exponential backoff and a retry cap. The transport owns no threads —
/// like the Network it is pumped explicitly via AdvanceTo /
/// AdvanceUntilIdle, which drain the wire, emit acks, retransmit
/// timed-out messages and return the deduplicated application-level
/// deliveries.
///
/// Callers that share the Network must pump it through the transport
/// (the transport consumes every wire delivery, including non-reliable
/// tags, and passes unrecognised ones through in its output).
class ReliableTransport {
 public:
  explicit ReliableTransport(Network* network, RetryPolicy policy = {});

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Accepts a message for reliable delivery. Unlike Network::Send this
  /// succeeds even when the link is currently down — delivery is
  /// attempted (and re-attempted) as the transport is pumped, so a link
  /// that flaps back in time still gets the message; a link that stays
  /// dead fails the message after the retry budget. OutOfRange for bad
  /// nodes, InvalidArgument for an oversized payload.
  Result<SendHandle> Send(NodeId from, NodeId to, size_t bytes,
                          std::string tag, Bytes payload = {});

  /// Pumps the wire and the retransmission schedule up to `t`; returns
  /// application-level deliveries (deduplicated, tags restored) in
  /// arrival order.
  std::vector<Delivery> AdvanceTo(MicrosT t);

  /// Pumps until no wire delivery and no retransmission remains. Always
  /// terminates: every pending message either acks or exhausts its cap.
  std::vector<Delivery> AdvanceUntilIdle();

  /// NotFound for an id this transport never issued (or already forgot).
  Result<SendState> StateOf(MsgId id) const;
  /// Ack arrival time; FailedPrecondition unless the message is kAcked.
  Result<MicrosT> AckedAt(MsgId id) const;
  /// Total wire attempts the message consumed so far (>= 1).
  Result<int> AttemptsOf(MsgId id) const;

  /// Invoked (during Advance*) for each message whose retry budget runs
  /// out. The callback may call back into the transport (e.g. Send
  /// follow-up messages); it must not destroy the transport.
  using FailureCallback = std::function<void(const FailedMessage&)>;
  void SetFailureCallback(FailureCallback callback) {
    on_failure_ = std::move(callback);
  }

  /// Publishes transport activity into the obs layer: `rel.*` counters
  /// (attempts, retries, acks, failures, dedup hits) and the RTT
  /// histogram (first send -> ack, per message). Trace spans cover each
  /// acked message's first-send-to-ack interval (pid = sender node);
  /// failures emit instants. Either pointer may be null; both must
  /// outlive the transport.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Drops the completed-state record of `id`: StateOf/AckedAt/
  /// AttemptsOf return NotFound afterwards. Callers that have folded a
  /// message's outcome into their own accounting call this so week-long
  /// runs don't accumulate one record per message ever sent. No-op for
  /// in-flight or unknown ids.
  void Forget(MsgId id);

  /// Bookkeeping sizes — everything that grows with traffic. The
  /// regression tests assert these stay bounded under sustained load.
  struct StateFootprint {
    size_t inflight = 0;        ///< messages awaiting ack or expiry
    size_t completed = 0;       ///< retained completed-message records
    size_t dedup_tail = 0;      ///< out-of-order seqs above the watermarks
    size_t unacked_seqs = 0;    ///< sender-side seq->id entries
  };
  StateFootprint Footprint() const;

  ChannelStats StatsFor(NodeId from, NodeId to) const;
  ChannelStats TotalStats() const;
  size_t in_flight() const { return inflight_.size(); }
  const RetryPolicy& policy() const { return policy_; }
  Network* network() const { return network_; }

  /// Wire size of an ack message (billed on the reverse link).
  static constexpr size_t kAckBytes = 16;

 private:
  struct InFlight {
    MsgId id = 0;
    NodeId from = 0;
    NodeId to = 0;
    uint64_t seq = 0;
    size_t bytes = 0;
    std::string tag;
    Bytes payload;
    int attempts = 0;
    MicrosT timeout = 0;        ///< current (backed-off) timeout
    MicrosT next_deadline = 0;  ///< retransmit when now reaches this
    MicrosT first_sent_at = 0;
  };

  struct Channel {
    uint64_t next_seq = 1;
    std::map<uint64_t, MsgId> unacked_by_seq;  ///< sender side
    /// Receiver-side dedup, compacted: seqs are monotone per channel, so
    /// every seq <= seen_watermark counts as seen and only the sparse
    /// out-of-order tail above the watermark is stored explicitly. The
    /// tail shrinks back into the watermark as gaps fill, so dedup state
    /// stays proportional to current reordering, not channel lifetime.
    uint64_t seen_watermark = 0;
    std::set<uint64_t> seen_tail;
    ChannelStats stats;

    /// Hard cap on the tail: a seq whose sender exhausted its retry
    /// budget leaves a permanent gap that would otherwise pin the
    /// watermark forever. Beyond the cap the oldest gap is abandoned
    /// (watermark jumps over it) — by then the sender's retransmit
    /// window is thousands of messages in the past, so treating a
    /// late straggler in that gap as a duplicate is the safe side.
    static constexpr size_t kMaxDedupTail = 4096;

    /// Records `seq` as seen; false when it was already seen.
    bool MarkSeen(uint64_t seq);
  };

  struct Completed {
    SendState state = SendState::kAcked;
    MicrosT acked_at = 0;
    int attempts = 0;
  };

  /// One wire attempt for `msg` at the current time; updates the
  /// deadline whether or not the link accepted the send.
  MicrosT Attempt(InFlight& msg);
  /// Routes one wire delivery: ack, reliable data (deduped + acked), or
  /// pass-through for non-reliable traffic.
  void Process(Delivery delivery, std::vector<Delivery>* out);
  /// Retransmits or expires every in-flight message due at `now`.
  void HandleTimeouts(MicrosT now);
  /// Earliest retransmission deadline, or -1 when none pending.
  MicrosT NextRetryAt() const;

  Network* network_;
  RetryPolicy policy_;
  /// Moves a finished message into completed_, evicting the oldest
  /// records beyond the retention window.
  void Complete(MsgId id, Completed record);

  MsgId next_id_ = 1;
  std::map<MsgId, InFlight> inflight_;
  std::map<MsgId, Completed> completed_;
  std::deque<MsgId> completed_order_;  ///< completion order, for eviction
  std::map<std::pair<NodeId, NodeId>, Channel> channels_;
  FailureCallback on_failure_;
  /// Observability (null = not instrumented); handles cached by
  /// SetObserver so the send/ack paths pay plain increments only.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_acked_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_dedup_ = nullptr;
  obs::Counter* m_acks_sent_ = nullptr;
  obs::Histogram* m_rtt_ = nullptr;
  obs::Histogram* m_backoff_wait_ = nullptr;
};

}  // namespace mmconf::net

#endif  // MMCONF_NET_RELIABLE_H_
