#include "net/network.h"

#include <algorithm>
#include <cmath>

namespace mmconf::net {

namespace {

/// Stable per-link seed: mixes the network seed with both endpoints so
/// two links never share a loss pattern (SplitMix inside Rng scrambles
/// the remaining structure).
uint64_t LinkSeed(uint64_t base, NodeId from, NodeId to) {
  uint64_t mixed = base;
  mixed ^= (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(to));
  mixed *= 0x9e3779b97f4a7c15ull;
  return mixed;
}

bool InFlap(const FaultSpec& fault, MicrosT now) {
  for (const LinkFlap& flap : fault.flaps) {
    if (now >= flap.down_at && now < flap.up_at) return true;
  }
  return false;
}

}  // namespace

NodeId Network::AddNode(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

const std::string& Network::NodeName(NodeId node) const {
  return node_names_[static_cast<size_t>(node)];
}

Status Network::CheckNode(NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= node_names_.size()) {
    return Status::OutOfRange("no node with id " + std::to_string(node));
  }
  return Status::OK();
}

Status Network::SetLink(NodeId from, NodeId to, const LinkSpec& spec) {
  MMCONF_RETURN_IF_ERROR(CheckNode(from));
  MMCONF_RETURN_IF_ERROR(CheckNode(to));
  if (spec.bandwidth_bytes_per_sec <= 0 || spec.latency_micros < 0) {
    return Status::InvalidArgument("link needs positive bandwidth and "
                                   "non-negative latency");
  }
  links_[{from, to}].spec = spec;
  return Status::OK();
}

Status Network::SetDuplexLink(NodeId a, NodeId b, const LinkSpec& spec) {
  MMCONF_RETURN_IF_ERROR(SetLink(a, b, spec));
  return SetLink(b, a, spec);
}

Result<LinkSpec> Network::GetLink(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  return it->second.spec;
}

bool Network::HasLink(NodeId from, NodeId to) const {
  return links_.count({from, to}) > 0;
}

Status Network::SetFault(NodeId from, NodeId to, const FaultSpec& spec) {
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  if (spec.drop_probability < 0 || spec.drop_probability > 1 ||
      spec.duplicate_probability < 0 || spec.duplicate_probability > 1 ||
      spec.jitter_micros < 0) {
    return Status::InvalidArgument(
        "fault probabilities must be in [0, 1] and jitter non-negative");
  }
  for (const LinkFlap& flap : spec.flaps) {
    if (flap.up_at < flap.down_at) {
      return Status::InvalidArgument("flap window ends before it starts");
    }
  }
  LinkState& link = it->second;
  link.has_fault = true;
  link.fault = spec;
  link.fault_rng = Rng(LinkSeed(fault_seed_, from, to));
  return Status::OK();
}

Status Network::SetDuplexFault(NodeId a, NodeId b, const FaultSpec& spec) {
  MMCONF_RETURN_IF_ERROR(SetFault(a, b, spec));
  return SetFault(b, a, spec);
}

void Network::ClearFault(NodeId from, NodeId to) {
  auto it = links_.find({from, to});
  if (it == links_.end()) return;
  it->second.has_fault = false;
  it->second.fault = FaultSpec();
}

FaultStats Network::GetFaultStats(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? FaultStats() : it->second.fault_stats;
}

FaultStats Network::TotalFaultStats() const {
  FaultStats total;
  for (const auto& [key, link] : links_) {
    total.dropped += link.fault_stats.dropped;
    total.flap_dropped += link.fault_stats.flap_dropped;
    total.duplicated += link.fault_stats.duplicated;
  }
  return total;
}

Status Network::RemoveLink(NodeId from, NodeId to) {
  if (links_.erase({from, to}) == 0) {
    return Status::NotFound("no link " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  return Status::OK();
}

void Network::Partition(NodeId a, NodeId b) {
  links_.erase({a, b});
  links_.erase({b, a});
}

void Network::SetObserver(obs::MetricsRegistry* metrics,
                          obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    m_sends_ = metrics->GetCounter("net.send.messages");
    m_send_bytes_ = metrics->GetCounter("net.send.bytes");
    m_drops_ = metrics->GetCounter("net.drop.random");
    m_flap_drops_ = metrics->GetCounter("net.drop.flap");
    m_duplicates_ = metrics->GetCounter("net.duplicate");
    m_jitter_ = metrics->GetHistogram(
        "net.jitter_micros", {100, 500, 1000, 2000, 5000, 10000, 50000});
  } else {
    m_sends_ = nullptr;
    m_send_bytes_ = nullptr;
    m_drops_ = nullptr;
    m_flap_drops_ = nullptr;
    m_duplicates_ = nullptr;
    m_jitter_ = nullptr;
  }
}

void Network::Schedule(Delivery delivery) {
  auto pos = std::upper_bound(
      pending_.begin(), pending_.end(), delivery.delivered_at,
      [](MicrosT t, const Delivery& d) { return t < d.delivered_at; });
  pending_.insert(pos, std::move(delivery));
}

Result<MicrosT> Network::Send(NodeId from, NodeId to, size_t bytes,
                              std::string tag, Bytes payload) {
  MMCONF_RETURN_IF_ERROR(CheckNode(from));
  MMCONF_RETURN_IF_ERROR(CheckNode(to));
  if (payload.size() > bytes) {
    return Status::InvalidArgument(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds billed wire size " + std::to_string(bytes));
  }
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + NodeName(from) + " -> " +
                            NodeName(to));
  }
  LinkState& link = it->second;
  MicrosT now = clock_->NowMicros();
  MicrosT start = std::max(now, link.free_at);
  MicrosT transfer_micros = static_cast<MicrosT>(
      std::ceil(static_cast<double>(bytes) /
                link.spec.bandwidth_bytes_per_sec * 1e6));
  MicrosT delivered_at = start + transfer_micros + link.spec.latency_micros;
  link.free_at = start + transfer_micros;
  link.bytes_sent += bytes;
  total_bytes_ += bytes;
  if (m_sends_ != nullptr) {
    m_sends_->Add();
    m_send_bytes_->Add(bytes);
  }

  Delivery delivery;
  delivery.from = from;
  delivery.to = to;
  delivery.bytes = bytes;
  delivery.tag = std::move(tag);
  delivery.payload = std::move(payload);
  delivery.sent_at = now;
  delivery.delivered_at = delivered_at;

  if (link.has_fault) {
    const FaultSpec& fault = link.fault;
    if (InFlap(fault, now)) {
      ++link.fault_stats.flap_dropped;
      if (m_flap_drops_ != nullptr) m_flap_drops_->Add();
      if (tracer_ != nullptr) {
        tracer_->Instant(from, 0, "flap-drop", "net", "bytes",
                         static_cast<int64_t>(bytes));
      }
      return delivered_at;  // the sender cannot tell it was lost
    }
    if (fault.drop_probability > 0 &&
        link.fault_rng.Chance(fault.drop_probability)) {
      ++link.fault_stats.dropped;
      if (m_drops_ != nullptr) m_drops_->Add();
      if (tracer_ != nullptr) {
        tracer_->Instant(from, 0, "drop", "net", "bytes",
                         static_cast<int64_t>(bytes));
      }
      return delivered_at;
    }
    if (fault.jitter_micros > 0) {
      MicrosT jitter = static_cast<MicrosT>(link.fault_rng.NextBelow(
          static_cast<uint64_t>(fault.jitter_micros) + 1));
      delivery.delivered_at += jitter;
      if (m_jitter_ != nullptr) m_jitter_->Observe(jitter);
    }
    if (fault.duplicate_probability > 0 &&
        link.fault_rng.Chance(fault.duplicate_probability)) {
      Delivery copy = delivery;
      if (fault.jitter_micros > 0) {
        copy.delivered_at = delivered_at + static_cast<MicrosT>(
            link.fault_rng.NextBelow(
                static_cast<uint64_t>(fault.jitter_micros) + 1));
      }
      ++link.fault_stats.duplicated;
      if (m_duplicates_ != nullptr) m_duplicates_->Add();
      if (tracer_ != nullptr) tracer_->Instant(from, 0, "duplicate", "net");
      Schedule(std::move(copy));
    }
  }
  Schedule(std::move(delivery));
  return delivered_at;
}

std::vector<Delivery> Network::AdvanceUntilIdle() {
  if (pending_.empty()) return {};
  return AdvanceTo(pending_.back().delivered_at);
}

std::vector<Delivery> Network::AdvanceTo(MicrosT t) {
  // Never cut before the current clock: deliveries already due must not
  // be stranded by a stale (earlier) target time.
  MicrosT cut = std::max(t, clock_->NowMicros());
  clock_->AdvanceTo(cut);
  std::vector<Delivery> due;
  auto it = std::upper_bound(
      pending_.begin(), pending_.end(), cut,
      [](MicrosT time, const Delivery& d) { return time < d.delivered_at; });
  due.assign(std::make_move_iterator(pending_.begin()),
             std::make_move_iterator(it));
  pending_.erase(pending_.begin(), it);
  return due;
}

size_t Network::BytesSent(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace mmconf::net
