#include "net/network.h"

#include <algorithm>
#include <cmath>

namespace mmconf::net {

NodeId Network::AddNode(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

const std::string& Network::NodeName(NodeId node) const {
  return node_names_[static_cast<size_t>(node)];
}

Status Network::CheckNode(NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= node_names_.size()) {
    return Status::OutOfRange("no node with id " + std::to_string(node));
  }
  return Status::OK();
}

Status Network::SetLink(NodeId from, NodeId to, const LinkSpec& spec) {
  MMCONF_RETURN_IF_ERROR(CheckNode(from));
  MMCONF_RETURN_IF_ERROR(CheckNode(to));
  if (spec.bandwidth_bytes_per_sec <= 0 || spec.latency_micros < 0) {
    return Status::InvalidArgument("link needs positive bandwidth and "
                                   "non-negative latency");
  }
  links_[{from, to}].spec = spec;
  return Status::OK();
}

Status Network::SetDuplexLink(NodeId a, NodeId b, const LinkSpec& spec) {
  MMCONF_RETURN_IF_ERROR(SetLink(a, b, spec));
  return SetLink(b, a, spec);
}

Result<LinkSpec> Network::GetLink(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  return it->second.spec;
}

bool Network::HasLink(NodeId from, NodeId to) const {
  return links_.count({from, to}) > 0;
}

Status Network::RemoveLink(NodeId from, NodeId to) {
  if (links_.erase({from, to}) == 0) {
    return Status::NotFound("no link " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  return Status::OK();
}

void Network::Partition(NodeId a, NodeId b) {
  links_.erase({a, b});
  links_.erase({b, a});
}

Result<MicrosT> Network::Send(NodeId from, NodeId to, size_t bytes,
                              std::string tag, Bytes payload) {
  MMCONF_RETURN_IF_ERROR(CheckNode(from));
  MMCONF_RETURN_IF_ERROR(CheckNode(to));
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + NodeName(from) + " -> " +
                            NodeName(to));
  }
  LinkState& link = it->second;
  MicrosT now = clock_->NowMicros();
  MicrosT start = std::max(now, link.free_at);
  MicrosT transfer_micros = static_cast<MicrosT>(
      std::ceil(static_cast<double>(bytes) /
                link.spec.bandwidth_bytes_per_sec * 1e6));
  MicrosT delivered_at = start + transfer_micros + link.spec.latency_micros;
  link.free_at = start + transfer_micros;
  link.bytes_sent += bytes;
  total_bytes_ += bytes;

  Delivery delivery;
  delivery.from = from;
  delivery.to = to;
  delivery.bytes = bytes;
  delivery.tag = std::move(tag);
  delivery.payload = std::move(payload);
  delivery.sent_at = now;
  delivery.delivered_at = delivered_at;
  auto pos = std::upper_bound(
      pending_.begin(), pending_.end(), delivered_at,
      [](MicrosT t, const Delivery& d) { return t < d.delivered_at; });
  pending_.insert(pos, std::move(delivery));
  return delivered_at;
}

std::vector<Delivery> Network::AdvanceUntilIdle() {
  if (pending_.empty()) return {};
  return AdvanceTo(pending_.back().delivered_at);
}

std::vector<Delivery> Network::AdvanceTo(MicrosT t) {
  clock_->AdvanceTo(t);
  std::vector<Delivery> due;
  auto cut = std::upper_bound(
      pending_.begin(), pending_.end(), t,
      [](MicrosT time, const Delivery& d) { return time < d.delivered_at; });
  due.assign(std::make_move_iterator(pending_.begin()),
             std::make_move_iterator(cut));
  pending_.erase(pending_.begin(), cut);
  return due;
}

size_t Network::BytesSent(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace mmconf::net
