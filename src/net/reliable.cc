#include "net/reliable.h"

#include <algorithm>

namespace mmconf::net {

namespace {

constexpr char kDataPrefix[] = "rel:";
constexpr char kAckPrefix[] = "rel-ack:";

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Parses "<seq>:<rest>" (or just "<seq>") after `offset`; returns false
/// on malformed input, including digit strings that overflow uint64_t —
/// a corrupted wire tag must never silently wrap onto a live seq and get
/// falsely deduped as "already seen".
bool ParseSeq(const std::string& tag, size_t offset, uint64_t* seq,
              std::string* rest) {
  size_t end = tag.find(':', offset);
  std::string digits = tag.substr(
      offset, end == std::string::npos ? std::string::npos : end - offset);
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *seq = value;
  if (rest != nullptr) {
    *rest = end == std::string::npos ? std::string() : tag.substr(end + 1);
  }
  return true;
}

}  // namespace

ReliableTransport::ReliableTransport(Network* network, RetryPolicy policy)
    : network_(network), policy_(policy) {
  if (policy_.initial_timeout_micros < 1) policy_.initial_timeout_micros = 1;
  if (policy_.max_timeout_micros < policy_.initial_timeout_micros) {
    policy_.max_timeout_micros = policy_.initial_timeout_micros;
  }
  if (policy_.backoff_factor < 1.0) policy_.backoff_factor = 1.0;
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

void ReliableTransport::SetObserver(obs::MetricsRegistry* metrics,
                                    obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    m_sent_ = metrics->GetCounter("rel.sent");
    m_attempts_ = metrics->GetCounter("rel.attempts");
    m_retries_ = metrics->GetCounter("rel.retries");
    m_acked_ = metrics->GetCounter("rel.acked");
    m_failed_ = metrics->GetCounter("rel.failed");
    m_dedup_ = metrics->GetCounter("rel.dedup_hits");
    m_acks_sent_ = metrics->GetCounter("rel.acks_sent");
    m_rtt_ = metrics->GetHistogram(
        "rel.rtt_micros", {1000, 5000, 20000, 50000, 100000, 250000, 500000,
                           1000000, 2000000, 5000000});
    m_backoff_wait_ = metrics->GetHistogram(
        "rel.backoff_wait_micros",
        {50000, 150000, 250000, 500000, 1000000, 2000000});
  } else {
    m_sent_ = nullptr;
    m_attempts_ = nullptr;
    m_retries_ = nullptr;
    m_acked_ = nullptr;
    m_failed_ = nullptr;
    m_dedup_ = nullptr;
    m_acks_sent_ = nullptr;
    m_rtt_ = nullptr;
    m_backoff_wait_ = nullptr;
  }
}

MicrosT ReliableTransport::Attempt(InFlight& msg) {
  MicrosT now = network_->clock()->NowMicros();
  ++msg.attempts;
  Channel& channel = channels_[{msg.from, msg.to}];
  ++channel.stats.attempts;
  if (msg.attempts > 1) ++channel.stats.retries;
  if (m_attempts_ != nullptr) {
    m_attempts_->Add();
    if (msg.attempts > 1) m_retries_->Add();
  }
  std::string wire_tag =
      kDataPrefix + std::to_string(msg.seq) + ":" + msg.tag;
  Result<MicrosT> eta = network_->Send(msg.from, msg.to, msg.bytes,
                                       std::move(wire_tag), msg.payload);
  // The timeout runs from the expected arrival, so a long transfer on a
  // slow link does not look like a loss. A failed send (link down right
  // now) just burns the attempt and waits out the same timeout.
  MicrosT basis = eta.ok() ? std::max(*eta, now) : now;
  msg.next_deadline = basis + msg.timeout;
  return eta.ok() ? *eta : kEtaLinkDown;
}

bool ReliableTransport::Channel::MarkSeen(uint64_t seq) {
  if (seq <= seen_watermark) return false;
  if (seq == seen_watermark + 1) {
    ++seen_watermark;
    // Absorb the tail seqs the new watermark now reaches.
    auto it = seen_tail.begin();
    while (it != seen_tail.end() && *it == seen_watermark + 1) {
      ++seen_watermark;
      it = seen_tail.erase(it);
    }
    return true;
  }
  bool fresh = seen_tail.insert(seq).second;
  while (seen_tail.size() > kMaxDedupTail) {
    // Abandon the oldest gap: jump the watermark onto the lowest tail
    // seq and absorb the contiguous run above it.
    auto it = seen_tail.begin();
    seen_watermark = *it;
    it = seen_tail.erase(it);
    while (it != seen_tail.end() && *it == seen_watermark + 1) {
      ++seen_watermark;
      it = seen_tail.erase(it);
    }
  }
  return fresh;
}

void ReliableTransport::Complete(MsgId id, Completed record) {
  if (completed_.emplace(id, record).second) {
    completed_order_.push_back(id);
  }
  if (policy_.completed_retention == 0) return;
  while (completed_.size() > policy_.completed_retention &&
         !completed_order_.empty()) {
    // The front may already be gone via Forget; just skip it then.
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

void ReliableTransport::Forget(MsgId id) { completed_.erase(id); }

ReliableTransport::StateFootprint ReliableTransport::Footprint() const {
  StateFootprint fp;
  fp.inflight = inflight_.size();
  fp.completed = completed_.size();
  for (const auto& [key, channel] : channels_) {
    fp.dedup_tail += channel.seen_tail.size();
    fp.unacked_seqs += channel.unacked_by_seq.size();
  }
  return fp;
}

Result<SendHandle> ReliableTransport::Send(NodeId from, NodeId to,
                                           size_t bytes, std::string tag,
                                           Bytes payload) {
  if (from < 0 || static_cast<size_t>(from) >= network_->num_nodes() ||
      to < 0 || static_cast<size_t>(to) >= network_->num_nodes()) {
    return Status::OutOfRange("no such node");
  }
  if (payload.size() > bytes) {
    return Status::InvalidArgument(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds billed wire size " + std::to_string(bytes));
  }
  Channel& channel = channels_[{from, to}];
  InFlight msg;
  msg.id = next_id_++;
  msg.from = from;
  msg.to = to;
  msg.seq = channel.next_seq++;
  msg.bytes = bytes;
  msg.tag = std::move(tag);
  msg.payload = std::move(payload);
  msg.timeout = policy_.initial_timeout_micros;
  msg.first_sent_at = network_->clock()->NowMicros();
  ++channel.stats.sent;
  if (m_sent_ != nullptr) m_sent_->Add();
  channel.unacked_by_seq[msg.seq] = msg.id;
  MicrosT eta = Attempt(msg);
  SendHandle handle{msg.id, eta};
  inflight_.emplace(msg.id, std::move(msg));
  return handle;
}

void ReliableTransport::Process(Delivery delivery,
                                std::vector<Delivery>* out) {
  if (HasPrefix(delivery.tag, kAckPrefix)) {
    uint64_t seq = 0;
    if (!ParseSeq(delivery.tag, sizeof(kAckPrefix) - 1, &seq, nullptr)) {
      return;
    }
    // The ack travelled receiver -> sender; the data channel is the
    // reverse direction.
    Channel& channel = channels_[{delivery.to, delivery.from}];
    auto by_seq = channel.unacked_by_seq.find(seq);
    if (by_seq == channel.unacked_by_seq.end()) return;  // stale duplicate
    MsgId id = by_seq->second;
    channel.unacked_by_seq.erase(by_seq);
    auto it = inflight_.find(id);
    if (it != inflight_.end()) {
      const InFlight& msg = it->second;
      if (m_acked_ != nullptr) {
        m_acked_->Add();
        m_rtt_->Observe(delivery.delivered_at - msg.first_sent_at);
      }
      if (tracer_ != nullptr) {
        tracer_->Span(msg.from, 0, msg.tag.c_str(), "rel",
                      msg.first_sent_at, delivery.delivered_at, "attempts",
                      msg.attempts);
      }
      Complete(id, Completed{SendState::kAcked, delivery.delivered_at,
                             it->second.attempts});
      inflight_.erase(it);
      ++channel.stats.acked;
    }
    return;
  }
  if (HasPrefix(delivery.tag, kDataPrefix)) {
    uint64_t seq = 0;
    std::string app_tag;
    if (!ParseSeq(delivery.tag, sizeof(kDataPrefix) - 1, &seq, &app_tag)) {
      return;
    }
    Channel& channel = channels_[{delivery.from, delivery.to}];
    // Ack every copy (the sender keeps retransmitting until one ack
    // survives the reverse link); without a reverse link the sender's
    // retry budget decides the message's fate.
    if (network_->HasLink(delivery.to, delivery.from)) {
      network_
          ->Send(delivery.to, delivery.from, kAckBytes,
                 kAckPrefix + std::to_string(seq))
          .status()
          .ok();
      ++channel.stats.acks_sent;
      if (m_acks_sent_ != nullptr) m_acks_sent_->Add();
    }
    if (!channel.MarkSeen(seq)) {
      ++channel.stats.duplicates_suppressed;
      if (m_dedup_ != nullptr) m_dedup_->Add();
      return;
    }
    delivery.tag = std::move(app_tag);
    out->push_back(std::move(delivery));
    return;
  }
  // Non-reliable traffic sharing the wire passes through untouched.
  out->push_back(std::move(delivery));
}

void ReliableTransport::HandleTimeouts(MicrosT now) {
  std::vector<MsgId> due;
  for (const auto& [id, msg] : inflight_) {
    if (msg.next_deadline <= now) due.push_back(id);
  }
  std::vector<FailedMessage> failures;
  for (MsgId id : due) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;
    InFlight& msg = it->second;
    if (msg.attempts >= policy_.max_attempts) {
      Channel& channel = channels_[{msg.from, msg.to}];
      channel.unacked_by_seq.erase(msg.seq);
      ++channel.stats.failed;
      if (m_failed_ != nullptr) m_failed_->Add();
      if (tracer_ != nullptr) {
        tracer_->Instant(msg.from, 0, "rel-failed", "rel", "attempts",
                         msg.attempts);
      }
      Complete(id, Completed{SendState::kFailed, 0, msg.attempts});
      failures.push_back(
          FailedMessage{id, msg.from, msg.to, msg.tag, msg.attempts});
      inflight_.erase(it);
      continue;
    }
    msg.timeout = std::min(
        static_cast<MicrosT>(static_cast<double>(msg.timeout) *
                             policy_.backoff_factor),
        policy_.max_timeout_micros);
    if (m_backoff_wait_ != nullptr) m_backoff_wait_->Observe(msg.timeout);
    Attempt(msg);
  }
  // Fired after the in-flight table is consistent: the callback may call
  // Send() (e.g. propagate an eviction) re-entrantly.
  for (const FailedMessage& failure : failures) {
    if (on_failure_) on_failure_(failure);
  }
}

MicrosT ReliableTransport::NextRetryAt() const {
  MicrosT next = -1;
  for (const auto& [id, msg] : inflight_) {
    if (next < 0 || msg.next_deadline < next) next = msg.next_deadline;
  }
  return next;
}

std::vector<Delivery> ReliableTransport::AdvanceTo(MicrosT t) {
  std::vector<Delivery> out;
  while (true) {
    MicrosT next_net = network_->NextDeliveryAt();
    MicrosT next_retry = NextRetryAt();
    MicrosT next_event = next_net;
    if (next_retry >= 0 && (next_event < 0 || next_retry < next_event)) {
      next_event = next_retry;
    }
    if (next_event < 0 || next_event > t) break;
    for (Delivery& delivery : network_->AdvanceTo(next_event)) {
      Process(std::move(delivery), &out);
    }
    HandleTimeouts(network_->clock()->NowMicros());
  }
  for (Delivery& delivery : network_->AdvanceTo(t)) {
    Process(std::move(delivery), &out);
  }
  HandleTimeouts(network_->clock()->NowMicros());
  return out;
}

std::vector<Delivery> ReliableTransport::AdvanceUntilIdle() {
  std::vector<Delivery> out;
  while (true) {
    MicrosT next_net = network_->NextDeliveryAt();
    MicrosT next_retry = NextRetryAt();
    MicrosT target = next_net;
    if (next_retry >= 0 && (target < 0 || next_retry < target)) {
      target = next_retry;
    }
    if (target < 0) break;
    std::vector<Delivery> batch =
        AdvanceTo(std::max(target, network_->clock()->NowMicros()));
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

Result<SendState> ReliableTransport::StateOf(MsgId id) const {
  if (inflight_.count(id) > 0) return SendState::kInFlight;
  auto it = completed_.find(id);
  if (it != completed_.end()) return it->second.state;
  return Status::NotFound("no message with id " + std::to_string(id));
}

Result<MicrosT> ReliableTransport::AckedAt(MsgId id) const {
  auto it = completed_.find(id);
  if (it == completed_.end() || it->second.state != SendState::kAcked) {
    return Status::FailedPrecondition(
        "message " + std::to_string(id) + " is not acked");
  }
  return it->second.acked_at;
}

Result<int> ReliableTransport::AttemptsOf(MsgId id) const {
  auto in = inflight_.find(id);
  if (in != inflight_.end()) return in->second.attempts;
  auto done = completed_.find(id);
  if (done != completed_.end()) return done->second.attempts;
  return Status::NotFound("no message with id " + std::to_string(id));
}

ChannelStats ReliableTransport::StatsFor(NodeId from, NodeId to) const {
  auto it = channels_.find({from, to});
  return it == channels_.end() ? ChannelStats() : it->second.stats;
}

ChannelStats ReliableTransport::TotalStats() const {
  ChannelStats total;
  for (const auto& [key, channel] : channels_) {
    total.sent += channel.stats.sent;
    total.attempts += channel.stats.attempts;
    total.retries += channel.stats.retries;
    total.acked += channel.stats.acked;
    total.failed += channel.stats.failed;
    total.duplicates_suppressed += channel.stats.duplicates_suppressed;
    total.acks_sent += channel.stats.acks_sent;
  }
  return total;
}

}  // namespace mmconf::net
