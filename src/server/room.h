#ifndef MMCONF_SERVER_ROOM_H_
#define MMCONF_SERVER_ROOM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "cpnet/assignment.h"
#include "cpnet/update.h"
#include "doc/document.h"
#include "doc/presentation_view.h"
#include "imaging/freeze.h"
#include "server/events.h"

namespace mmconf::server {

/// Outcome of an action that may change the shared presentation: the new
/// optimal configuration, which components changed presentation, and the
/// bytes needed to redisplay just those components ("the hierarchical
/// structure of the object permits sending only the relevant parts of the
/// object for redisplay by the client").
struct ReconfigResult {
  cpnet::Assignment configuration;
  std::vector<std::string> changed_components;
  /// Variable ids of changed_components, same order — the propagation
  /// hot path uses these to index Room::view() without name lookups.
  std::vector<cpnet::VarId> changed_vars;
  size_t delta_cost_bytes = 0;
};

/// A shared "room": the set of partners examining one multimedia
/// document together. The room owns the document, the per-viewer choice
/// state, the freeze registry, and the action log (the paper's "large
/// memory buffer which maintains the changes made on the changed
/// objects").
class Room {
 public:
  /// Takes ownership of the document; it must be finalized.
  Room(std::string id, doc::MultimediaDocument document);

  // Not copyable or movable: viewer overlays hold pointers into the
  // owned document's CP-net. Hold rooms by unique_ptr.
  Room(const Room&) = delete;
  Room& operator=(const Room&) = delete;
  Room(Room&&) = delete;
  Room& operator=(Room&&) = delete;

  const std::string& id() const { return id_; }
  const doc::MultimediaDocument& document() const { return document_; }
  const cpnet::Assignment& configuration() const { return configuration_; }
  const std::vector<UserAction>& action_log() const { return action_log_; }

  /// Resolved presentation/visibility cache for the current shared
  /// configuration, kept in sync by Reconfigure (incrementally via the
  /// delta's changed variables, fully after structural changes).
  const doc::PresentationView& view() const { return view_; }

  /// Renders the action log as searchable text, one line per action —
  /// the consultation minutes ("The results of the discussions ... may
  /// be stored in the file or in other locations for future search and
  /// reference").
  std::string RenderActionLog() const;
  std::vector<std::string> members() const;
  bool HasMember(const std::string& viewer) const;

  /// Adds a partner; the initial presentation they receive is the current
  /// room configuration. AlreadyExists on duplicate join.
  Status Join(const std::string& viewer);

  /// Removes a partner, releasing their choices and freezes; the shared
  /// configuration is re-optimized without their constraints.
  Result<ReconfigResult> Leave(const std::string& viewer);

  /// Applies a viewer's explicit presentation choice and recomputes the
  /// optimal shared configuration (the Fig. 4b use case: "determine the
  /// optimal presentations... return the specification of the updated
  /// optimal presentation"). An empty `presentation` releases the
  /// viewer's earlier choice on that component.
  Result<ReconfigResult> SubmitChoice(const std::string& viewer,
                                      const std::string& component,
                                      const std::string& presentation);

  /// Records an operation on a component (zoom, annotation, deletion,
  /// segmentation). If `globally_important` (the §4.2 decision "the
  /// viewer can decide about the importance of this operation for the
  /// rest of the viewers"), the document's CP-net is extended for
  /// everyone; otherwise only this viewer's private overlay grows.
  /// The freeze registry is consulted first.
  Result<ReconfigResult> ApplyOperation(const UserAction& action,
                                        bool globally_important);

  /// Section 4.2 online updates at room scope: a viewer adds or removes
  /// a document component mid-consultation. The CP-net is rebound, so
  /// every per-viewer overlay is reset (their private operation
  /// variables referenced the old variable ids); choices and freezes on
  /// a removed component are dropped. Returns the reconfiguration.
  Result<ReconfigResult> AddComponent(
      const std::string& viewer, const std::string& parent_composite,
      std::unique_ptr<doc::PrimitiveMultimediaComponent> component);
  Result<ReconfigResult> RemoveComponent(const std::string& viewer,
                                         const std::string& component);

  /// Freeze / release of a component by a partner.
  Status Freeze(const std::string& viewer, const std::string& component);
  Status ReleaseFreeze(const std::string& viewer,
                       const std::string& component);
  bool IsFrozen(const std::string& component) const {
    return freezes_.IsFrozen(component);
  }

  /// The viewer's private overlay (per-viewer CP-net extension), created
  /// on demand.
  Result<cpnet::ViewerOverlay*> OverlayFor(const std::string& viewer);

  /// Flattened choice events of every member, newest last.
  std::vector<doc::ViewerChoice> AllChoices() const;

  /// --- State snapshot and replay (room migration between interaction
  /// nodes, src/federation/) ---

  /// Deterministic byte snapshot of the full room state: document,
  /// configuration, members, timed choices, overlay shapes, freezes, and
  /// the action log with its importance flags. Two rooms that evolved
  /// through the same action sequence serialize identically — the
  /// equality a migration verifies before cutting over.
  Bytes Serialize() const;

  /// Re-applies one logged action through the public mutators. Failures
  /// are returned, not fatal: an action that failed when first applied
  /// (e.g. a frozen component) fails the same way on replay, leaving the
  /// same log entry behind.
  Status ApplyLogged(const UserAction& action);

  /// Rebuilds a room by replaying `log` against the pristine document
  /// the room was opened on. FailedPrecondition when the log is not
  /// replayable (see replayable()).
  static Result<std::unique_ptr<Room>> Replay(
      const std::string& id, doc::MultimediaDocument pristine,
      const std::vector<UserAction>& log);

  /// False once the document was structurally edited in place
  /// (AddComponent / RemoveComponent): those edits carry payloads the
  /// action log cannot store, so the log alone no longer reproduces the
  /// room and migration must refuse it.
  bool replayable() const { return replayable_; }

 private:
  /// Recomputes the configuration from all members' choices, producing
  /// the delta against the previous configuration.
  Result<ReconfigResult> Reconfigure();

  struct TimedChoice {
    std::string presentation;
    uint64_t sequence = 0;  ///< global submission order within the room
  };

  std::string id_;
  doc::MultimediaDocument document_;
  cpnet::Assignment configuration_;
  doc::PresentationView view_{&document_};
  /// viewer -> (component -> latest choice). Choices are flattened in
  /// submission order so that when two partners pin the same component,
  /// the most recent submission wins regardless of viewer names.
  std::map<std::string, std::map<std::string, TimedChoice>> choices_;
  uint64_t next_sequence_ = 1;
  std::map<std::string, std::unique_ptr<cpnet::ViewerOverlay>> overlays_;
  imaging::FreezeRegistry freezes_;
  std::vector<UserAction> action_log_;
  bool replayable_ = true;
};

}  // namespace mmconf::server

#endif  // MMCONF_SERVER_ROOM_H_
