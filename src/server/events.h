#ifndef MMCONF_SERVER_EVENTS_H_
#define MMCONF_SERVER_EVENTS_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "media/image.h"

namespace mmconf::server {

/// Kinds of user actions the interaction server tracks ("The interaction
/// server also keeps track of user actions and transfer them to the
/// presentation module, since such actions may change the way
/// presentation will be done").
enum class ActionType : uint8_t {
  kJoin = 0,
  kLeave,
  kChoice,         ///< explicit presentation selection for a component
  kReleaseChoice,  ///< withdraw an earlier selection
  kAnnotateText,   ///< write text on an image ("one user writes some text
                   ///< on an image... the others can see the text")
  kAnnotateLine,
  kDeleteElement,  ///< delete a text/line element
  kZoom,           ///< zoom a selected part of an image
  kSegmentOp,      ///< perform segmentation on an image component
  kFreeze,
  kReleaseFreeze,
};

const char* ActionTypeToString(ActionType type);

/// One user action, as recorded in a room's action log and forwarded to
/// the presentation module.
struct UserAction {
  ActionType type = ActionType::kJoin;
  std::string viewer;
  std::string component;
  /// kChoice: the selected presentation (domain value name).
  std::string presentation;
  /// kAnnotateText: text; kDeleteElement: element kind "text"/"line".
  std::string text;
  /// Annotation coordinates / zoom region.
  media::Rect region;
  /// kDeleteElement: id of the element to remove.
  int element_id = 0;
  /// kSegmentOp: number of segments.
  int num_segments = 4;
  MicrosT timestamp = 0;
  /// The §4.2 importance decision as recorded in the action log: whether
  /// the operation extended the shared CP-net (true) or only the acting
  /// viewer's private overlay. Kept on the logged copy so replaying the
  /// log (room migration) reproduces the same document evolution.
  bool globally_important = false;
};

}  // namespace mmconf::server

#endif  // MMCONF_SERVER_EVENTS_H_
