#include "server/room.h"

#include <algorithm>

namespace mmconf::server {

using cpnet::Assignment;
using doc::MultimediaDocument;
using doc::ViewerChoice;

const char* ActionTypeToString(ActionType type) {
  switch (type) {
    case ActionType::kJoin:
      return "join";
    case ActionType::kLeave:
      return "leave";
    case ActionType::kChoice:
      return "choice";
    case ActionType::kReleaseChoice:
      return "release-choice";
    case ActionType::kAnnotateText:
      return "annotate-text";
    case ActionType::kAnnotateLine:
      return "annotate-line";
    case ActionType::kDeleteElement:
      return "delete-element";
    case ActionType::kZoom:
      return "zoom";
    case ActionType::kSegmentOp:
      return "segment";
    case ActionType::kFreeze:
      return "freeze";
    case ActionType::kReleaseFreeze:
      return "release-freeze";
  }
  return "unknown";
}

Room::Room(std::string id, MultimediaDocument document)
    : id_(std::move(id)), document_(std::move(document)) {
  Result<Assignment> initial = document_.DefaultPresentation();
  configuration_ = initial.ok()
                       ? std::move(initial).value()
                       : Assignment(document_.num_variables());
  // Best effort: an unassigned fallback configuration cannot be resolved;
  // the first successful Reconfigure rebuilds the view.
  view_.Rebuild(configuration_).ok();
}

std::vector<std::string> Room::members() const {
  std::vector<std::string> names;
  names.reserve(choices_.size());
  for (const auto& [viewer, viewer_choices] : choices_) {
    names.push_back(viewer);
  }
  return names;
}

bool Room::HasMember(const std::string& viewer) const {
  return choices_.count(viewer) > 0;
}

Status Room::Join(const std::string& viewer) {
  if (HasMember(viewer)) {
    return Status::AlreadyExists("viewer \"" + viewer +
                                 "\" is already in room " + id_);
  }
  choices_.emplace(viewer, std::map<std::string, TimedChoice>());
  UserAction action;
  action.type = ActionType::kJoin;
  action.viewer = viewer;
  action_log_.push_back(action);
  return Status::OK();
}

Result<ReconfigResult> Room::Leave(const std::string& viewer) {
  auto it = choices_.find(viewer);
  if (it == choices_.end()) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  choices_.erase(it);
  overlays_.erase(viewer);
  freezes_.ReleaseAllHeldBy(viewer);
  UserAction action;
  action.type = ActionType::kLeave;
  action.viewer = viewer;
  action_log_.push_back(action);
  return Reconfigure();
}

std::vector<ViewerChoice> Room::AllChoices() const {
  // Flatten in global submission order: if two partners pinned the same
  // component, the later submission wins in EvidenceFrom.
  std::vector<std::pair<uint64_t, ViewerChoice>> timed;
  for (const auto& [viewer, viewer_choices] : choices_) {
    for (const auto& [component, choice] : viewer_choices) {
      timed.push_back({choice.sequence, {component, choice.presentation}});
    }
  }
  std::sort(timed.begin(), timed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ViewerChoice> all;
  all.reserve(timed.size());
  for (auto& [sequence, choice] : timed) {
    all.push_back(std::move(choice));
  }
  return all;
}

Result<ReconfigResult> Room::Reconfigure() {
  MMCONF_ASSIGN_OR_RETURN(Assignment next,
                          document_.ReconfigPresentation(AllChoices()));
  // Delta: only components (not operation variables) whose presentation
  // changed trigger redisplay traffic.
  MMCONF_ASSIGN_OR_RETURN(
      doc::MultimediaDocument::ConfigurationDelta delta,
      document_.DiffConfigurations(configuration_, next));
  MMCONF_RETURN_IF_ERROR(view_.Update(next, delta.changed_vars));
  ReconfigResult result;
  result.configuration = next;
  result.changed_components = std::move(delta.changed_components);
  result.changed_vars = std::move(delta.changed_vars);
  result.delta_cost_bytes = delta.redisplay_cost_bytes;
  configuration_ = std::move(next);
  return result;
}

Result<ReconfigResult> Room::SubmitChoice(const std::string& viewer,
                                          const std::string& component,
                                          const std::string& presentation) {
  auto it = choices_.find(viewer);
  if (it == choices_.end()) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  // Validate the component (and value, when choosing).
  MMCONF_RETURN_IF_ERROR(document_.VarOf(component).status());
  UserAction action;
  action.viewer = viewer;
  action.component = component;
  action.presentation = presentation;
  if (presentation.empty()) {
    it->second.erase(component);
    action.type = ActionType::kReleaseChoice;
  } else {
    // Reject unknown presentation names before recording the choice.
    MMCONF_RETURN_IF_ERROR(
        document_.EvidenceFrom({{component, presentation}}).status());
    it->second[component] = {presentation, next_sequence_++};
    action.type = ActionType::kChoice;
  }
  action_log_.push_back(action);
  return Reconfigure();
}

Result<ReconfigResult> Room::ApplyOperation(const UserAction& action,
                                            bool globally_important) {
  if (!HasMember(action.viewer)) {
    return Status::NotFound("viewer \"" + action.viewer +
                            "\" is not in room " + id_);
  }
  MMCONF_RETURN_IF_ERROR(
      freezes_.CheckMutable(action.component, action.viewer));
  MMCONF_ASSIGN_OR_RETURN(const doc::MultimediaComponent* component,
                          document_.Find(action.component));
  if (component->IsComposite()) {
    return Status::InvalidArgument("operations apply to primitive "
                                   "components only");
  }
  UserAction logged = action;
  logged.globally_important = globally_important;
  action_log_.push_back(logged);

  // Section 4.2: segmentation-style operations extend the preference
  // model, globally or per viewer.
  if (action.type == ActionType::kSegmentOp ||
      action.type == ActionType::kZoom) {
    // The component's current presentation is the trigger value.
    MMCONF_ASSIGN_OR_RETURN(
        doc::MMPresentation current,
        document_.PresentationFor(configuration_, action.component));
    std::string op_name = action.component + "." +
                          ActionTypeToString(action.type) + "#" +
                          std::to_string(action_log_.size());
    if (globally_important) {
      MMCONF_RETURN_IF_ERROR(
          document_
              .AddOperationVariable(action.component, current.name, op_name)
              .status());
    } else {
      MMCONF_ASSIGN_OR_RETURN(cpnet::ViewerOverlay * overlay,
                              OverlayFor(action.viewer));
      MMCONF_ASSIGN_OR_RETURN(cpnet::VarId var,
                              document_.VarOf(action.component));
      cpnet::ValueId trigger = configuration_.Get(var);
      MMCONF_RETURN_IF_ERROR(
          overlay
              ->AddOperationVariable(var, trigger, op_name, "applied",
                                     "plain")
              .status());
    }
  }
  return Reconfigure();
}

Result<ReconfigResult> Room::AddComponent(
    const std::string& viewer, const std::string& parent_composite,
    std::unique_ptr<doc::PrimitiveMultimediaComponent> component) {
  if (!HasMember(viewer)) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  MMCONF_RETURN_IF_ERROR(
      document_.AddComponent(parent_composite, std::move(component))
          .status());
  // The component payload cannot be stored in the action log, so from
  // here on the log no longer reproduces the room (see replayable()).
  replayable_ = false;
  overlays_.clear();  // Rebinding invalidated overlay variable ids.
  // The old configuration's variable ids are stale after rebinding:
  // treat the structural change as a full redisplay.
  configuration_ = cpnet::Assignment(document_.num_variables());
  return Reconfigure();
}

Result<ReconfigResult> Room::RemoveComponent(const std::string& viewer,
                                             const std::string& component) {
  if (!HasMember(viewer)) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  MMCONF_RETURN_IF_ERROR(freezes_.CheckMutable(component, viewer));
  MMCONF_RETURN_IF_ERROR(document_.RemoveComponent(component));
  replayable_ = false;
  // Drop state that referenced the removed component.
  for (auto& [member, member_choices] : choices_) {
    member_choices.erase(component);
  }
  if (freezes_.HolderOf(component) == viewer) {
    freezes_.Release(component, viewer).ok();
  }
  overlays_.clear();
  configuration_ = cpnet::Assignment(document_.num_variables());
  return Reconfigure();
}

Status Room::Freeze(const std::string& viewer,
                    const std::string& component) {
  if (!HasMember(viewer)) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  MMCONF_RETURN_IF_ERROR(document_.VarOf(component).status());
  MMCONF_RETURN_IF_ERROR(freezes_.Freeze(component, viewer));
  UserAction action;
  action.type = ActionType::kFreeze;
  action.viewer = viewer;
  action.component = component;
  action_log_.push_back(action);
  return Status::OK();
}

Status Room::ReleaseFreeze(const std::string& viewer,
                           const std::string& component) {
  MMCONF_RETURN_IF_ERROR(freezes_.Release(component, viewer));
  UserAction action;
  action.type = ActionType::kReleaseFreeze;
  action.viewer = viewer;
  action.component = component;
  action_log_.push_back(action);
  return Status::OK();
}

std::string Room::RenderActionLog() const {
  std::string out = "consultation log for room " + id_ + "\n";
  for (const UserAction& action : action_log_) {
    out += ActionTypeToString(action.type);
    out += ' ';
    out += action.viewer;
    if (!action.component.empty()) {
      out += ' ';
      out += action.component;
    }
    if (!action.presentation.empty()) {
      out += " as ";
      out += action.presentation;
    }
    if (!action.text.empty()) {
      out += ": ";
      out += action.text;
    }
    out += '\n';
  }
  return out;
}

Bytes Room::Serialize() const {
  // Text header, then the raw encoded document. Every container below is
  // an ordered map (or an append-only vector), so two rooms with equal
  // state produce identical bytes.
  std::string out;
  out += "room " + id_ + "\n";
  out += "replayable " + std::string(replayable_ ? "1" : "0") + "\n";
  out += "next_seq " + std::to_string(next_sequence_) + "\n";
  out += "config " + configuration_.ToString() + "\n";
  for (const auto& [viewer, viewer_choices] : choices_) {
    out += "member " + viewer + "\n";
    for (const auto& [component, choice] : viewer_choices) {
      out += "choice " + viewer + " " + component + " " +
             choice.presentation + " @" + std::to_string(choice.sequence) +
             "\n";
    }
  }
  for (const auto& [viewer, overlay] : overlays_) {
    if (overlay == nullptr || overlay->size() == 0) continue;
    out += "overlay " + viewer + "\n";
    for (size_t v = 0; v < overlay->size(); ++v) {
      const cpnet::VarId var = static_cast<cpnet::VarId>(v);
      out += "  var " + overlay->VariableName(var) + " {";
      for (const std::string& value : overlay->ValueNames(var)) {
        out += " " + value;
      }
      out += " }\n";
    }
  }
  for (const auto& [component, holder] : freezes_.holders()) {
    out += "freeze " + component + " by " + holder + "\n";
  }
  for (const UserAction& action : action_log_) {
    out += "log " + std::string(ActionTypeToString(action.type)) + " " +
           action.viewer + " " + action.component + " " +
           action.presentation + " " + action.text + " e" +
           std::to_string(action.element_id) + " s" +
           std::to_string(action.num_segments) + " g" +
           (action.globally_important ? "1" : "0") + "\n";
  }
  Bytes doc = document_.Encode();
  out += "doc " + std::to_string(doc.size()) + "\n";
  Bytes snapshot(out.begin(), out.end());
  snapshot.insert(snapshot.end(), doc.begin(), doc.end());
  return snapshot;
}

Status Room::ApplyLogged(const UserAction& action) {
  switch (action.type) {
    case ActionType::kJoin:
      return Join(action.viewer);
    case ActionType::kLeave:
      return Leave(action.viewer).status();
    case ActionType::kChoice:
      return SubmitChoice(action.viewer, action.component,
                          action.presentation)
          .status();
    case ActionType::kReleaseChoice:
      return SubmitChoice(action.viewer, action.component, "").status();
    case ActionType::kFreeze:
      return Freeze(action.viewer, action.component);
    case ActionType::kReleaseFreeze:
      return ReleaseFreeze(action.viewer, action.component);
    case ActionType::kAnnotateText:
    case ActionType::kAnnotateLine:
    case ActionType::kDeleteElement:
    case ActionType::kZoom:
    case ActionType::kSegmentOp:
      return ApplyOperation(action, action.globally_important).status();
  }
  return Status::InvalidArgument("unknown action type");
}

Result<std::unique_ptr<Room>> Room::Replay(
    const std::string& id, doc::MultimediaDocument pristine,
    const std::vector<UserAction>& log) {
  auto room = std::make_unique<Room>(id, std::move(pristine));
  for (const UserAction& action : log) {
    // A per-action failure is not divergence: an action that was rejected
    // when first applied (frozen component, unknown value) is rejected
    // identically here and leaves the identical log entry. Real
    // divergence is caught by the caller's Serialize() comparison.
    room->ApplyLogged(action).ok();
  }
  return room;
}

Result<cpnet::ViewerOverlay*> Room::OverlayFor(const std::string& viewer) {
  if (!HasMember(viewer)) {
    return Status::NotFound("viewer \"" + viewer + "\" is not in room " +
                            id_);
  }
  auto it = overlays_.find(viewer);
  if (it == overlays_.end()) {
    it = overlays_
             .emplace(viewer, std::make_unique<cpnet::ViewerOverlay>(
                                  &document_.net()))
             .first;
  }
  return it->second.get();
}

}  // namespace mmconf::server
