#include "server/interaction_server.h"

#include <algorithm>

#include "doc/tuning.h"

namespace mmconf::server {

using doc::MultimediaDocument;
using storage::FieldType;
using storage::MediaTypeEntry;
using storage::ObjectRef;

InteractionServer::InteractionServer(storage::ObjectStore* db,
                                     net::Network* network,
                                     net::NodeId server_node,
                                     net::NodeId db_node)
    : db_(db),
      network_(network),
      server_node_(server_node),
      db_node_(db_node) {}

void InteractionServer::SetObserver(obs::MetricsRegistry* metrics,
                                    obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics_ != nullptr) {
    m_joins_ = metrics_->GetCounter("server.joins");
    m_leaves_ = metrics_->GetCounter("server.leaves");
    m_evictions_ = metrics_->GetCounter("server.evictions");
    m_broadcasts_ = metrics_->GetCounter("server.broadcasts");
    m_propagate_rounds_ = metrics_->GetCounter("server.propagate.rounds");
    m_streams_opened_ = metrics_->GetCounter("server.streams.opened");
    m_join_latency_ = metrics_->GetHistogram(
        "server.join.latency_micros",
        {10000, 50000, 100000, 250000, 500000, 1000000, 5000000});
    m_delta_bytes_ = metrics_->GetHistogram(
        "server.propagate.delta_bytes",
        {1024, 4096, 16384, 65536, 262144, 1048576});
    m_t2c_ = metrics_->GetHistogram(
        "server.propagate.t2c_micros",
        {10000, 50000, 100000, 250000, 500000, 1000000, 5000000});
    m_reconfig_changed_ = metrics_->GetHistogram(
        "server.reconfig.changed_vars", {1, 2, 4, 8, 16, 32});
  } else {
    m_joins_ = nullptr;
    m_leaves_ = nullptr;
    m_evictions_ = nullptr;
    m_broadcasts_ = nullptr;
    m_propagate_rounds_ = nullptr;
    m_streams_opened_ = nullptr;
    m_join_latency_ = nullptr;
    m_delta_bytes_ = nullptr;
    m_t2c_ = nullptr;
    m_reconfig_changed_ = nullptr;
  }
  // Stale lanes/gauges would point into a previous observer's objects.
  room_obs_.clear();
  if (tracer_ != nullptr) {
    tracer_->SetProcessName(server_node_, network_->NodeName(server_node_));
    tracer_->SetProcessName(db_node_, network_->NodeName(db_node_));
  }
  for (auto& [room, scheduler] : stream_schedulers_) {
    scheduler->SetObserver(metrics_, tracer_);
  }
}

InteractionServer::RoomObs& InteractionServer::ObsFor(
    const std::string& room_id) {
  auto it = room_obs_.find(room_id);
  if (it != room_obs_.end()) return it->second;
  RoomObs obs;
  if (tracer_ != nullptr) {
    obs.tid = tracer_->Tid(server_node_, "room:" + room_id);
  }
  if (metrics_ != nullptr) {
    const std::string prefix = "server.room." + room_id + ".";
    obs.g_messages = metrics_->GetGauge(prefix + "messages");
    obs.g_retries = metrics_->GetGauge(prefix + "retries");
    obs.g_evictions = metrics_->GetGauge(prefix + "evictions");
    obs.g_t2c = metrics_->GetGauge(prefix + "t2c_micros");
  }
  return room_obs_.emplace(room_id, obs).first->second;
}

void InteractionServer::UseReliableTransport(
    net::ReliableTransport* transport, bool install_failure_callback) {
  transport_ = transport;
  if (transport_ != nullptr && install_failure_callback) {
    transport_->SetFailureCallback([this](const net::FailedMessage& failure) {
      HandleDeliveryFailure(failure);
    });
  }
}

Result<MicrosT> InteractionServer::Ship(net::NodeId from, net::NodeId to,
                                        size_t bytes, std::string tag,
                                        const std::string& room_id) {
  if (transport_ == nullptr) {
    return network_->Send(from, to, bytes, std::move(tag));
  }
  MMCONF_ASSIGN_OR_RETURN(net::SendHandle handle,
                          transport_->Send(from, to, bytes, std::move(tag)));
  if (!room_id.empty()) {
    msg_room_[handle.id] = room_id;
    outstanding_[room_id].push_back(handle.id);
    ++room_stats_[room_id].messages;
  }
  return handle.first_attempt_eta;
}

void InteractionServer::HandleDeliveryFailure(
    const net::FailedMessage& failure) {
  auto tracked = msg_room_.find(failure.id);
  if (tracked == msg_room_.end() || failure.from != server_node_) return;
  const std::string room_id = tracked->second;
  auto room_it = rooms_.find(room_id);
  if (room_it == rooms_.end()) return;
  Room* room = room_it->second.get();
  std::map<std::string, net::NodeId>& members = endpoints_[room_id];
  std::string viewer;
  for (const auto& [name, node] : members) {
    if (node == failure.to) {
      viewer = name;
      break;
    }
  }
  if (viewer.empty()) return;  // already evicted by an earlier failure
  members.erase(viewer);
  ++room_stats_[room_id].evictions;
  if (m_evictions_ != nullptr) m_evictions_->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(server_node_, ObsFor(room_id).tid, "evict-member",
                     "server", "node", failure.to);
  }
  // The evicted member's pinned choices are released; the survivors get
  // the resulting reconfiguration (reliably, so it retries too).
  Result<ReconfigResult> result = room->Leave(viewer);
  if (result.ok()) Propagate(room, *result, viewer).ok();
}

void InteractionServer::SettleRoomMessages(const std::string& room_id) {
  if (transport_ == nullptr) return;
  auto it = outstanding_.find(room_id);
  if (it == outstanding_.end()) return;
  RoomReliabilityStats& stats = room_stats_[room_id];
  std::vector<net::MsgId> still_open;
  for (net::MsgId id : it->second) {
    Result<net::SendState> state = transport_->StateOf(id);
    if (!state.ok()) {
      // The transport already forgot this message (retention window):
      // treat it as settled rather than leaking its room mapping.
      msg_room_.erase(id);
      continue;
    }
    if (*state == net::SendState::kInFlight) {
      still_open.push_back(id);
      continue;
    }
    int attempts = transport_->AttemptsOf(id).value_or(1);
    if (attempts > 1) stats.retries += static_cast<size_t>(attempts - 1);
    if (*state == net::SendState::kAcked) {
      MicrosT acked = transport_->AckedAt(id).value_or(0);
      stats.last_converged_at = std::max(stats.last_converged_at, acked);
    }
    msg_room_.erase(id);
    // Folded into stats — the transport no longer needs the record.
    transport_->Forget(id);
  }
  it->second = std::move(still_open);
  if (metrics_ == nullptr && tracer_ == nullptr) return;
  RoomObs& obs = ObsFor(room_id);
  if (obs.g_messages != nullptr) {
    obs.g_messages->Set(static_cast<int64_t>(stats.messages));
    obs.g_retries->Set(static_cast<int64_t>(stats.retries));
    obs.g_evictions->Set(static_cast<int64_t>(stats.evictions));
  }
  // The round's span and time-to-consistency are known only once its
  // last message settles.
  if (obs.round_open && it->second.empty() &&
      stats.last_converged_at >= stats.last_propagate_at) {
    obs.round_open = false;
    MicrosT t2c = stats.last_converged_at - stats.last_propagate_at;
    if (m_t2c_ != nullptr) m_t2c_->Observe(t2c);
    if (obs.g_t2c != nullptr) obs.g_t2c->Set(t2c);
    if (tracer_ != nullptr) {
      tracer_->Span(server_node_, obs.tid, "propagate", "server",
                    stats.last_propagate_at, stats.last_converged_at,
                    "t2c_micros", t2c);
    }
  }
}

Result<RoomReliabilityStats> InteractionServer::RoomStats(
    const std::string& room_id) {
  if (rooms_.count(room_id) == 0 && room_stats_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  SettleRoomMessages(room_id);
  return room_stats_[room_id];
}

bool InteractionServer::RoomConverged(const std::string& room_id) {
  SettleRoomMessages(room_id);
  auto it = outstanding_.find(room_id);
  return it == outstanding_.end() || it->second.empty();
}

Status InteractionServer::RegisterDocumentType() {
  if (db_->HasType("Document")) return Status::OK();
  MediaTypeEntry entry{"Document", "application/x-mm-document", "read-write",
                       "DOCUMENT_OBJECTS_TABLE",
                       "multimedia documents: component tree + CP-net"};
  return db_->RegisterType(entry, {{"FLD_NAME", FieldType::kString},
                                   {"FLD_DATA", FieldType::kBlob}});
}

Result<ObjectRef> InteractionServer::StoreDocument(
    const MultimediaDocument& document, const std::string& name) {
  MMCONF_RETURN_IF_ERROR(RegisterDocumentType());
  Bytes encoded = document.Encode();
  // The store travels over the server -> db link.
  MMCONF_RETURN_IF_ERROR(
      Ship(server_node_, db_node_, encoded.size(), "store-doc", "")
          .status());
  return db_->Store("Document", {{"FLD_NAME", name}},
                    {{"FLD_DATA", std::move(encoded)}});
}

Result<Room*> InteractionServer::OpenRoom(const std::string& room_id,
                                          const ObjectRef& document_ref) {
  if (rooms_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id + "\" already open");
  }
  MMCONF_ASSIGN_OR_RETURN(Bytes encoded,
                          db_->FetchBlob(document_ref, "FLD_DATA"));
  // The fetch travels over the db -> server link.
  MMCONF_RETURN_IF_ERROR(
      Ship(db_node_, server_node_, encoded.size(), "fetch-doc", "")
          .status());
  MMCONF_ASSIGN_OR_RETURN(MultimediaDocument document,
                          MultimediaDocument::Decode(encoded));
  return OpenRoomWithDocument(room_id, std::move(document));
}

Result<Room*> InteractionServer::OpenRoomWithDocument(
    const std::string& room_id, MultimediaDocument document) {
  if (rooms_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id + "\" already open");
  }
  auto room = std::make_unique<Room>(room_id, std::move(document));
  Room* raw = room.get();
  rooms_.emplace(room_id, std::move(room));
  endpoints_[room_id] = {};
  return raw;
}

Result<Room*> InteractionServer::AdoptRoom(
    const std::string& room_id, std::unique_ptr<Room> room,
    std::map<std::string, net::NodeId> members) {
  if (room == nullptr) {
    return Status::InvalidArgument("room must not be null");
  }
  if (rooms_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id + "\" already open");
  }
  Room* raw = room.get();
  rooms_.emplace(room_id, std::move(room));
  endpoints_[room_id] = std::move(members);
  return raw;
}

Result<std::map<std::string, net::NodeId>> InteractionServer::RoomEndpoints(
    const std::string& room_id) const {
  auto it = endpoints_.find(room_id);
  if (it == endpoints_.end()) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  return it->second;
}

Result<Room*> InteractionServer::GetRoom(const std::string& room_id) {
  auto it = rooms_.find(room_id);
  if (it == rooms_.end()) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  return it->second.get();
}

Status InteractionServer::CloseRoom(const std::string& room_id) {
  if (rooms_.erase(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  endpoints_.erase(room_id);
  auto open = outstanding_.find(room_id);
  if (open != outstanding_.end()) {
    for (net::MsgId id : open->second) msg_room_.erase(id);
    outstanding_.erase(open);
  }
  room_stats_.erase(room_id);
  stream_schedulers_.erase(room_id);
  client_caches_.erase(room_id);
  for (auto it = stream_room_.begin(); it != stream_room_.end();) {
    it = it->second == room_id ? stream_room_.erase(it) : std::next(it);
  }
  return Status::OK();
}

doc::BandwidthLevel InteractionServer::LevelFor(net::NodeId client) const {
  Result<net::LinkSpec> link = network_->GetLink(server_node_, client);
  if (!link.ok()) return doc::BandwidthLevel::kLow;
  return doc::ClassifyBandwidth(link->bandwidth_bytes_per_sec);
}

Result<ObjectRef> InteractionServer::ArchiveRoomLog(
    const std::string& room_id) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  std::string minutes = room->RenderActionLog();
  MMCONF_RETURN_IF_ERROR(
      Ship(server_node_, db_node_, minutes.size(), "archive-log", room_id)
          .status());
  return db_->Store("Text",
                    {{"FLD_TITLE", "minutes:" + room_id}},
                    {{"FLD_DATA", Bytes(minutes.begin(), minutes.end())}});
}

Result<MicrosT> InteractionServer::Join(const std::string& room_id,
                                        const ClientEndpoint& client) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  MMCONF_RETURN_IF_ERROR(room->Join(client.viewer));
  endpoints_[room_id][client.viewer] = client.node;
  // Ship the current presentation, transcoded for the member's downlink
  // (§4.4: "various transcoding formats of the multimedia objects
  // according to the communication bandwidth").
  MMCONF_ASSIGN_OR_RETURN(
      size_t cost,
      doc::TranscodedDeliveryCost(room->document(), room->configuration(),
                                  LevelFor(client.node)));
  MicrosT requested_at = network_->clock()->NowMicros();
  MMCONF_ASSIGN_OR_RETURN(
      MicrosT delivered,
      Ship(server_node_, client.node, cost, "initial-content", room_id));
  bytes_propagated_ += cost;
  if (m_joins_ != nullptr) {
    m_joins_->Add();
    if (delivered >= requested_at) {
      m_join_latency_->Observe(delivered - requested_at);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Span(server_node_, ObsFor(room_id).tid, "join", "server",
                  requested_at, std::max(delivered, requested_at), "bytes",
                  static_cast<int64_t>(cost));
  }
  return delivered;
}

Status InteractionServer::Leave(const std::string& room_id,
                                const std::string& viewer) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  MMCONF_ASSIGN_OR_RETURN(ReconfigResult result, room->Leave(viewer));
  endpoints_[room_id].erase(viewer);
  if (m_leaves_ != nullptr) m_leaves_->Add();
  return Propagate(room, result, viewer);
}

Status InteractionServer::Propagate(Room* room, const ReconfigResult& result,
                                    const std::string& origin) {
  if (result.changed_components.empty()) return Status::OK();
  if (transport_ != nullptr) {
    room_stats_[room->id()].last_propagate_at =
        network_->clock()->NowMicros();
    if (metrics_ != nullptr || tracer_ != nullptr) {
      ObsFor(room->id()).round_open = true;
    }
  }
  if (m_propagate_rounds_ != nullptr) {
    m_propagate_rounds_->Add();
    m_reconfig_changed_->Observe(
        static_cast<int64_t>(result.changed_vars.size()));
  }
  // The room's presentation view already resolved result.configuration,
  // so the changed items need no name lookups, ancestor walks, or
  // per-member re-resolution: collect the visible changed primitives
  // once, then price the delta once per bandwidth level (members on the
  // same class of link ship the same bytes).
  const doc::PresentationView& view = room->view();
  std::vector<std::pair<const doc::PrimitiveMultimediaComponent*,
                        const doc::MMPresentation*>>
      changed_items;
  changed_items.reserve(result.changed_vars.size());
  for (cpnet::VarId var : result.changed_vars) {
    if (var < 0 || static_cast<size_t>(var) >= view.num_components()) {
      continue;  // operation / tuning variables carry no content
    }
    const doc::PrimitiveMultimediaComponent* primitive = view.primitive(var);
    if (primitive == nullptr || !view.visible(var)) continue;
    const doc::MMPresentation* presentation = view.presentation(var);
    if (presentation->kind == doc::PresentationKind::kHidden) continue;
    changed_items.push_back({primitive, presentation});
  }
  size_t level_delta[3] = {0, 0, 0};
  bool level_priced[3] = {false, false, false};
  auto delta_for = [&](doc::BandwidthLevel level) {
    const size_t idx = static_cast<size_t>(level);
    if (!level_priced[idx]) {
      size_t total = 0;
      for (const auto& [primitive, presentation] : changed_items) {
        total +=
            doc::TranscodedPresentationCost(*primitive, *presentation, level);
      }
      level_delta[idx] = total;
      level_priced[idx] = true;
    }
    return level_delta[idx];
  };
  std::vector<std::string> unreachable;
  for (const auto& [viewer, node] : endpoints_[room->id()]) {
    if (viewer == origin) continue;
    // Per-client delta: the changed components, transcoded for this
    // member's downlink.
    size_t delta_bytes = delta_for(LevelFor(node));
    if (m_delta_bytes_ != nullptr) {
      m_delta_bytes_->Observe(static_cast<int64_t>(delta_bytes));
    }
    if (transport_ != nullptr) {
      // Reliable path: the transport retries with backoff; a member is
      // evicted via OnDeliveryFailure only once its budget is exhausted.
      MMCONF_RETURN_IF_ERROR(Ship(server_node_, node, delta_bytes,
                                  "presentation-delta", room->id())
                                 .status());
      bytes_propagated_ += delta_bytes;
      continue;
    }
    Status sent = network_
                      ->Send(server_node_, node, delta_bytes,
                             "presentation-delta")
                      .status();
    if (sent.IsNotFound()) {
      // Partitioned / crashed client: evict it below rather than wedging
      // the whole room.
      unreachable.push_back(viewer);
      continue;
    }
    MMCONF_RETURN_IF_ERROR(sent);
    bytes_propagated_ += delta_bytes;
  }
  for (const std::string& viewer : unreachable) {
    endpoints_[room->id()].erase(viewer);
    // Their pinned choices are released; the resulting reconfiguration
    // reaches the survivors on their next delta.
    room->Leave(viewer).status().ok();
  }
  return Status::OK();
}

Result<ReconfigResult> InteractionServer::SubmitChoice(
    const std::string& room_id, const std::string& viewer,
    const std::string& component, const std::string& presentation) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  MMCONF_ASSIGN_OR_RETURN(ReconfigResult result,
                          room->SubmitChoice(viewer, component,
                                             presentation));
  MMCONF_RETURN_IF_ERROR(Propagate(room, result, viewer));
  UserAction action;
  action.type = presentation.empty() ? ActionType::kReleaseChoice
                                     : ActionType::kChoice;
  action.viewer = viewer;
  action.component = component;
  action.presentation = presentation;
  FireTriggers(room, action);
  return result;
}

Result<ReconfigResult> InteractionServer::ApplyOperation(
    const std::string& room_id, const UserAction& action,
    bool globally_important) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  MMCONF_ASSIGN_OR_RETURN(ReconfigResult result,
                          room->ApplyOperation(action, globally_important));
  MMCONF_RETURN_IF_ERROR(Propagate(room, result, action.viewer));
  FireTriggers(room, action);
  return result;
}

Result<MicrosT> InteractionServer::Broadcast(const std::string& room_id,
                                             const std::string& tag,
                                             size_t bytes) {
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  (void)room;
  if (m_broadcasts_ != nullptr) m_broadcasts_->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(server_node_, ObsFor(room_id).tid, "broadcast",
                     "server", "bytes", static_cast<int64_t>(bytes));
  }
  MicrosT latest = 0;
  for (const auto& [viewer, node] : endpoints_[room_id]) {
    MMCONF_ASSIGN_OR_RETURN(
        MicrosT delivered, Ship(server_node_, node, bytes, tag, room_id));
    latest = std::max(latest, delivered);
    bytes_propagated_ += bytes;
  }
  return latest;
}

Result<stream::StreamId> InteractionServer::OpenStream(
    const std::string& room_id, const std::string& viewer,
    const std::vector<Bytes>& objects, stream::StreamOptions options) {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition(
        "streaming needs a reliable transport: the rate estimate feeds "
        "off ack timings (UseReliableTransport first)");
  }
  MMCONF_ASSIGN_OR_RETURN(Room * room, GetRoom(room_id));
  (void)room;
  auto members = endpoints_.find(room_id);
  if (members == endpoints_.end() ||
      members->second.count(viewer) == 0) {
    return Status::NotFound("no member \"" + viewer + "\" in room \"" +
                            room_id + "\"");
  }
  net::NodeId client = members->second.at(viewer);
  // Streaming shares the member's one client buffer with prefetch: the
  // playout budget is whatever the cache leaves free.
  auto room_caches = client_caches_.find(room_id);
  if (room_caches != client_caches_.end()) {
    auto cache = room_caches->second.find(viewer);
    if (cache != room_caches->second.end() && cache->second != nullptr) {
      size_t headroom = cache->second->capacity_bytes() -
                        std::min(cache->second->capacity_bytes(),
                                 cache->second->used_bytes());
      options.playout_buffer_bytes =
          std::min(options.playout_buffer_bytes, headroom);
    }
  }
  auto& scheduler = stream_schedulers_[room_id];
  if (scheduler == nullptr) {
    scheduler =
        std::make_unique<stream::StreamScheduler>(transport_, server_node_);
    scheduler->SetObserver(metrics_, tracer_);
  }
  stream::StreamId id = next_stream_id_++;
  MMCONF_RETURN_IF_ERROR(
      scheduler->Open(id, client, objects, options).status());
  stream_room_[id] = room_id;
  if (m_streams_opened_ != nullptr) m_streams_opened_->Add();
  return id;
}

Result<std::vector<net::Delivery>> InteractionServer::AdvanceStreams(
    MicrosT t) {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("streaming needs a reliable transport");
  }
  std::vector<net::Delivery> passthrough;
  while (true) {
    MicrosT now = network_->clock()->NowMicros();
    size_t sent = 0;
    for (auto& [room, scheduler] : stream_schedulers_) {
      scheduler->ObserveAcks();
      sent += scheduler->Pump(now);
    }
    MicrosT wake = -1;
    for (auto& [room, scheduler] : stream_schedulers_) {
      MicrosT at = scheduler->NextActionAt(now);
      if (at >= 0 && (wake < 0 || at < wake)) wake = at;
    }
    MicrosT step = t;
    if (wake >= 0 && wake < step) step = wake;
    if (step < now) step = now;
    std::vector<net::Delivery> batch = transport_->AdvanceTo(step);
    for (net::Delivery& delivery : batch) {
      bool consumed = false;
      for (auto& [room, scheduler] : stream_schedulers_) {
        if (scheduler->OnDelivery(delivery)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) passthrough.push_back(std::move(delivery));
    }
    MicrosT after = network_->clock()->NowMicros();
    bool progressed = sent > 0 || !batch.empty() || after > now;
    if (after >= t && !progressed) break;
  }
  return passthrough;
}

Result<std::vector<net::Delivery>>
InteractionServer::AdvanceStreamsUntilIdle() {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("streaming needs a reliable transport");
  }
  std::vector<net::Delivery> passthrough;
  while (true) {
    MicrosT now = network_->clock()->NowMicros();
    MicrosT wake = -1;
    for (auto& [room, scheduler] : stream_schedulers_) {
      MicrosT at = scheduler->NextActionAt(now);
      if (at >= 0 && (wake < 0 || at < wake)) wake = at;
    }
    if (wake >= 0) {
      MMCONF_ASSIGN_OR_RETURN(std::vector<net::Delivery> batch,
                              AdvanceStreams(wake));
      passthrough.insert(passthrough.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
      continue;
    }
    // No timer pending: only wire arrivals / retransmissions can make
    // progress. Drain the transport, then let the schedulers react.
    std::vector<net::Delivery> batch = transport_->AdvanceUntilIdle();
    size_t sent = 0;
    for (net::Delivery& delivery : batch) {
      bool consumed = false;
      for (auto& [room, scheduler] : stream_schedulers_) {
        if (scheduler->OnDelivery(delivery)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) passthrough.push_back(std::move(delivery));
    }
    for (auto& [room, scheduler] : stream_schedulers_) {
      scheduler->ObserveAcks();
      sent += scheduler->Pump(network_->clock()->NowMicros());
    }
    if (batch.empty() && sent == 0 && transport_->in_flight() == 0 &&
        network_->pending() == 0) {
      break;
    }
  }
  return passthrough;
}

Result<stream::StreamStats> InteractionServer::StreamSessionStats(
    stream::StreamId id) const {
  auto tracked = stream_room_.find(id);
  if (tracked == stream_room_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  auto scheduler = stream_schedulers_.find(tracked->second);
  if (scheduler == stream_schedulers_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  return scheduler->second->StatsFor(id);
}

Result<std::vector<stream::StreamStats>> InteractionServer::RoomStreamStats(
    const std::string& room_id) const {
  if (rooms_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  auto scheduler = stream_schedulers_.find(room_id);
  if (scheduler == stream_schedulers_.end()) {
    return std::vector<stream::StreamStats>();
  }
  return scheduler->second->AllStats();
}

Status InteractionServer::CloseStream(stream::StreamId id) {
  auto tracked = stream_room_.find(id);
  if (tracked == stream_room_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  auto scheduler = stream_schedulers_.find(tracked->second);
  Status closed = scheduler != stream_schedulers_.end()
                      ? scheduler->second->Close(id)
                      : Status::NotFound("no stream " + std::to_string(id));
  stream_room_.erase(tracked);
  return closed;
}

bool InteractionServer::StreamsIdle() const {
  for (const auto& [room, scheduler] : stream_schedulers_) {
    if (!scheduler->Idle()) return false;
  }
  return true;
}

size_t InteractionServer::num_streams() const {
  size_t total = 0;
  for (const auto& [room, scheduler] : stream_schedulers_) {
    total += scheduler->num_streams();
  }
  return total;
}

void InteractionServer::SeedStreamIds(stream::StreamId first) {
  next_stream_id_ = std::max(next_stream_id_, first);
}

Result<std::vector<stream::StreamCarryover>>
InteractionServer::ExportRoomStreams(const std::string& room_id) {
  if (rooms_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  auto scheduler_it = stream_schedulers_.find(room_id);
  if (scheduler_it == stream_schedulers_.end()) {
    return std::vector<stream::StreamCarryover>();
  }
  stream::StreamScheduler* scheduler = scheduler_it->second.get();
  scheduler->ObserveAcks();
  std::vector<stream::StreamId> ids;
  for (const auto& [id, room] : stream_room_) {
    if (room == room_id && scheduler->Owns(id)) ids.push_back(id);
  }
  // All-or-nothing: every stream must be exportable before any is
  // closed, so a FailedPrecondition leaves the room fully intact.
  std::vector<stream::StreamCarryover> exported;
  for (stream::StreamId id : ids) {
    MMCONF_ASSIGN_OR_RETURN(stream::StreamCarryover carry,
                            scheduler->ExportStream(id));
    if (!carry.chunks.empty()) exported.push_back(std::move(carry));
  }
  for (stream::StreamId id : ids) {
    scheduler->Close(id).ok();
    stream_room_.erase(id);
  }
  return exported;
}

Status InteractionServer::AdoptStream(const std::string& room_id,
                                      const stream::StreamCarryover& carry,
                                      MicrosT deadline_shift) {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("streaming needs a reliable transport");
  }
  if (rooms_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  if (stream_room_.count(carry.id) > 0) {
    return Status::AlreadyExists("stream " + std::to_string(carry.id) +
                                 " already tracked here");
  }
  auto& scheduler = stream_schedulers_[room_id];
  if (scheduler == nullptr) {
    scheduler =
        std::make_unique<stream::StreamScheduler>(transport_, server_node_);
    scheduler->SetObserver(metrics_, tracer_);
  }
  MMCONF_RETURN_IF_ERROR(scheduler->ImportStream(carry, deadline_shift));
  stream_room_[carry.id] = room_id;
  next_stream_id_ = std::max(next_stream_id_, carry.id + 1);
  return Status::OK();
}

void InteractionServer::ObserveStreamAcks() {
  for (auto& [room, scheduler] : stream_schedulers_) {
    scheduler->ObserveAcks();
  }
}

size_t InteractionServer::PumpStreams(MicrosT now) {
  size_t sent = 0;
  for (auto& [room, scheduler] : stream_schedulers_) {
    sent += scheduler->Pump(now);
  }
  return sent;
}

MicrosT InteractionServer::NextStreamActionAt(MicrosT now) const {
  MicrosT next = -1;
  for (const auto& [room, scheduler] : stream_schedulers_) {
    MicrosT at = scheduler->NextActionAt(now);
    if (at >= 0 && (next < 0 || at < next)) next = at;
  }
  return next;
}

bool InteractionServer::RouteDelivery(const net::Delivery& delivery) {
  for (auto& [room, scheduler] : stream_schedulers_) {
    if (scheduler->OnDelivery(delivery)) return true;
  }
  return false;
}

Status InteractionServer::AttachClientCache(const std::string& room_id,
                                            const std::string& viewer,
                                            prefetch::ClientCache* cache) {
  if (cache == nullptr) {
    return Status::InvalidArgument("cache must not be null");
  }
  auto members = endpoints_.find(room_id);
  if (members == endpoints_.end()) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  if (members->second.count(viewer) == 0) {
    return Status::NotFound("no member \"" + viewer + "\" in room \"" +
                            room_id + "\"");
  }
  client_caches_[room_id][viewer] = cache;
  return Status::OK();
}

Result<prefetch::CacheStats> InteractionServer::RoomCacheStats(
    const std::string& room_id) const {
  if (rooms_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id + "\"");
  }
  prefetch::CacheStats total;
  auto room_caches = client_caches_.find(room_id);
  if (room_caches == client_caches_.end()) return total;
  for (const auto& [viewer, cache] : room_caches->second) {
    if (cache == nullptr) continue;
    total.hits += cache->stats().hits;
    total.misses += cache->stats().misses;
    total.evictions += cache->stats().evictions;
    total.insertions += cache->stats().insertions;
  }
  return total;
}

int InteractionServer::RegisterTrigger(ActionType type, Trigger trigger) {
  int id = next_trigger_id_++;
  triggers_.push_back({id, type, std::move(trigger)});
  return id;
}

Status InteractionServer::RemoveTrigger(int trigger_id) {
  for (auto it = triggers_.begin(); it != triggers_.end(); ++it) {
    if (it->id == trigger_id) {
      triggers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no trigger with id " +
                          std::to_string(trigger_id));
}

void InteractionServer::FireTriggers(Room* room, const UserAction& action) {
  // Snapshot ids so a trigger that removes itself is safe.
  std::vector<int> due;
  for (const RegisteredTrigger& registered : triggers_) {
    if (registered.type == action.type) due.push_back(registered.id);
  }
  for (int id : due) {
    for (const RegisteredTrigger& registered : triggers_) {
      if (registered.id == id) {
        registered.trigger(*this, *room, action);
        break;
      }
    }
  }
}

}  // namespace mmconf::server
