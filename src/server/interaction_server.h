#ifndef MMCONF_SERVER_INTERACTION_SERVER_H_
#define MMCONF_SERVER_INTERACTION_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "doc/document.h"
#include "doc/tuning.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prefetch/cache.h"
#include "server/room.h"
#include "storage/object_store.h"
#include "stream/scheduler.h"

namespace mmconf::server {

/// Network location of a room member.
struct ClientEndpoint {
  std::string viewer;
  net::NodeId node = 0;
};

/// Per-room reliability counters, maintained when the server runs over a
/// ReliableTransport (see UseReliableTransport).
struct RoomReliabilityStats {
  size_t messages = 0;   ///< reliable messages shipped for this room
  size_t retries = 0;    ///< extra wire attempts its messages consumed
  size_t evictions = 0;  ///< members dropped after the retry budget ran out
  /// When the last propagation round started / fully acked. Their
  /// difference is the room's time-to-consistency for that round.
  MicrosT last_propagate_at = 0;
  MicrosT last_converged_at = 0;
};

/// The interaction-server tier of the paper's Fig. 1: "responsible for
/// the cooperative work in the system. It also calls the presentation
/// module when needed. The interaction server keeps track of all objects
/// in and out of shared rooms. If a client makes a change on a
/// multi-media object, that change is immediately propagated to other
/// clients in the room. The interaction server also calls the database
/// server to fetch and store objects."
///
/// Documents live in the database as BLOBs (type "Document"); rooms hold
/// decoded working copies; presentation changes are propagated over the
/// simulated network with only the changed components' bytes.
class InteractionServer {
 public:
  /// `db` and `network` must outlive the server. `db` is any
  /// ObjectStore implementation — a single DatabaseServer or the
  /// durable ShardedDatabaseServer facade (storage/sharded_db.h).
  /// `server_node` / `db_node` are this server's and the database's
  /// network locations (the server->db link models the JDBC hop).
  InteractionServer(storage::ObjectStore* db, net::Network* network,
                    net::NodeId server_node, net::NodeId db_node);

  InteractionServer(const InteractionServer&) = delete;
  InteractionServer& operator=(const InteractionServer&) = delete;

  /// Routes all subsequent sends (client propagation, broadcasts, and
  /// the server<->db hops) through `transport`, which must wrap the same
  /// Network and outlive the server. With a transport, a member is no
  /// longer evicted on the first failed send: messages are retried with
  /// backoff, and only when the retry budget is exhausted does the
  /// server evict the unreachable member and re-optimize for the
  /// survivors. Installs the transport's failure callback unless
  /// `install_failure_callback` is false — a federation tier sharing one
  /// transport between several servers installs its own dispatcher and
  /// routes each failure to the owning server's HandleDeliveryFailure.
  void UseReliableTransport(net::ReliableTransport* transport,
                            bool install_failure_callback = true);
  net::ReliableTransport* transport() const { return transport_; }
  net::NodeId server_node() const { return server_node_; }

  /// Transport failure entry point: evicts the member behind the dead
  /// link from the message's room and propagates the re-optimization.
  /// Wired as the transport callback by UseReliableTransport; called
  /// directly by a federation tier's shared-transport dispatcher.
  void HandleDeliveryFailure(const net::FailedMessage& failure);

  /// Reliability counters for a room (zeroed when no transport is set).
  /// Querying settles completed messages: retries and convergence time
  /// reflect every ack the transport has processed so far.
  Result<RoomReliabilityStats> RoomStats(const std::string& room_id);

  /// True when every reliable message shipped for the room has been
  /// acked or failed (always true without a transport).
  bool RoomConverged(const std::string& room_id);

  /// Registers the "Document" media type (idempotent).
  Status RegisterDocumentType();

  /// Persists a document as a BLOB object; returns its reference.
  Result<storage::ObjectRef> StoreDocument(
      const doc::MultimediaDocument& document, const std::string& name);

  /// Opens a room on a stored document (the Fig. 4a use case "Retrieving
  /// a document"): fetches the BLOB over the server<->db link, decodes
  /// it, and creates the room. AlreadyExists if the room id is taken.
  Result<Room*> OpenRoom(const std::string& room_id,
                         const storage::ObjectRef& document_ref);

  /// Opens a room on an in-memory document (no database hop).
  Result<Room*> OpenRoomWithDocument(const std::string& room_id,
                                     doc::MultimediaDocument document);

  Result<Room*> GetRoom(const std::string& room_id);
  Status CloseRoom(const std::string& room_id);

  /// Adopts a room built elsewhere (migration target side): registers it
  /// together with its member endpoints without shipping anyone initial
  /// content — the members already hold the presentation they watched on
  /// the source node. AlreadyExists if the room id is taken here.
  Result<Room*> AdoptRoom(const std::string& room_id,
                          std::unique_ptr<Room> room,
                          std::map<std::string, net::NodeId> members);

  /// The room's member -> network node map (migration reads it on the
  /// source to re-register everyone on the target).
  Result<std::map<std::string, net::NodeId>> RoomEndpoints(
      const std::string& room_id) const;

  /// Persists the room's consultation minutes (rendered action log) as a
  /// Text object in the database — the intro scenario's "results of the
  /// discussions ... stored ... for future search and reference". The
  /// returned object indexes like any other note (search::TextIndex).
  Result<storage::ObjectRef> ArchiveRoomLog(const std::string& room_id);
  size_t num_rooms() const { return rooms_.size(); }

  /// Adds a member and ships them the full current presentation; returns
  /// the simulated delivery timestamp of their initial content, or
  /// net::kEtaLinkDown when the member's link was down at send time and
  /// the transport is still retrying the content.
  Result<MicrosT> Join(const std::string& room_id,
                       const ClientEndpoint& client);

  /// Removes a member and propagates any resulting reconfiguration.
  Status Leave(const std::string& room_id, const std::string& viewer);

  /// Applies a viewer's presentation choice; propagates the delta to
  /// every *other* member ("each one of them sees the actions of the
  /// other"). Returns the reconfiguration (with delta size).
  Result<ReconfigResult> SubmitChoice(const std::string& room_id,
                                      const std::string& viewer,
                                      const std::string& component,
                                      const std::string& presentation);

  /// Applies an image/audio operation in a room, persists content changes
  /// to the database when `persist` names a blob column, and propagates
  /// the delta.
  Result<ReconfigResult> ApplyOperation(const std::string& room_id,
                                        const UserAction& action,
                                        bool globally_important);

  /// --- Broadcasting and dynamic event triggers (the paper's Section 6
  /// future work: "integrating broadcasting and dynamic event triggers
  /// into the system") ---

  /// Pushes an out-of-band message of `bytes` to every member of a room
  /// (announcements, pointers to new findings). Returns the latest
  /// delivery timestamp, or 0 for an empty room.
  Result<MicrosT> Broadcast(const std::string& room_id,
                            const std::string& tag, size_t bytes);

  /// Callback fired after an action of the registered type is applied in
  /// any room. Triggers observe the room (post-action state) and may use
  /// the server, e.g. to Broadcast — but must not re-enter the action
  /// that fired them.
  using Trigger =
      std::function<void(InteractionServer&, Room&, const UserAction&)>;

  /// Registers a trigger for an action type; multiple triggers per type
  /// fire in registration order. Returns an id for RemoveTrigger.
  int RegisterTrigger(ActionType type, Trigger trigger);
  Status RemoveTrigger(int trigger_id);
  size_t num_triggers() const { return triggers_.size(); }

  /// --- Media streaming (src/stream/): adaptive layered delivery with
  /// deadline scheduling, sharing the transport with Propagate traffic ---

  /// Opens a stream of encoded layered objects (compress::LayeredCodec
  /// bitstreams) toward a room member. Requires a reliable transport
  /// (the rate estimate feeds off ack timings). When the member has an
  /// attached prefetch cache, the stream's playout-buffer budget is
  /// clamped to the cache's free headroom — streaming and prefetch share
  /// the client's one buffer (§4.4). Returns the server-wide stream id.
  Result<stream::StreamId> OpenStream(const std::string& room_id,
                                      const std::string& viewer,
                                      const std::vector<Bytes>& objects,
                                      stream::StreamOptions options);

  /// Drives every room's stream scheduler and the shared transport up to
  /// virtual time `t`. Non-stream deliveries that arrived while pumping
  /// (presentation deltas, broadcasts, acks of other traffic) are passed
  /// through to the caller, exactly like ReliableTransport::AdvanceTo.
  Result<std::vector<net::Delivery>> AdvanceStreams(MicrosT t);

  /// Pumps until every open stream has finished (or aborted) and the
  /// transport has no stream traffic left.
  Result<std::vector<net::Delivery>> AdvanceStreamsUntilIdle();

  /// Delivery/quality counters of one stream.
  Result<stream::StreamStats> StreamSessionStats(stream::StreamId id) const;
  /// All streams of a room, for export next to RoomStats.
  Result<std::vector<stream::StreamStats>> RoomStreamStats(
      const std::string& room_id) const;
  Status CloseStream(stream::StreamId id);
  bool StreamsIdle() const;
  size_t num_streams() const;

  /// Reserves the stream-id space: ids issued from now on are >= `first`.
  /// A federation tier gives each node a disjoint range so streams keep
  /// their ids when they migrate between nodes.
  void SeedStreamIds(stream::StreamId first);

  /// Migration source side: snapshots and closes every live stream of
  /// the room (see stream::StreamCarryover). FailedPrecondition while
  /// any of them still has chunks in flight — settle the transport
  /// first. Finished/aborted streams are closed and not carried.
  Result<std::vector<stream::StreamCarryover>> ExportRoomStreams(
      const std::string& room_id);

  /// Migration target side: adopts one exported stream into the room's
  /// scheduler, shifting its remaining deadlines by `deadline_shift`.
  Status AdoptStream(const std::string& room_id,
                     const stream::StreamCarryover& carry,
                     MicrosT deadline_shift);

  /// --- Shared-transport pumping primitives (federation) ---
  /// When several servers share one ReliableTransport, no single server
  /// may pump it (AdvanceStreams would swallow the other servers'
  /// deliveries). The tier owns the pump loop and uses these to drive
  /// each server's schedulers and to offer every delivery to each server
  /// in turn.
  void ObserveStreamAcks();
  size_t PumpStreams(MicrosT now);
  MicrosT NextStreamActionAt(MicrosT now) const;
  /// True when the delivery was consumed as a chunk of one of this
  /// server's streams.
  bool RouteDelivery(const net::Delivery& delivery);

  /// Registers a member's client-side buffer so the server can observe
  /// prefetch hits/misses/evictions per room and budget streaming
  /// against it. The cache must outlive the membership.
  Status AttachClientCache(const std::string& room_id,
                           const std::string& viewer,
                           prefetch::ClientCache* cache);
  /// Aggregated prefetch-cache counters across a room's members — the
  /// buffer-contention signal next to RoomReliabilityStats.
  Result<prefetch::CacheStats> RoomCacheStats(
      const std::string& room_id) const;

  /// Total bytes this server pushed to clients so far.
  size_t bytes_propagated() const { return bytes_propagated_; }

  /// Publishes server activity into the obs layer: `server.*` counters
  /// and histograms (join latency, per-member delta bytes, reconfig
  /// sizes, propagate time-to-consistency), per-room registry gauges
  /// (`server.room.<id>.*`, refreshed whenever the room's messages are
  /// settled), and trace lanes (tid "room:<id>" under the server pid)
  /// carrying propagate->converged spans and eviction instants. Names
  /// the server/db processes after their network nodes and forwards the
  /// observer to every room's stream scheduler, current and future.
  /// Either pointer may be null; both must outlive the server.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  /// Sends `result`'s delta to every member except `origin` (empty
  /// origin = everyone, used for initial join payloads elsewhere).
  Status Propagate(Room* room, const ReconfigResult& result,
                   const std::string& origin);

  /// One server-originated send: via the transport when configured
  /// (tracking the message under `room_id` unless empty), else straight
  /// on the wire. Returns the (estimated) delivery timestamp, or
  /// net::kEtaLinkDown when the first attempt could not be scheduled.
  Result<MicrosT> Ship(net::NodeId from, net::NodeId to, size_t bytes,
                       std::string tag, const std::string& room_id);

  /// Folds finished transport messages into the room's stats.
  void SettleRoomMessages(const std::string& room_id);

  void FireTriggers(Room* room, const UserAction& action);

  /// Classifies a member's downlink for transcoding (kLow when the link
  /// is unknown/partitioned).
  doc::BandwidthLevel LevelFor(net::NodeId client) const;

  struct RegisteredTrigger {
    int id;
    ActionType type;
    Trigger trigger;
  };

  /// Per-room observability state: the room's trace lane and its
  /// registry-backed gauge views of RoomReliabilityStats (published by
  /// SettleRoomMessages, so reads are as fresh as the stats they
  /// mirror). `round_open` tracks an unconverged propagation round whose
  /// span is emitted once the last ack settles.
  struct RoomObs {
    int tid = 0;
    obs::Gauge* g_messages = nullptr;
    obs::Gauge* g_retries = nullptr;
    obs::Gauge* g_evictions = nullptr;
    obs::Gauge* g_t2c = nullptr;
    bool round_open = false;
  };
  /// Lazily interns the room's trace lane / gauges; safe no-handles
  /// state when no observer is attached.
  RoomObs& ObsFor(const std::string& room_id);

  storage::ObjectStore* db_;
  net::Network* network_;
  net::ReliableTransport* transport_ = nullptr;
  net::NodeId server_node_;
  net::NodeId db_node_;
  std::map<std::string, std::unique_ptr<Room>> rooms_;
  std::map<std::string, std::map<std::string, net::NodeId>> endpoints_;
  /// Transport bookkeeping: which room each reliable message belongs to,
  /// and the not-yet-settled message ids per room.
  std::map<net::MsgId, std::string> msg_room_;
  std::map<std::string, std::vector<net::MsgId>> outstanding_;
  std::map<std::string, RoomReliabilityStats> room_stats_;
  /// Streaming: one EDF scheduler per room, ids issued server-wide.
  std::map<std::string, std::unique_ptr<stream::StreamScheduler>>
      stream_schedulers_;
  std::map<stream::StreamId, std::string> stream_room_;
  stream::StreamId next_stream_id_ = 1;
  /// room -> viewer -> attached client buffer (not owned).
  std::map<std::string, std::map<std::string, prefetch::ClientCache*>>
      client_caches_;
  std::vector<RegisteredTrigger> triggers_;
  int next_trigger_id_ = 1;
  size_t bytes_propagated_ = 0;
  /// Observability (null = not instrumented). The registry pointer is
  /// kept (unlike the pure-handle subsystems) because rooms and their
  /// gauges appear dynamically.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::map<std::string, RoomObs> room_obs_;
  obs::Counter* m_joins_ = nullptr;
  obs::Counter* m_leaves_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_broadcasts_ = nullptr;
  obs::Counter* m_propagate_rounds_ = nullptr;
  obs::Counter* m_streams_opened_ = nullptr;
  obs::Histogram* m_join_latency_ = nullptr;
  obs::Histogram* m_delta_bytes_ = nullptr;
  obs::Histogram* m_t2c_ = nullptr;
  obs::Histogram* m_reconfig_changed_ = nullptr;
};

}  // namespace mmconf::server

#endif  // MMCONF_SERVER_INTERACTION_SERVER_H_
