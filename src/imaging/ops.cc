#include "imaging/ops.h"

#include <algorithm>
#include <cmath>

namespace mmconf::imaging {

using media::Image;
using media::Rect;

Result<Image> Zoom(const Image& image, Rect region, int out_width,
                   int out_height) {
  if (region.width <= 0 || region.height <= 0) {
    return Status::InvalidArgument("zoom region must be non-empty");
  }
  if (region.x < 0 || region.y < 0 ||
      region.x + region.width > image.width() ||
      region.y + region.height > image.height()) {
    return Status::OutOfRange("zoom region exceeds image bounds");
  }
  MMCONF_ASSIGN_OR_RETURN(Image out, Image::Create(out_width, out_height));
  for (int y = 0; y < out_height; ++y) {
    double sy = region.y +
                (y + 0.5) * region.height / static_cast<double>(out_height) -
                0.5;
    for (int x = 0; x < out_width; ++x) {
      double sx = region.x +
                  (x + 0.5) * region.width / static_cast<double>(out_width) -
                  0.5;
      int x0 = static_cast<int>(std::floor(sx));
      int y0 = static_cast<int>(std::floor(sy));
      double fx = sx - x0;
      double fy = sy - y0;
      auto sample = [&](int px, int py) {
        px = std::clamp(px, 0, image.width() - 1);
        py = std::clamp(py, 0, image.height() - 1);
        return static_cast<double>(image.at(px, py));
      };
      double v = (1 - fx) * (1 - fy) * sample(x0, y0) +
                 fx * (1 - fy) * sample(x0 + 1, y0) +
                 (1 - fx) * fy * sample(x0, y0 + 1) +
                 fx * fy * sample(x0 + 1, y0 + 1);
      out.set(x, y, static_cast<uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return out;
}

Result<Segmentation> Segment(const Image& image, int num_segments) {
  if (num_segments < 1 || num_segments > 255) {
    return Status::InvalidArgument("segment count must be in [1, 255]");
  }
  // 1D k-means over the 256-bin histogram.
  std::vector<size_t> histogram(256, 0);
  for (uint8_t p : image.pixels()) ++histogram[p];

  std::vector<double> centers(static_cast<size_t>(num_segments));
  for (int k = 0; k < num_segments; ++k) {
    centers[static_cast<size_t>(k)] =
        255.0 * (k + 0.5) / num_segments;  // evenly spaced start
  }
  std::vector<int> bin_label(256, 0);
  for (int iteration = 0; iteration < 50; ++iteration) {
    bool changed = false;
    for (int bin = 0; bin < 256; ++bin) {
      int best = 0;
      double best_distance = std::abs(bin - centers[0]);
      for (int k = 1; k < num_segments; ++k) {
        double d = std::abs(bin - centers[static_cast<size_t>(k)]);
        if (d < best_distance) {
          best_distance = d;
          best = k;
        }
      }
      if (bin_label[static_cast<size_t>(bin)] != best) {
        bin_label[static_cast<size_t>(bin)] = best;
        changed = true;
      }
    }
    for (int k = 0; k < num_segments; ++k) {
      double weighted = 0;
      size_t count = 0;
      for (int bin = 0; bin < 256; ++bin) {
        if (bin_label[static_cast<size_t>(bin)] == k) {
          weighted += static_cast<double>(bin) *
                      static_cast<double>(histogram[static_cast<size_t>(bin)]);
          count += histogram[static_cast<size_t>(bin)];
        }
      }
      if (count > 0) {
        centers[static_cast<size_t>(k)] =
            weighted / static_cast<double>(count);
      }
    }
    if (!changed) break;
  }
  // Relabel so segment ids ascend with intensity.
  std::vector<int> order(static_cast<size_t>(num_segments));
  for (int k = 0; k < num_segments; ++k) order[static_cast<size_t>(k)] = k;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return centers[static_cast<size_t>(a)] < centers[static_cast<size_t>(b)];
  });
  std::vector<int> rank(static_cast<size_t>(num_segments));
  for (int i = 0; i < num_segments; ++i) {
    rank[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
  }

  Segmentation seg;
  seg.width = image.width();
  seg.height = image.height();
  seg.num_segments = num_segments;
  seg.labels.resize(image.pixels().size());
  for (size_t i = 0; i < image.pixels().size(); ++i) {
    seg.labels[i] =
        rank[static_cast<size_t>(bin_label[image.pixels()[i]])];
  }
  return seg;
}

Result<Image> ApplySegmentation(const Image& image,
                                const Segmentation& segmentation,
                                const std::vector<SegmentStyle>& styles,
                                bool draw_boundaries) {
  if (segmentation.width != image.width() ||
      segmentation.height != image.height()) {
    return Status::InvalidArgument("segmentation does not match image size");
  }
  Image out = image;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      int label = segmentation.LabelAt(x, y);
      if (static_cast<size_t>(label) >= styles.size()) continue;
      const SegmentStyle& style = styles[static_cast<size_t>(label)];
      switch (style.pattern) {
        case FillPattern::kNone:
          break;
        case FillPattern::kSolid:
          out.set(x, y, style.intensity);
          break;
        case FillPattern::kHatch:
          if ((x + y) % 4 == 0) out.set(x, y, style.intensity);
          break;
        case FillPattern::kChecker:
          if ((x / 4 + y / 4) % 2 == 0) out.set(x, y, style.intensity);
          break;
      }
    }
  }
  if (draw_boundaries) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        int label = segmentation.LabelAt(x, y);
        bool boundary =
            (x + 1 < image.width() &&
             segmentation.LabelAt(x + 1, y) != label) ||
            (y + 1 < image.height() &&
             segmentation.LabelAt(x, y + 1) != label);
        if (boundary) out.set(x, y, 255);
      }
    }
  }
  return out;
}

Result<Image> SegmentedView(const Image& image, int num_segments) {
  MMCONF_ASSIGN_OR_RETURN(Segmentation seg, Segment(image, num_segments));
  std::vector<SegmentStyle> styles;
  const FillPattern cycle[] = {FillPattern::kNone, FillPattern::kHatch,
                               FillPattern::kChecker};
  for (int k = 0; k < num_segments; ++k) {
    styles.push_back({cycle[k % 3],
                      static_cast<uint8_t>(60 + (k * 40) % 180)});
  }
  return ApplySegmentation(image, seg, styles, /*draw_boundaries=*/true);
}

Result<Image> Downscale(const Image& image, int factor) {
  if (factor < 1 || image.width() % factor != 0 ||
      image.height() % factor != 0) {
    return Status::InvalidArgument(
        "downscale factor must divide both dimensions");
  }
  MMCONF_ASSIGN_OR_RETURN(
      Image out, Image::Create(image.width() / factor,
                               image.height() / factor));
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      long sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          sum += image.at(x * factor + dx, y * factor + dy);
        }
      }
      out.set(x, y,
              static_cast<uint8_t>(sum / (static_cast<long>(factor) *
                                          factor)));
    }
  }
  return out;
}

Result<RegionStats> ComputeRegionStats(const Image& image, Rect region) {
  if (region.width <= 0 || region.height <= 0) {
    return Status::InvalidArgument("region must be non-empty");
  }
  if (region.x < 0 || region.y < 0 ||
      region.x + region.width > image.width() ||
      region.y + region.height > image.height()) {
    return Status::OutOfRange("region exceeds image bounds");
  }
  RegionStats stats;
  double sum = 0, sum_sq = 0;
  for (int y = region.y; y < region.y + region.height; ++y) {
    for (int x = region.x; x < region.x + region.width; ++x) {
      uint8_t p = image.at(x, y);
      sum += p;
      sum_sq += static_cast<double>(p) * p;
      stats.min = std::min(stats.min, p);
      stats.max = std::max(stats.max, p);
      ++stats.pixels;
    }
  }
  stats.mean = sum / static_cast<double>(stats.pixels);
  double variance =
      sum_sq / static_cast<double>(stats.pixels) - stats.mean * stats.mean;
  stats.stddev = variance > 0 ? std::sqrt(variance) : 0;
  return stats;
}

Result<Image> EqualizeHistogram(const Image& image) {
  if (image.empty()) {
    return Status::InvalidArgument("cannot equalize an empty image");
  }
  std::vector<size_t> histogram(256, 0);
  for (uint8_t p : image.pixels()) ++histogram[p];
  // CDF remapping, ignoring the lowest occupied bin (standard
  // normalization so the darkest pixel maps to 0).
  std::vector<size_t> cdf(256, 0);
  size_t running = 0;
  for (int bin = 0; bin < 256; ++bin) {
    running += histogram[static_cast<size_t>(bin)];
    cdf[static_cast<size_t>(bin)] = running;
  }
  size_t cdf_min = 0;
  for (int bin = 0; bin < 256; ++bin) {
    if (histogram[static_cast<size_t>(bin)] > 0) {
      cdf_min = cdf[static_cast<size_t>(bin)];
      break;
    }
  }
  const size_t total = image.pixels().size();
  Image out = image;
  if (total == cdf_min) return out;  // Constant image: nothing to spread.
  for (uint8_t& p : out.mutable_pixels()) {
    double remapped = 255.0 *
                      static_cast<double>(cdf[p] - cdf_min) /
                      static_cast<double>(total - cdf_min);
    p = static_cast<uint8_t>(std::clamp(remapped, 0.0, 255.0));
  }
  return out;
}

Result<std::vector<Rect>> GridCells(int width, int height, int rows,
                                    int cols) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("grid canvas must be non-empty");
  }
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("grid must have positive rows and cols");
  }
  if (cols > width || rows > height) {
    return Status::InvalidArgument("grid finer than the canvas pixels");
  }
  // Edge(i) = i * extent / n is monotone with Edge(0) = 0 and
  // Edge(n) = extent, so consecutive edges tile the extent exactly and
  // every cell gets floor or ceil of extent / n pixels.
  auto edge = [](int i, int n, int extent) {
    return static_cast<int>(static_cast<long>(i) * extent / n);
  };
  std::vector<Rect> cells;
  cells.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    int y0 = edge(r, rows, height);
    int y1 = edge(r + 1, rows, height);
    for (int c = 0; c < cols; ++c) {
      int x0 = edge(c, cols, width);
      int x1 = edge(c + 1, cols, width);
      cells.push_back({x0, y0, x1 - x0, y1 - y0});
    }
  }
  return cells;
}

}  // namespace mmconf::imaging
