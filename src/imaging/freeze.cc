#include "imaging/freeze.h"

namespace mmconf::imaging {

Status FreezeRegistry::Freeze(const std::string& object_key,
                              const std::string& partner) {
  auto it = holders_.find(object_key);
  if (it != holders_.end()) {
    if (it->second == partner) return Status::OK();
    return Status::FailedPrecondition("object \"" + object_key +
                                      "\" is frozen by " + it->second);
  }
  holders_.emplace(object_key, partner);
  return Status::OK();
}

Status FreezeRegistry::Release(const std::string& object_key,
                               const std::string& partner) {
  auto it = holders_.find(object_key);
  if (it == holders_.end()) {
    return Status::NotFound("object \"" + object_key + "\" is not frozen");
  }
  if (it->second != partner) {
    return Status::FailedPrecondition("freeze on \"" + object_key +
                                      "\" is held by " + it->second +
                                      ", not " + partner);
  }
  holders_.erase(it);
  return Status::OK();
}

Status FreezeRegistry::CheckMutable(const std::string& object_key,
                                    const std::string& partner) const {
  auto it = holders_.find(object_key);
  if (it == holders_.end() || it->second == partner) return Status::OK();
  return Status::FailedPrecondition("object \"" + object_key +
                                    "\" is frozen by " + it->second);
}

bool FreezeRegistry::IsFrozen(const std::string& object_key) const {
  return holders_.count(object_key) > 0;
}

std::string FreezeRegistry::HolderOf(const std::string& object_key) const {
  auto it = holders_.find(object_key);
  return it == holders_.end() ? std::string() : it->second;
}

int FreezeRegistry::ReleaseAllHeldBy(const std::string& partner) {
  int released = 0;
  for (auto it = holders_.begin(); it != holders_.end();) {
    if (it->second == partner) {
      it = holders_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

}  // namespace mmconf::imaging
