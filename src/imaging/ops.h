#ifndef MMCONF_IMAGING_OPS_H_
#define MMCONF_IMAGING_OPS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "media/image.h"

namespace mmconf::imaging {

/// The paper's image-processing module: "Zooming of a selected part of
/// image. Deleting of text elements and line elements. Adding
/// Segmentation grid with possibility to fill different segments of the
/// segmentation with different colors or patterns." All operations are
/// pure (input image -> output image) so the interaction server can apply
/// them, persist the result, and propagate deltas to every room member.

/// Zooms region `region` of `image` to `out_width` x `out_height` using
/// bilinear interpolation. The region must be non-empty and inside the
/// image bounds.
Result<media::Image> Zoom(const media::Image& image, media::Rect region,
                          int out_width, int out_height);

/// Fill style for one segment of a segmentation.
enum class FillPattern : uint8_t {
  kNone = 0,     ///< leave pixels untouched
  kSolid,        ///< constant intensity
  kHatch,        ///< diagonal hatching blended over the pixels
  kChecker,      ///< checkerboard blend
};

/// One segment of a segmentation overlay: which label it covers and how
/// to render it.
struct SegmentStyle {
  FillPattern pattern = FillPattern::kNone;
  uint8_t intensity = 200;
};

/// Result of Segment(): a label per pixel plus the label count.
struct Segmentation {
  int width = 0;
  int height = 0;
  int num_segments = 0;
  std::vector<int> labels;  ///< row-major, in [0, num_segments)

  int LabelAt(int x, int y) const {
    return labels[static_cast<size_t>(y) * width + x];
  }
};

/// Segments the image into `num_segments` intensity classes by 1D k-means
/// on the gray histogram (Lloyd's algorithm, deterministic
/// evenly-spaced initialization). This is the "Segmentation grid" the
/// paper's module adds to CT images.
Result<Segmentation> Segment(const media::Image& image, int num_segments);

/// Renders a segmentation over an image: each segment styled per
/// `styles[label]` (styles shorter than num_segments leave remaining
/// segments untouched), plus grid lines along segment boundaries when
/// `draw_boundaries` is set.
Result<media::Image> ApplySegmentation(const media::Image& image,
                                       const Segmentation& segmentation,
                                       const std::vector<SegmentStyle>& styles,
                                       bool draw_boundaries);

/// Convenience: Segment + ApplySegmentation with a default style cycle —
/// produces the "segmented form" presentation option of a CT component.
Result<media::Image> SegmentedView(const media::Image& image,
                                   int num_segments);

/// Downscales by a power of two with box averaging (the "small icon"
/// presentation option).
Result<media::Image> Downscale(const media::Image& image, int factor);

/// Intensity statistics of a region — the measurement companion of the
/// zoom/segmentation tools (a physician inspecting a lesion reads its
/// density, not just its outline).
struct RegionStats {
  double mean = 0;
  double stddev = 0;
  uint8_t min = 255;
  uint8_t max = 0;
  long pixels = 0;
};

/// Computes statistics over `region`, which must be non-empty and inside
/// the image.
Result<RegionStats> ComputeRegionStats(const media::Image& image,
                                       media::Rect region);

/// Contrast-stretches the image by histogram equalization (standard CDF
/// remapping) — useful before segmenting low-contrast scans.
Result<media::Image> EqualizeHistogram(const media::Image& image);

/// Splits a width x height canvas into rows x cols cells that tile it
/// exactly: cell (r, c) spans [Edge(c, cols, width), Edge(c+1, cols,
/// width)) x [Edge(r, rows, height), Edge(r+1, rows, height)) with
/// Edge(i, n, extent) = i * extent / n (integer division), so
/// non-divisible extents spread the remainder pixels across the grid one
/// at a time. Every cell is non-empty, in bounds, and pairwise disjoint,
/// and their union is the full canvas — the region-safety contract the
/// mosaic compositor (src/fanout/) builds its tile rects on. Returned
/// row-major. InvalidArgument for non-positive dimensions or a grid
/// finer than the pixels (cols > width or rows > height would force
/// empty cells).
Result<std::vector<media::Rect>> GridCells(int width, int height, int rows,
                                           int cols);

}  // namespace mmconf::imaging

#endif  // MMCONF_IMAGING_OPS_H_
