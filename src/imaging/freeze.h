#ifndef MMCONF_IMAGING_FREEZE_H_
#define MMCONF_IMAGING_FREEZE_H_

#include <map>
#include <string>

#include "common/status.h"

namespace mmconf::imaging {

/// The paper's "Freezing of Multimedia Objects (by one partner from the
/// rest) and releasing the freeze": an advisory exclusive lock registry.
/// While an object is frozen by a partner, mutating operations from other
/// partners are rejected with FailedPrecondition; the holder (and only
/// the holder) releases it.
class FreezeRegistry {
 public:
  FreezeRegistry() = default;

  /// Freezes `object_key` on behalf of `partner`. Re-freezing by the same
  /// holder is a no-op; FailedPrecondition if another partner holds it.
  Status Freeze(const std::string& object_key, const std::string& partner);

  /// Releases the freeze. FailedPrecondition if `partner` is not the
  /// holder; NotFound if the object is not frozen.
  Status Release(const std::string& object_key, const std::string& partner);

  /// OK when `partner` may mutate the object (unfrozen, or frozen by
  /// `partner` themselves); FailedPrecondition naming the holder
  /// otherwise.
  Status CheckMutable(const std::string& object_key,
                      const std::string& partner) const;

  bool IsFrozen(const std::string& object_key) const;
  /// Holder of the freeze, or empty string when unfrozen.
  std::string HolderOf(const std::string& object_key) const;

  /// Releases everything held by `partner` (used when a client leaves a
  /// room). Returns the number of freezes released.
  int ReleaseAllHeldBy(const std::string& partner);

  size_t frozen_count() const { return holders_.size(); }

  /// Full registry view (object key -> holder), for state snapshots.
  const std::map<std::string, std::string>& holders() const {
    return holders_;
  }

 private:
  std::map<std::string, std::string> holders_;  // object key -> partner
};

}  // namespace mmconf::imaging

#endif  // MMCONF_IMAGING_FREEZE_H_
