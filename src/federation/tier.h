#ifndef MMCONF_FEDERATION_TIER_H_
#define MMCONF_FEDERATION_TIER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "doc/document.h"
#include "federation/placement.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/interaction_server.h"
#include "storage/object_store.h"

namespace mmconf::federation {

/// Shape of the federation: how many interaction nodes to stand up and
/// how they are wired to each other and to the shared database.
struct FederationOptions {
  size_t num_nodes = 2;
  /// node <-> node and node <-> db links (duplex).
  net::LinkSpec backbone{};
  /// Retry schedule of the one transport shared by every node.
  net::RetryPolicy retry{};
  /// Node i issues stream ids from i * stream_id_stride + 1, so a
  /// stream keeps its id when its room migrates between nodes.
  uint64_t stream_id_stride = 1ull << 32;
};

/// Per-node load snapshot (also published as fed.node.<i>.* gauges).
struct NodeLoad {
  size_t rooms = 0;
  size_t members = 0;
  size_t messages = 0;   ///< reliable messages shipped by this node
  size_t retries = 0;
  size_t evictions = 0;
  size_t bytes_propagated = 0;
};

/// What a completed migration did.
struct MigrationReport {
  std::string room_id;
  size_t from_node = 0;
  size_t to_node = 0;
  size_t state_bytes = 0;        ///< snapshot bytes shipped source -> target
  size_t replayed_actions = 0;   ///< log length replayed on the target
  size_t delta_actions = 0;      ///< of those, applied after StartMigration
  size_t streams_carried = 0;    ///< live streams moved with the room
  MicrosT started_at = 0;
  MicrosT completed_at = 0;
  bool verified = false;  ///< Serialize()-equal held before cutover
};

/// The interaction tier split across N nodes of one simulated network
/// (the paper's Fig. 1 interaction server, federated): a front door
/// admits each client to the node its room lives on (deterministic
/// hash placement plus a pin table), cross-node requests are forwarded
/// over the shared reliable transport, and live rooms migrate between
/// nodes by replaying their action log against the pristine document —
/// with byte-identical convergence (Room::Serialize equality) verified
/// before the cutover. All nodes share one ObjectStore (typically the
/// durable ShardedDatabaseServer facade) and one ReliableTransport.
///
/// Like every subsystem here the tier owns no threads: it is pumped via
/// Settle(), which drives the shared transport and every node's stream
/// schedulers (no single node's server may pump a shared transport —
/// it would swallow the other nodes' deliveries).
class FederatedInteractionTier {
 public:
  /// Creates `options.num_nodes` interaction nodes on `network` (named
  /// "fed-node-<i>"), wires every node to `db_node` and to every other
  /// node with the backbone link, and stands up the shared transport.
  /// Node 0 is the front door. `db` and `network` must outlive the tier.
  FederatedInteractionTier(storage::ObjectStore* db, net::Network* network,
                           net::NodeId db_node,
                           const FederationOptions& options);

  FederatedInteractionTier(const FederatedInteractionTier&) = delete;
  FederatedInteractionTier& operator=(const FederatedInteractionTier&) =
      delete;

  size_t num_nodes() const { return nodes_.size(); }
  server::InteractionServer* node(size_t i) { return nodes_[i].server.get(); }
  net::NodeId node_net(size_t i) const { return nodes_[i].net_id; }
  net::ReliableTransport* transport() { return transport_.get(); }
  const RoomPlacement& placement() const { return placement_; }

  /// Links `client` to every interaction node (duplex), so the front
  /// door can admit it wherever its room lands.
  Status ConnectClient(net::NodeId client, const net::LinkSpec& spec);

  /// Opens a room on the node the placement picks, fetching the document
  /// from the shared store. The tier keeps the pristine encoded document
  /// — it is what a migration replays the action log against.
  Result<server::Room*> OpenRoom(const std::string& room_id,
                                 const storage::ObjectRef& document_ref);
  Result<server::Room*> OpenRoomWithDocument(const std::string& room_id,
                                             doc::MultimediaDocument document);
  Status CloseRoom(const std::string& room_id);
  /// The node currently serving the room; NotFound when it is not open.
  Result<size_t> NodeOf(const std::string& room_id) const;
  Result<server::Room*> GetRoom(const std::string& room_id);
  size_t num_rooms() const { return room_docs_.size(); }

  /// Front-door admission: bills the admit hop front-door -> owner over
  /// the transport when the room lives elsewhere, then joins the client
  /// on the owning node.
  Result<MicrosT> Join(const std::string& room_id,
                       const server::ClientEndpoint& client);
  Status Leave(const std::string& room_id, const std::string& viewer);

  /// Direct-path operations on the owning node (the client was admitted
  /// there, so no forwarding hop).
  Result<server::ReconfigResult> SubmitChoice(const std::string& room_id,
                                              const std::string& viewer,
                                              const std::string& component,
                                              const std::string& presentation);
  Result<server::ReconfigResult> ApplyOperation(const std::string& room_id,
                                                const server::UserAction& action,
                                                bool globally_important);
  Result<MicrosT> Broadcast(const std::string& room_id,
                            const std::string& tag, size_t bytes);

  /// Mis-directed variants: the request arrived at `via_node` (a stale
  /// client, a dumb load balancer) and is forwarded to the owning node
  /// over the reliable transport before being applied there. Produces
  /// exactly the owning node's result plus the forwarding hop's bytes.
  Result<server::ReconfigResult> SubmitChoiceVia(
      size_t via_node, const std::string& room_id, const std::string& viewer,
      const std::string& component, const std::string& presentation);
  Result<MicrosT> BroadcastVia(size_t via_node, const std::string& room_id,
                               const std::string& tag, size_t bytes);

  /// --- Live-room migration ---

  /// Stage 1: snapshots the room's log position and ships the serialized
  /// state source -> target over the reliable transport. The room keeps
  /// serving on the source; actions applied between Start and Finish are
  /// replayed as the delta. FailedPrecondition for a non-replayable room
  /// (structural AddComponent/RemoveComponent edits) or one already
  /// migrating.
  Status StartMigration(const std::string& room_id, size_t target_node);

  /// Stage 2: settles the transport; aborts (room intact on the source)
  /// if the state transfer failed — e.g. the target was partitioned
  /// mid-migration. Otherwise replays the full log on the target,
  /// verifies byte-identical convergence (Room::Serialize equality)
  /// against the live source room, and only then cuts over: endpoints
  /// move, live streams are carried (deadlines rebased past the outage),
  /// the placement pins the room to the target, the source copy closes,
  /// and members get a "fed:rebind" broadcast from their new node.
  Result<MigrationReport> FinishMigration(const std::string& room_id);

  /// Start + Finish in one call.
  Result<MigrationReport> MigrateRoom(const std::string& room_id,
                                      size_t target_node);

  Status AbortMigration(const std::string& room_id);
  bool Migrating(const std::string& room_id) const {
    return migrations_.count(room_id) > 0;
  }

  /// Drives the shared transport until idle, pumping every node's
  /// stream schedulers and routing chunk deliveries to their owners;
  /// returns the non-stream deliveries (presentation deltas, broadcasts,
  /// forwarded requests) in arrival order.
  Result<std::vector<net::Delivery>> Settle();

  /// Routes one transport delivery-failure to the node that sent the
  /// failed message (the tier's own failure-callback body). Public so a
  /// co-driver sharing the transport — e.g. the broadcast director in
  /// src/fanout/, whose relay traffic the tier knows nothing about —
  /// can install a wrapping callback that handles its own tags first
  /// and forwards everything else here.
  void DispatchFailure(const net::FailedMessage& failure);

  /// Invoked at the end of every successful FinishMigration, after the
  /// "fed:rebind" broadcast is queued: (room_id, from_node, to_node).
  /// This is how a hosted broadcast session learns its room moved and
  /// re-roots its fan-out tree at the new home. Replaces any previous
  /// callback; pass nullptr to clear.
  using RoomMovedCallback = std::function<void(
      const std::string& room_id, size_t from_node, size_t to_node)>;
  void SetRoomMovedCallback(RoomMovedCallback callback) {
    on_room_moved_ = std::move(callback);
  }

  /// Per-node load snapshot; also refreshes the fed.node.<i>.* gauges
  /// and folds each settled room's latest time-to-consistency into the
  /// per-node tail-latency histograms.
  std::vector<NodeLoad> Loads();

  /// Publishes tier activity into the obs layer: per-node load gauges
  /// (fed.node.<i>.rooms/members/messages/retries/evictions/bytes),
  /// per-node tail-latency histograms (fed.node.<i>.t2c_micros),
  /// forwarding and migration counters/histograms (fed.routed,
  /// fed.route_micros, fed.migrations, fed.migrations_failed,
  /// fed.migration_micros), and migration spans on a "federation" trace
  /// lane. Forwarded to every node's server. Either pointer may be null.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  struct Node {
    net::NodeId net_id = 0;
    std::unique_ptr<server::InteractionServer> server;
    obs::Gauge* g_rooms = nullptr;
    obs::Gauge* g_members = nullptr;
    obs::Gauge* g_messages = nullptr;
    obs::Gauge* g_retries = nullptr;
    obs::Gauge* g_evictions = nullptr;
    obs::Gauge* g_bytes = nullptr;
    obs::Histogram* h_t2c = nullptr;
  };

  struct ActiveMigration {
    size_t from = 0;
    size_t to = 0;
    size_t log_snapshot = 0;     ///< source log length at Start
    net::MsgId state_msg = 0;    ///< the state-transfer message
    size_t state_bytes = 0;
    MicrosT started_at = 0;
  };

  /// Bills one forwarded hop `from_node` -> `to_node` over the
  /// transport and records it in the routing metrics.
  Status Forward(size_t from_node, size_t to_node, size_t bytes,
                 std::string tag);

  /// Drains every in-flight message (ack or retry-budget failure)
  /// WITHOUT pumping the stream schedulers: no new chunks are admitted,
  /// so a mid-stream room quiesces at a chunk boundary instead of
  /// playing out to the end. This is what migration uses — Settle()
  /// would finish the very streams it is trying to carry over.
  void Quiesce();

  /// Registers an opened room: pristine document bytes + obs refresh.
  void TrackRoom(const std::string& room_id, Bytes pristine);

  storage::ObjectStore* db_;
  net::Network* network_;
  net::NodeId db_node_;
  FederationOptions options_;
  std::unique_ptr<net::ReliableTransport> transport_;
  std::vector<Node> nodes_;
  RoomPlacement placement_;
  /// Open rooms -> the pristine encoded document they were opened on
  /// (the replay base for migration).
  std::map<std::string, Bytes> room_docs_;
  std::map<std::string, ActiveMigration> migrations_;
  RoomMovedCallback on_room_moved_;
  /// Last time-to-consistency round folded per room, so tail-latency
  /// histograms observe each converged round once.
  std::map<std::string, MicrosT> t2c_folded_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int fed_tid_ = 0;  ///< "federation" trace lane under the front door
  obs::Counter* m_routed_ = nullptr;
  obs::Counter* m_migrations_ = nullptr;
  obs::Counter* m_migrations_failed_ = nullptr;
  obs::Histogram* m_route_micros_ = nullptr;
  obs::Histogram* m_migration_micros_ = nullptr;
};

}  // namespace mmconf::federation

#endif  // MMCONF_FEDERATION_TIER_H_
