#include "federation/placement.h"

#include <algorithm>

namespace mmconf::federation {

uint64_t Fnv1a(const std::string& s) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : s) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  return hash;
}

RoomPlacement::RoomPlacement(size_t num_nodes)
    : num_nodes_(std::max<size_t>(num_nodes, 1)) {}

size_t RoomPlacement::NodeFor(const std::string& room_id) const {
  auto pin = pins_.find(room_id);
  if (pin != pins_.end()) return pin->second;
  return HashNodeFor(room_id);
}

size_t RoomPlacement::HashNodeFor(const std::string& room_id) const {
  return static_cast<size_t>(Fnv1a(room_id) % num_nodes_);
}

Status RoomPlacement::Pin(const std::string& room_id, size_t node) {
  if (node >= num_nodes_) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " out of range (" +
                              std::to_string(num_nodes_) + " nodes)");
  }
  pins_[room_id] = node;
  return Status::OK();
}

void RoomPlacement::Unpin(const std::string& room_id) {
  pins_.erase(room_id);
}

bool RoomPlacement::IsPinned(const std::string& room_id) const {
  return pins_.count(room_id) > 0;
}

}  // namespace mmconf::federation
