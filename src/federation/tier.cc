#include "federation/tier.h"

#include <algorithm>
#include <utility>

namespace mmconf::federation {

using server::ClientEndpoint;
using server::InteractionServer;
using server::ReconfigResult;
using server::Room;
using server::UserAction;

namespace {
/// Wire size of a forwarded control hop's framing (admission, routed
/// request headers) on top of any payload bytes.
constexpr size_t kForwardHeaderBytes = 96;
}  // namespace

FederatedInteractionTier::FederatedInteractionTier(
    storage::ObjectStore* db, net::Network* network, net::NodeId db_node,
    const FederationOptions& options)
    : db_(db),
      network_(network),
      db_node_(db_node),
      options_(options),
      placement_(options.num_nodes) {
  transport_ =
      std::make_unique<net::ReliableTransport>(network_, options_.retry);
  nodes_.reserve(placement_.num_nodes());
  for (size_t i = 0; i < placement_.num_nodes(); ++i) {
    Node node;
    node.net_id = network_->AddNode("fed-node-" + std::to_string(i));
    network_->SetDuplexLink(node.net_id, db_node_, options_.backbone).ok();
    for (const Node& peer : nodes_) {
      network_->SetDuplexLink(node.net_id, peer.net_id, options_.backbone)
          .ok();
    }
    node.server = std::make_unique<InteractionServer>(db_, network_,
                                                      node.net_id, db_node_);
    // The transport is shared: the tier owns its one failure callback
    // and dispatches below; each server keeps its ids disjoint.
    node.server->UseReliableTransport(transport_.get(),
                                      /*install_failure_callback=*/false);
    node.server->SeedStreamIds(static_cast<stream::StreamId>(i) *
                                   options_.stream_id_stride +
                               1);
    nodes_.push_back(std::move(node));
  }
  transport_->SetFailureCallback([this](const net::FailedMessage& failure) {
    DispatchFailure(failure);
  });
}

void FederatedInteractionTier::DispatchFailure(
    const net::FailedMessage& failure) {
  for (Node& node : nodes_) {
    if (node.server->server_node() == failure.from) {
      node.server->HandleDeliveryFailure(failure);
      return;
    }
  }
}

void FederatedInteractionTier::SetObserver(obs::MetricsRegistry* metrics,
                                           obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics_ != nullptr) {
    m_routed_ = metrics_->GetCounter("fed.routed");
    m_migrations_ = metrics_->GetCounter("fed.migrations");
    m_migrations_failed_ = metrics_->GetCounter("fed.migrations_failed");
    m_route_micros_ = metrics_->GetHistogram(
        "fed.route_micros", {1000, 5000, 10000, 50000, 100000, 500000});
    m_migration_micros_ = metrics_->GetHistogram(
        "fed.migration_micros",
        {10000, 50000, 100000, 250000, 500000, 1000000, 5000000});
  } else {
    m_routed_ = nullptr;
    m_migrations_ = nullptr;
    m_migrations_failed_ = nullptr;
    m_route_micros_ = nullptr;
    m_migration_micros_ = nullptr;
  }
  fed_tid_ = 0;
  if (tracer_ != nullptr && !nodes_.empty()) {
    fed_tid_ = tracer_->Tid(nodes_[0].net_id, "federation");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (metrics_ != nullptr) {
      const std::string prefix = "fed.node." + std::to_string(i) + ".";
      node.g_rooms = metrics_->GetGauge(prefix + "rooms");
      node.g_members = metrics_->GetGauge(prefix + "members");
      node.g_messages = metrics_->GetGauge(prefix + "messages");
      node.g_retries = metrics_->GetGauge(prefix + "retries");
      node.g_evictions = metrics_->GetGauge(prefix + "evictions");
      node.g_bytes = metrics_->GetGauge(prefix + "bytes_propagated");
      node.h_t2c = metrics_->GetHistogram(
          prefix + "t2c_micros",
          {10000, 50000, 100000, 250000, 500000, 1000000, 5000000});
    } else {
      node.g_rooms = nullptr;
      node.g_members = nullptr;
      node.g_messages = nullptr;
      node.g_retries = nullptr;
      node.g_evictions = nullptr;
      node.g_bytes = nullptr;
      node.h_t2c = nullptr;
    }
    node.server->SetObserver(metrics_, tracer_);
  }
}

Status FederatedInteractionTier::ConnectClient(net::NodeId client,
                                               const net::LinkSpec& spec) {
  for (const Node& node : nodes_) {
    MMCONF_RETURN_IF_ERROR(
        network_->SetDuplexLink(client, node.net_id, spec));
  }
  return Status::OK();
}

void FederatedInteractionTier::TrackRoom(const std::string& room_id,
                                         Bytes pristine) {
  room_docs_[room_id] = std::move(pristine);
}

Result<Room*> FederatedInteractionTier::OpenRoom(
    const std::string& room_id, const storage::ObjectRef& document_ref) {
  if (room_docs_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id +
                                 "\" already open in the federation");
  }
  size_t owner = placement_.NodeFor(room_id);
  MMCONF_ASSIGN_OR_RETURN(Bytes pristine,
                          db_->FetchBlob(document_ref, "FLD_DATA"));
  MMCONF_ASSIGN_OR_RETURN(Room * room,
                          nodes_[owner].server->OpenRoom(room_id,
                                                         document_ref));
  TrackRoom(room_id, std::move(pristine));
  return room;
}

Result<Room*> FederatedInteractionTier::OpenRoomWithDocument(
    const std::string& room_id, doc::MultimediaDocument document) {
  if (room_docs_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id +
                                 "\" already open in the federation");
  }
  size_t owner = placement_.NodeFor(room_id);
  Bytes pristine = document.Encode();
  MMCONF_ASSIGN_OR_RETURN(
      Room * room,
      nodes_[owner].server->OpenRoomWithDocument(room_id,
                                                 std::move(document)));
  TrackRoom(room_id, std::move(pristine));
  return room;
}

Status FederatedInteractionTier::CloseRoom(const std::string& room_id) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  MMCONF_RETURN_IF_ERROR(nodes_[owner].server->CloseRoom(room_id));
  room_docs_.erase(room_id);
  placement_.Unpin(room_id);
  migrations_.erase(room_id);
  t2c_folded_.erase(room_id);
  return Status::OK();
}

Result<size_t> FederatedInteractionTier::NodeOf(
    const std::string& room_id) const {
  if (room_docs_.count(room_id) == 0) {
    return Status::NotFound("no room \"" + room_id +
                            "\" in the federation");
  }
  return placement_.NodeFor(room_id);
}

Result<Room*> FederatedInteractionTier::GetRoom(const std::string& room_id) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  return nodes_[owner].server->GetRoom(room_id);
}

Status FederatedInteractionTier::Forward(size_t from_node, size_t to_node,
                                         size_t bytes, std::string tag) {
  MicrosT now = network_->clock()->NowMicros();
  MMCONF_ASSIGN_OR_RETURN(
      net::SendHandle handle,
      transport_->Send(nodes_[from_node].net_id, nodes_[to_node].net_id,
                       bytes, std::move(tag)));
  if (m_routed_ != nullptr) m_routed_->Add();
  if (m_route_micros_ != nullptr && handle.first_attempt_eta >= now) {
    m_route_micros_->Observe(handle.first_attempt_eta - now);
  }
  return Status::OK();
}

Result<MicrosT> FederatedInteractionTier::Join(const std::string& room_id,
                                               const ClientEndpoint& client) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  // Front-door admission: node 0 looks the room up and forwards the
  // request when it lives elsewhere.
  if (owner != 0) {
    MMCONF_RETURN_IF_ERROR(Forward(0, owner, kForwardHeaderBytes,
                                   "fed:admit:" + room_id));
  }
  return nodes_[owner].server->Join(room_id, client);
}

Status FederatedInteractionTier::Leave(const std::string& room_id,
                                       const std::string& viewer) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  return nodes_[owner].server->Leave(room_id, viewer);
}

Result<ReconfigResult> FederatedInteractionTier::SubmitChoice(
    const std::string& room_id, const std::string& viewer,
    const std::string& component, const std::string& presentation) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  return nodes_[owner].server->SubmitChoice(room_id, viewer, component,
                                            presentation);
}

Result<ReconfigResult> FederatedInteractionTier::ApplyOperation(
    const std::string& room_id, const UserAction& action,
    bool globally_important) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  return nodes_[owner].server->ApplyOperation(room_id, action,
                                              globally_important);
}

Result<MicrosT> FederatedInteractionTier::Broadcast(
    const std::string& room_id, const std::string& tag, size_t bytes) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  return nodes_[owner].server->Broadcast(room_id, tag, bytes);
}

Result<ReconfigResult> FederatedInteractionTier::SubmitChoiceVia(
    size_t via_node, const std::string& room_id, const std::string& viewer,
    const std::string& component, const std::string& presentation) {
  if (via_node >= nodes_.size()) {
    return Status::OutOfRange("no node " + std::to_string(via_node));
  }
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  if (via_node != owner) {
    MMCONF_RETURN_IF_ERROR(Forward(
        via_node, owner,
        kForwardHeaderBytes + component.size() + presentation.size(),
        "fed:route:" + room_id));
  }
  return nodes_[owner].server->SubmitChoice(room_id, viewer, component,
                                            presentation);
}

Result<MicrosT> FederatedInteractionTier::BroadcastVia(
    size_t via_node, const std::string& room_id, const std::string& tag,
    size_t bytes) {
  if (via_node >= nodes_.size()) {
    return Status::OutOfRange("no node " + std::to_string(via_node));
  }
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  if (via_node != owner) {
    MMCONF_RETURN_IF_ERROR(Forward(via_node, owner,
                                   kForwardHeaderBytes + bytes,
                                   "fed:route:" + room_id));
  }
  return nodes_[owner].server->Broadcast(room_id, tag, bytes);
}

Status FederatedInteractionTier::StartMigration(const std::string& room_id,
                                                size_t target_node) {
  MMCONF_ASSIGN_OR_RETURN(size_t owner, NodeOf(room_id));
  if (target_node >= nodes_.size()) {
    return Status::OutOfRange("no node " + std::to_string(target_node));
  }
  if (target_node == owner) {
    return Status::InvalidArgument("room \"" + room_id +
                                   "\" already lives on node " +
                                   std::to_string(target_node));
  }
  if (migrations_.count(room_id) > 0) {
    return Status::FailedPrecondition("room \"" + room_id +
                                      "\" is already migrating");
  }
  MMCONF_ASSIGN_OR_RETURN(Room * room,
                          nodes_[owner].server->GetRoom(room_id));
  if (!room->replayable()) {
    return Status::FailedPrecondition(
        "room \"" + room_id +
        "\" had structural document edits its log cannot replay; it "
        "cannot migrate");
  }
  Bytes state = room->Serialize();
  MMCONF_ASSIGN_OR_RETURN(
      net::SendHandle handle,
      transport_->Send(nodes_[owner].net_id, nodes_[target_node].net_id,
                       state.size(), "fed:state:" + room_id));
  ActiveMigration migration;
  migration.from = owner;
  migration.to = target_node;
  migration.log_snapshot = room->action_log().size();
  migration.state_msg = handle.id;
  migration.state_bytes = state.size();
  migration.started_at = network_->clock()->NowMicros();
  migrations_[room_id] = migration;
  if (tracer_ != nullptr) {
    tracer_->Instant(nodes_[0].net_id, fed_tid_, "migrate-start",
                     "federation", "bytes",
                     static_cast<int64_t>(state.size()));
  }
  return Status::OK();
}

Result<MigrationReport> FederatedInteractionTier::FinishMigration(
    const std::string& room_id) {
  auto it = migrations_.find(room_id);
  if (it == migrations_.end()) {
    return Status::NotFound("room \"" + room_id + "\" is not migrating");
  }
  const ActiveMigration migration = it->second;
  auto fail = [&](Status why) -> Result<MigrationReport> {
    migrations_.erase(room_id);
    if (m_migrations_failed_ != nullptr) m_migrations_failed_->Add();
    if (tracer_ != nullptr) {
      tracer_->Instant(nodes_[0].net_id, fed_tid_, "migrate-failed",
                       "federation");
    }
    return why;
  };
  // Resolve the state transfer (and everything else in flight) without
  // admitting new stream chunks — live streams must quiesce at a chunk
  // boundary so their positions can move with the room.
  Quiesce();
  Result<net::SendState> state = transport_->StateOf(migration.state_msg);
  if (!state.ok() || *state != net::SendState::kAcked) {
    return fail(Status::ResourceExhausted(
        "state transfer of room \"" + room_id + "\" to node " +
        std::to_string(migration.to) +
        " failed; the room stays on node " +
        std::to_string(migration.from)));
  }
  transport_->Forget(migration.state_msg);

  InteractionServer* source = nodes_[migration.from].server.get();
  InteractionServer* target = nodes_[migration.to].server.get();
  MMCONF_ASSIGN_OR_RETURN(Room * source_room, source->GetRoom(room_id));
  const size_t log_size = source_room->action_log().size();
  const size_t delta = log_size - migration.log_snapshot;
  // Ship the post-Start action delta the same reliable way — a target
  // that died after the snapshot landed still aborts the migration here.
  if (delta > 0) {
    MMCONF_ASSIGN_OR_RETURN(
        net::SendHandle delta_handle,
        transport_->Send(nodes_[migration.from].net_id,
                         nodes_[migration.to].net_id,
                         delta * kForwardHeaderBytes,
                         "fed:delta:" + room_id));
    Quiesce();
    Result<net::SendState> delta_state =
        transport_->StateOf(delta_handle.id);
    if (!delta_state.ok() || *delta_state != net::SendState::kAcked) {
      return fail(Status::ResourceExhausted(
          "action-delta transfer of room \"" + room_id + "\" to node " +
          std::to_string(migration.to) +
          " failed; the room stays on node " +
          std::to_string(migration.from)));
    }
    transport_->Forget(delta_handle.id);
  }

  // Rebuild the room on the target by replaying the full log against the
  // pristine document, then require byte-identical convergence with the
  // still-live source copy before anything is torn down.
  MMCONF_ASSIGN_OR_RETURN(
      doc::MultimediaDocument pristine,
      doc::MultimediaDocument::Decode(room_docs_.at(room_id)));
  MMCONF_ASSIGN_OR_RETURN(
      std::unique_ptr<Room> target_room,
      Room::Replay(room_id, std::move(pristine),
                   source_room->action_log()));
  if (target_room->Serialize() != source_room->Serialize()) {
    return fail(Status::Internal(
        "replayed state of room \"" + room_id +
        "\" diverged from the source; migration aborted before cutover"));
  }

  MMCONF_ASSIGN_OR_RETURN(auto members, source->RoomEndpoints(room_id));
  Result<std::vector<stream::StreamCarryover>> carried =
      source->ExportRoomStreams(room_id);
  if (!carried.ok()) return fail(carried.status());

  // Cutover: from here the target copy is the room.
  MMCONF_RETURN_IF_ERROR(
      target->AdoptRoom(room_id, std::move(target_room), std::move(members))
          .status());
  MicrosT now = network_->clock()->NowMicros();
  for (const stream::StreamCarryover& carry : carried.value()) {
    MicrosT shift = 0;
    if (!carry.chunks.empty()) {
      MicrosT first = carry.chunks.front().deadline;
      if (now + carry.options.interval_micros > first) {
        shift = now + carry.options.interval_micros - first;
      }
    }
    MMCONF_RETURN_IF_ERROR(target->AdoptStream(room_id, carry, shift));
  }
  MMCONF_RETURN_IF_ERROR(placement_.Pin(room_id, migration.to));
  source->CloseRoom(room_id).ok();
  migrations_.erase(room_id);
  // Members learn their new home from it, reliably.
  MMCONF_RETURN_IF_ERROR(
      target->Broadcast(room_id, "fed:rebind", kForwardHeaderBytes)
          .status());

  MigrationReport report;
  report.room_id = room_id;
  report.from_node = migration.from;
  report.to_node = migration.to;
  report.state_bytes = migration.state_bytes;
  report.replayed_actions = log_size;
  report.delta_actions = delta;
  report.streams_carried = carried->size();
  report.started_at = migration.started_at;
  report.completed_at = network_->clock()->NowMicros();
  report.verified = true;
  if (m_migrations_ != nullptr) m_migrations_->Add();
  if (m_migration_micros_ != nullptr) {
    m_migration_micros_->Observe(report.completed_at - report.started_at);
  }
  if (tracer_ != nullptr) {
    tracer_->Span(nodes_[0].net_id, fed_tid_,
                  ("migrate:" + room_id).c_str(), "federation",
                  report.started_at,
                  std::max(report.completed_at, report.started_at + 1),
                  "actions", static_cast<int64_t>(report.replayed_actions));
  }
  if (on_room_moved_) {
    on_room_moved_(room_id, migration.from, migration.to);
  }
  return report;
}

Result<MigrationReport> FederatedInteractionTier::MigrateRoom(
    const std::string& room_id, size_t target_node) {
  MMCONF_RETURN_IF_ERROR(StartMigration(room_id, target_node));
  return FinishMigration(room_id);
}

Status FederatedInteractionTier::AbortMigration(const std::string& room_id) {
  if (migrations_.erase(room_id) == 0) {
    return Status::NotFound("room \"" + room_id + "\" is not migrating");
  }
  return Status::OK();
}

void FederatedInteractionTier::Quiesce() {
  while (transport_->in_flight() > 0 || network_->pending() > 0) {
    std::vector<net::Delivery> batch = transport_->AdvanceUntilIdle();
    for (const net::Delivery& delivery : batch) {
      for (Node& node : nodes_) {
        if (node.server->RouteDelivery(delivery)) break;
      }
    }
    if (batch.empty()) break;  // failure callbacks sent nothing new
  }
  for (Node& node : nodes_) node.server->ObserveStreamAcks();
}

Result<std::vector<net::Delivery>> FederatedInteractionTier::Settle() {
  std::vector<net::Delivery> passthrough;
  while (true) {
    MicrosT now = network_->clock()->NowMicros();
    MicrosT wake = -1;
    for (Node& node : nodes_) {
      MicrosT at = node.server->NextStreamActionAt(now);
      if (at >= 0 && (wake < 0 || at < wake)) wake = at;
    }
    std::vector<net::Delivery> batch = wake >= 0
                                           ? transport_->AdvanceTo(wake)
                                           : transport_->AdvanceUntilIdle();
    for (net::Delivery& delivery : batch) {
      bool consumed = false;
      for (Node& node : nodes_) {
        if (node.server->RouteDelivery(delivery)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) passthrough.push_back(std::move(delivery));
    }
    size_t sent = 0;
    for (Node& node : nodes_) {
      node.server->ObserveStreamAcks();
      sent += node.server->PumpStreams(network_->clock()->NowMicros());
    }
    if (wake < 0 && batch.empty() && sent == 0 &&
        transport_->in_flight() == 0 && network_->pending() == 0) {
      break;
    }
  }
  return passthrough;
}

std::vector<NodeLoad> FederatedInteractionTier::Loads() {
  std::vector<NodeLoad> loads(nodes_.size());
  for (const auto& [room_id, pristine] : room_docs_) {
    size_t owner = placement_.NodeFor(room_id);
    InteractionServer* server = nodes_[owner].server.get();
    NodeLoad& load = loads[owner];
    ++load.rooms;
    Result<Room*> room = server->GetRoom(room_id);
    if (room.ok()) load.members += (*room)->members().size();
    Result<server::RoomReliabilityStats> stats = server->RoomStats(room_id);
    if (!stats.ok()) continue;
    load.messages += stats->messages;
    load.retries += stats->retries;
    load.evictions += stats->evictions;
    // Tail latency: fold each room's newest converged round once.
    MicrosT& folded = t2c_folded_[room_id];
    if (stats->last_propagate_at > 0 &&
        stats->last_converged_at >= stats->last_propagate_at &&
        stats->last_converged_at > folded) {
      folded = stats->last_converged_at;
      if (nodes_[owner].h_t2c != nullptr) {
        nodes_[owner].h_t2c->Observe(stats->last_converged_at -
                                     stats->last_propagate_at);
      }
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    loads[i].bytes_propagated = nodes_[i].server->bytes_propagated();
    Node& node = nodes_[i];
    if (node.g_rooms != nullptr) {
      node.g_rooms->Set(static_cast<int64_t>(loads[i].rooms));
      node.g_members->Set(static_cast<int64_t>(loads[i].members));
      node.g_messages->Set(static_cast<int64_t>(loads[i].messages));
      node.g_retries->Set(static_cast<int64_t>(loads[i].retries));
      node.g_evictions->Set(static_cast<int64_t>(loads[i].evictions));
      node.g_bytes->Set(static_cast<int64_t>(loads[i].bytes_propagated));
    }
  }
  return loads;
}

}  // namespace mmconf::federation
