#ifndef MMCONF_FEDERATION_PLACEMENT_H_
#define MMCONF_FEDERATION_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace mmconf::federation {

/// FNV-1a of a room id — the placement hash. Stable across processes
/// and platforms (no std::hash), so every front door in a deployment
/// computes the same node for the same room.
uint64_t Fnv1a(const std::string& s);

/// Deterministic room -> interaction-node placement: hash of the room id
/// modulo the node count, overridden by an explicit pin table. Pins are
/// how migrations stick (a migrated room pins to its new node) and how
/// operators drain a node by hand.
class RoomPlacement {
 public:
  explicit RoomPlacement(size_t num_nodes);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_pins() const { return pins_.size(); }

  /// The node serving `room_id`: its pin if one exists, else the hash.
  size_t NodeFor(const std::string& room_id) const;

  /// The hash placement alone, ignoring pins (what NodeFor falls back
  /// to after Unpin).
  size_t HashNodeFor(const std::string& room_id) const;

  /// OutOfRange unless node < num_nodes().
  Status Pin(const std::string& room_id, size_t node);
  void Unpin(const std::string& room_id);
  bool IsPinned(const std::string& room_id) const;

 private:
  size_t num_nodes_;
  std::map<std::string, size_t> pins_;
};

}  // namespace mmconf::federation

#endif  // MMCONF_FEDERATION_PLACEMENT_H_
