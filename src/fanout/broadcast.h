#ifndef MMCONF_FANOUT_BROADCAST_H_
#define MMCONF_FANOUT_BROADCAST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "doc/tuning.h"
#include "fanout/compositor.h"
#include "fanout/relay_tree.h"
#include "media/image.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/scheduler.h"

namespace mmconf::fanout {

/// Session configuration.
struct BroadcastOptions {
  RelayTreeOptions tree;
  CompositorOptions compositor;
  /// Composed frames kept for re-delivery after a relay is reparented
  /// (the frames its dead upstream link may have eaten).
  size_t frame_history = 8;
  /// Template for the sampled viewers' composed streams. interval and
  /// start deadline are filled in per frame.
  stream::StreamOptions viewer_stream;
  /// First viewer-stream id. The default sits far above the federation
  /// tier's per-node striding (node i issues from i * 2^32 + 1), so a
  /// broadcast can share the tier's transport without id collisions.
  stream::StreamId first_stream_id = 1ull << 48;
  /// Install this session as the shared transport's failure callback
  /// (standalone use). Leave false when a director owns the callback
  /// and forwards failures via OnSendFailure.
  bool install_failure_callback = true;
};

/// One real, fully simulated audience member: its own network node and
/// lossy last-mile link off an edge relay, receiving the composed video
/// as an actual StreamScheduler stream per frame (so the bases-never-
/// dropped invariant is asserted on real scheduler accounting) and the
/// mixed audio as reliable messages.
struct SampledViewerStats {
  net::NodeId node = 0;
  net::NodeId edge = 0;
  doc::BandwidthLevel level = doc::BandwidthLevel::kHigh;
  size_t frames_delivered = 0;  ///< composed video streams finished
  size_t frames_aborted = 0;    ///< streams that lost a base chunk (bad)
  size_t audio_messages = 0;
  size_t audio_bytes = 0;
};

/// Aggregate accounting of one broadcast (the EXPERIMENTS P8 numbers).
struct BroadcastStats {
  size_t frames = 0;            ///< frames pushed by the origin
  size_t audience = 0;          ///< aggregated (modeled) viewers
  size_t sampled_viewers = 0;   ///< real simulated viewers
  size_t relays = 0;
  size_t tree_edges = 0;
  size_t rebuilds = 0;          ///< reparent operations survived
  /// Measured on the Network: bytes the origin transmitted onto its
  /// first-hop links. Bounded by fanout x composed bytes per frame —
  /// sub-linear in the audience (the tentpole claim).
  size_t server_egress_bytes = 0;
  /// Measured bytes over every current tree edge (shared subpaths
  /// priced once each).
  size_t tree_wire_bytes = 0;
  /// Modeled edge-to-audience bytes: each aggregated viewer receives its
  /// class's composed frame once. This is the only term linear in the
  /// audience, and it is last-hop traffic no distribution scheme avoids.
  size_t modeled_last_hop_bytes = 0;
  /// What the origin's egress would have been without the tree: every
  /// viewer (aggregated + sampled) served its composed stream directly.
  size_t unicast_equiv_bytes = 0;
  size_t streams_opened = 0;    ///< sampled-viewer composed streams
  size_t streams_finished = 0;
  /// Streams aborted because a BASE chunk exhausted its retry budget.
  /// The no-base-drop acceptance gate asserts this stays 0 under
  /// injected loss (enhancement shedding is allowed and counted below).
  size_t streams_aborted = 0;
  size_t chunks_failed = 0;
  size_t enhancement_layers_dropped = 0;
  size_t audio_messages = 0;
  size_t audio_failures = 0;
  bool all_finished = false;    ///< every sampled stream resolved
};

/// A lecture/webinar broadcast: one hosting interaction node (the
/// origin) composes the room into one layered stream per bandwidth
/// class (Compositor) and replicates it one-to-many over a RelayTree
/// instead of once per viewer. View-only clients never join the room —
/// edge relays aggregate them; a handful of *sampled* viewers are
/// simulated end-to-end through the real stream::StreamScheduler so
/// delivery invariants are measured, not assumed.
///
/// Like every subsystem here the session owns no threads. Standalone it
/// is pumped via Settle(); under a federation tier the BroadcastDirector
/// drives ObserveAcks/Pump/OnDelivery inside the tier's own loop, since
/// no single owner may pump a shared transport.
class BroadcastSession {
 public:
  /// `network` and `transport` must outlive the session. `origin` is the
  /// hosting node (feeds the tree); `label` namespaces relay/viewer node
  /// names and wire tags so several sessions can share a transport.
  BroadcastSession(net::Network* network, net::ReliableTransport* transport,
                   net::NodeId origin, std::string label,
                   BroadcastOptions options = {});

  BroadcastSession(const BroadcastSession&) = delete;
  BroadcastSession& operator=(const BroadcastSession&) = delete;

  /// Builds the relay tree sized for `expected_audience` viewers. Must
  /// be called once, before any admission or frame.
  Status OpenAudience(size_t expected_audience);

  /// Front-door admission of `count` aggregated view-only clients of one
  /// bandwidth class: spreads them over the edge relays; their delivery
  /// is modeled (billed in modeled_last_hop_bytes), not simulated.
  Status AdmitAudience(size_t count, doc::BandwidthLevel level);

  /// Admits one real simulated viewer: adds a network node, hangs it off
  /// the least-loaded edge relay over `last_mile` with `faults` injected
  /// on the downstream direction, and returns the node id. Every frame
  /// reaching that edge opens a real composed stream toward it.
  Result<net::NodeId> AdmitSampledViewer(doc::BandwidthLevel level,
                                         const net::LinkSpec& last_mile,
                                         const net::FaultSpec& faults);

  /// Composes the next frame from the room's visible images and speaker
  /// tracks and sends one copy per first-hop relay (all three bandwidth
  /// classes ride the tree; edges pick what their viewers need).
  /// FailedPrecondition before OpenAudience or while paused.
  Status PushFrame(const std::vector<media::Image>& images,
                   const std::vector<SpeakerTrack>& tracks);

  /// --- pump interface (a director drives these inside its loop) ---

  /// Routes one application-level delivery: relay store-and-forward,
  /// edge fan-out to sampled viewers, viewer-side audio receipt, and
  /// chunk deliveries of this session's streams. True when consumed.
  bool OnDelivery(const net::Delivery& delivery);

  /// Handles a transport delivery-failure. A dead tree link reparents
  /// the orphaned relay's subtree and re-sends the recent frame history
  /// down the new link. True when the failure was this session's.
  bool OnSendFailure(const net::FailedMessage& failure);

  void ObserveAcks();
  size_t Pump(MicrosT now);
  MicrosT NextActionAt(MicrosT now) const;
  /// True when every sampled-viewer stream has resolved.
  bool Idle() const;

  /// Standalone drive loop: advances the shared transport, routes
  /// deliveries through OnDelivery, pumps the edge schedulers, and
  /// returns when everything is idle. Do not call when a tier shares
  /// the transport — use the BroadcastDirector's Settle instead.
  Status Settle();

  /// --- migration support ---

  /// Stops frame production so in-flight streams drain at a chunk
  /// boundary (pump to idle afterwards — under a director that happens
  /// inside the tier settle the migration itself runs).
  Status PauseAtChunkBoundary();
  bool paused() const { return paused_; }

  /// Re-roots the tree at the room's new hosting node and resumes frame
  /// production. FailedPrecondition unless paused.
  Status ResumeAt(net::NodeId new_origin);

  net::NodeId origin() const { return origin_; }
  const std::string& label() const { return label_; }
  uint32_t next_frame() const { return next_frame_; }
  const RelayTree* tree() const { return tree_.get(); }
  const Compositor& compositor() const { return compositor_; }
  const BroadcastOptions& options() const { return options_; }

  BroadcastStats Stats() const;
  Result<SampledViewerStats> ViewerStats(net::NodeId viewer) const;

  /// Publishes session activity into the obs layer: `fanout.*` counters
  /// (frames, relay forwards, reparents, history re-sends, streams,
  /// audio messages), the composed-frame wire-bytes histogram, and
  /// origin-side trace instants. Forwarded to the compositor (mix.*)
  /// and every edge scheduler. Either pointer may be null.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  struct HistoryEntry {
    uint32_t index = 0;
    bool valid = false;
    /// One serialized payload + tag per bandwidth class.
    std::vector<std::pair<std::string, Bytes>> sends;
  };

  struct ParsedFrame {
    uint32_t index = 0;
    doc::BandwidthLevel level = doc::BandwidthLevel::kHigh;
    std::vector<int> active_speakers;
    Bytes video;
    Bytes audio;
  };

  static Bytes SerializeFrame(const ComposedFrame& frame);
  static Result<ParsedFrame> ParseFrame(const Bytes& payload);

  /// Sends one serialized frame over a tree link.
  Status SendFrame(net::NodeId from, net::NodeId to, const std::string& tag,
                   const Bytes& payload);
  /// Edge-relay handling: open composed streams toward the sampled
  /// viewers of the frame's class and ship them the mixed audio.
  Status DeliverAtEdge(net::NodeId edge, const ParsedFrame& frame,
                       MicrosT now);
  /// Folds finished/aborted streams into the totals and closes them.
  void ReapStreams();
  stream::StreamScheduler* SchedulerFor(net::NodeId edge);

  net::Network* network_;
  net::ReliableTransport* transport_;
  net::NodeId origin_;
  std::string label_;
  BroadcastOptions options_;
  Compositor compositor_;
  std::unique_ptr<RelayTree> tree_;
  bool paused_ = false;
  uint32_t next_frame_ = 0;
  std::vector<HistoryEntry> history_;
  std::string frame_tag_prefix_;  ///< "fo:f:<label>:"
  std::string audio_tag_prefix_;  ///< "fo:a:<label>:"
  /// Per relay, (frame, level) keys already forwarded — dedup against
  /// history re-sends after a reparent (bounded, oldest evicted).
  std::map<net::NodeId, std::set<uint64_t>> seen_frames_;

  std::map<net::NodeId, std::unique_ptr<stream::StreamScheduler>>
      schedulers_;
  std::map<net::NodeId, SampledViewerStats> viewers_;
  size_t audience_[3] = {0, 0, 0};  ///< aggregated viewers per class
  size_t sampled_[3] = {0, 0, 0};
  stream::StreamId next_stream_id_;

  // Accounting folded from closed streams plus push-side modeling.
  size_t frames_pushed_ = 0;
  size_t modeled_last_hop_bytes_ = 0;
  size_t unicast_equiv_bytes_ = 0;
  size_t streams_opened_ = 0;
  size_t streams_finished_ = 0;
  size_t streams_aborted_ = 0;
  size_t chunks_failed_ = 0;
  size_t enhancement_layers_dropped_ = 0;
  size_t audio_messages_ = 0;
  size_t audio_failures_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_frames_ = nullptr;
  obs::Counter* m_forwards_ = nullptr;
  obs::Counter* m_reparents_ = nullptr;
  obs::Counter* m_resends_ = nullptr;
  obs::Counter* m_streams_ = nullptr;
  obs::Counter* m_audio_ = nullptr;
  obs::Histogram* m_frame_bytes_ = nullptr;
};

}  // namespace mmconf::fanout

#endif  // MMCONF_FANOUT_BROADCAST_H_
