#include "fanout/relay_tree.h"

#include <algorithm>
#include <utility>

namespace mmconf::fanout {

RelayTree::RelayTree(net::Network* network, net::NodeId root,
                     std::string label, RelayTreeOptions options)
    : network_(network),
      root_(root),
      label_(std::move(label)),
      options_(options) {
  if (options_.fanout < 2) options_.fanout = 2;
  if (options_.viewers_per_edge == 0) options_.viewers_per_edge = 1;
}

Status RelayTree::Build(size_t audience) {
  if (built()) {
    return Status::FailedPrecondition("relay tree already built");
  }
  size_t num_edges = std::max<size_t>(
      1, (audience + options_.viewers_per_edge - 1) /
             options_.viewers_per_edge);

  auto add_relay = [&](bool edge) {
    Relay relay;
    relay.node = network_->AddNode("relay-" + label_ + "-" +
                                   std::to_string(relays_.size()));
    relay.edge = edge;
    index_[relay.node] = relays_.size();
    relay_nodes_.push_back(relay.node);
    if (edge) edge_nodes_.push_back(relay.node);
    relays_.push_back(relay);
    return relay.node;
  };

  // Bottom-up: the edge level first, then interior levels packing up to
  // `fanout` children per parent, until one level fits under the root.
  std::vector<net::NodeId> level;
  level.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) level.push_back(add_relay(true));
  while (level.size() > options_.fanout) {
    std::vector<net::NodeId> parents;
    parents.reserve((level.size() + options_.fanout - 1) / options_.fanout);
    for (size_t i = 0; i < level.size(); i += options_.fanout) {
      net::NodeId parent = add_relay(false);
      for (size_t j = i; j < std::min(level.size(), i + options_.fanout);
           ++j) {
        relays_[index_.at(level[j])].parent = parent;
        MMCONF_RETURN_IF_ERROR(
            network_->SetDuplexLink(parent, level[j], options_.relay_link));
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
  }
  for (net::NodeId child : level) {
    relays_[index_.at(child)].parent = root_;
    MMCONF_RETURN_IF_ERROR(
        network_->SetDuplexLink(root_, child, options_.relay_link));
  }
  return Status::OK();
}

std::vector<std::pair<net::NodeId, net::NodeId>> RelayTree::Edges() const {
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;
  edges.reserve(relays_.size());
  for (const Relay& relay : relays_) {
    edges.emplace_back(relay.parent, relay.node);
  }
  return edges;
}

RelayTree::Relay* RelayTree::Find(net::NodeId node) {
  auto it = index_.find(node);
  return it == index_.end() ? nullptr : &relays_[it->second];
}

const RelayTree::Relay* RelayTree::Find(net::NodeId node) const {
  auto it = index_.find(node);
  return it == index_.end() ? nullptr : &relays_[it->second];
}

Result<net::NodeId> RelayTree::ParentOf(net::NodeId relay) const {
  const Relay* r = Find(relay);
  if (r == nullptr) return Status::NotFound("not a tree relay");
  return r->parent;
}

std::vector<net::NodeId> RelayTree::ChildrenOf(net::NodeId node) const {
  std::vector<net::NodeId> children;
  for (const Relay& relay : relays_) {
    if (relay.parent == node) children.push_back(relay.node);
  }
  return children;
}

bool RelayTree::IsEdge(net::NodeId node) const {
  const Relay* r = Find(node);
  return r != nullptr && r->edge;
}

Result<net::NodeId> RelayTree::AssignViewer() {
  if (!built()) return Status::FailedPrecondition("relay tree not built");
  Relay* best = nullptr;
  for (net::NodeId node : edge_nodes_) {
    Relay* relay = Find(node);
    if (best == nullptr || relay->viewers < best->viewers) best = relay;
  }
  ++best->viewers;
  ++total_viewers_;
  return best->node;
}

Status RelayTree::AssignAudience(size_t count) {
  if (!built()) return Status::FailedPrecondition("relay tree not built");
  // Equivalent to `count` AssignViewer calls, without the per-viewer
  // scan: level every edge up to the target mean, then round-robin the
  // remainder from the front.
  size_t total = total_viewers_ + count;
  size_t per_edge = total / edge_nodes_.size();
  size_t extra = total % edge_nodes_.size();
  for (size_t i = 0; i < edge_nodes_.size(); ++i) {
    Relay* relay = Find(edge_nodes_[i]);
    size_t target = per_edge + (i < extra ? 1 : 0);
    relay->viewers = std::max(relay->viewers, target);
  }
  total_viewers_ = 0;
  for (net::NodeId node : edge_nodes_) total_viewers_ += Find(node)->viewers;
  return Status::OK();
}

Status RelayTree::ReleaseViewer(net::NodeId edge) {
  Relay* relay = Find(edge);
  if (relay == nullptr || !relay->edge) {
    return Status::NotFound("not an edge relay");
  }
  if (relay->viewers == 0) {
    return Status::FailedPrecondition("edge relay has no viewers");
  }
  --relay->viewers;
  --total_viewers_;
  return Status::OK();
}

Result<size_t> RelayTree::ViewersAt(net::NodeId edge) const {
  const Relay* relay = Find(edge);
  if (relay == nullptr || !relay->edge) {
    return Status::NotFound("not an edge relay");
  }
  return relay->viewers;
}

Result<net::NodeId> RelayTree::Reparent(net::NodeId relay) {
  Relay* orphan = Find(relay);
  if (orphan == nullptr) return Status::NotFound("not a tree relay");
  // A subtree member of `relay` must not adopt it — that would cut the
  // subtree loose as a cycle. Collect the subtree first.
  std::vector<net::NodeId> subtree = {relay};
  for (size_t i = 0; i < subtree.size(); ++i) {
    for (net::NodeId child : ChildrenOf(subtree[i])) {
      subtree.push_back(child);
    }
  }
  auto in_subtree = [&](net::NodeId node) {
    return std::find(subtree.begin(), subtree.end(), node) != subtree.end();
  };
  net::NodeId new_parent = root_;
  if (orphan->parent == root_) {
    // The root's own link died; hang the subtree under the
    // lowest-index sibling subtree instead.
    new_parent = -1;
    for (const Relay& candidate : relays_) {
      if (candidate.parent == root_ && !in_subtree(candidate.node)) {
        new_parent = candidate.node;
        break;
      }
    }
    if (new_parent < 0) {
      return Status::FailedPrecondition(
          "no healthy sibling to re-hang the subtree under");
    }
  }
  MMCONF_RETURN_IF_ERROR(
      network_->SetDuplexLink(new_parent, relay, options_.relay_link));
  orphan->parent = new_parent;
  ++rebuilds_;
  return new_parent;
}

Status RelayTree::Reroot(net::NodeId new_root) {
  if (new_root == root_) return Status::OK();
  for (Relay& relay : relays_) {
    if (relay.parent != root_) continue;
    MMCONF_RETURN_IF_ERROR(
        network_->SetDuplexLink(new_root, relay.node, options_.relay_link));
    relay.parent = new_root;
  }
  root_ = new_root;
  return Status::OK();
}

size_t RelayTree::TreeWireBytes() const {
  size_t total = 0;
  for (const Relay& relay : relays_) {
    total += network_->BytesSent(relay.parent, relay.node);
  }
  return total;
}

size_t RelayTree::RootEgressBytes() const {
  size_t total = 0;
  for (const Relay& relay : relays_) {
    if (relay.parent == root_) {
      total += network_->BytesSent(root_, relay.node);
    }
  }
  return total;
}

}  // namespace mmconf::fanout
