#ifndef MMCONF_FANOUT_COMPOSITOR_H_
#define MMCONF_FANOUT_COMPOSITOR_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "compress/layered_codec.h"
#include "doc/tuning.h"
#include "media/audio.h"
#include "media/image.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmconf::fanout {

/// One participant's audio as the mixer sees it: the signal plus the
/// speech spans the voice module's segmentation attributed to them
/// (media::AudioSegment with cls == kSpeech; other classes are ignored).
struct SpeakerTrack {
  int speaker = -1;
  const media::AudioSignal* signal = nullptr;
  std::vector<media::AudioSegment> segments;
};

/// Active-speaker mixing knobs.
struct MixOptions {
  /// Speakers mixed per window; everyone else is muted for that window.
  size_t max_active = 2;
  /// Selection window. Activity is scored per window so a speaker
  /// handoff switches the mix within one window, not one frame.
  MicrosT window_micros = 250000;
  /// Salt of the deterministic tie-break. Selection ranks speakers by
  /// (speech samples in window, splitmix64(seed ^ speaker), speaker):
  /// no container iteration order, no pointer identity — seed-for-seed
  /// the composed output is byte-identical, shuffled input included.
  uint64_t tie_seed = 0x5eedau;
};

/// Output of MixActiveSpeakers.
struct MixResult {
  media::AudioSignal mixed;
  /// Selected speaker ids per window, selection rank order.
  std::vector<std::vector<int>> active_per_window;
  size_t windows = 0;
  /// Windows where the cut between selected and muted fell inside a
  /// group with equal activity — i.e. the seeded tie-break decided.
  size_t ties_broken = 0;
};

/// Deterministic tie-break key: rank = splitmix64(seed ^ speaker id).
uint64_t SpeakerTieRank(uint64_t seed, int speaker);

/// Mixes the `max_active` most active speakers per window into one
/// track: activity is the count of samples the track's speech segments
/// cover inside the window, ties broken by SpeakerTieRank. Selected
/// signals are averaged (selected count, not max_active, so a lone
/// speaker keeps full level) and clamped to [-1, 1]. Tracks may have
/// different lengths (shorter ones are silence-padded); sample rates
/// must agree and speaker ids must be unique. An empty track list mixes
/// `total_samples` of silence.
Result<MixResult> MixActiveSpeakers(const std::vector<SpeakerTrack>& tracks,
                                    size_t total_samples, int sample_rate,
                                    const MixOptions& options);

/// Mosaic layout knobs.
struct MosaicOptions {
  int width = 256;
  int height = 256;
  uint8_t background = 24;
  /// Paint 1-px tile boundaries (the segmentation-grid aesthetic).
  bool draw_borders = true;
  uint8_t border_intensity = 96;
};

/// Composes the sources into a near-square grid mosaic: cols =
/// ceil(sqrt(n)), rows = ceil(n / cols), cell rects from
/// imaging::GridCells (exact tiling, so non-divisible dimensions never
/// produce an out-of-bounds region op), each source bilinearly resampled
/// into its cell via imaging::Zoom. Zero sources produce a bare
/// background frame, one source fills the whole canvas, and unused
/// cells stay background. Deterministic: tile order is input order.
Result<media::Image> ComposeMosaic(const std::vector<media::Image>& sources,
                                   const MosaicOptions& options);

/// One composed broadcast frame for one bandwidth class.
struct ComposedFrame {
  uint32_t index = 0;
  doc::BandwidthLevel level = doc::BandwidthLevel::kHigh;
  /// LayeredCodec bitstream of the mosaic — a complete layered object,
  /// so it rides the existing stream::Chunker/StreamScheduler machinery
  /// and inherits its bases-never-dropped invariant.
  Bytes video;
  /// 16-bit PCM of the mixed window (media::AudioSignal::Encode).
  Bytes audio;
  std::vector<int> active_speakers;
};

/// Compositor configuration.
struct CompositorOptions {
  compress::CodecOptions codec;
  /// Mosaic side per bandwidth class. Must satisfy the codec's
  /// decomposition constraints (defaults: multiples of 16).
  int high_px = 256;
  int medium_px = 128;
  int low_px = 64;
  MosaicOptions mosaic;  ///< width/height overridden per class
  MixOptions mix;
  /// One frame covers this much of the room's audio timeline.
  MicrosT frame_interval_micros = 500000;
};

/// The server-side composition stage: turns the room's visible image
/// objects and its participants' audio into one layered composed stream
/// per bandwidth class — a viewer downloads one mosaic video object and
/// one mixed audio track per frame instead of M object streams. Pure
/// and deterministic: identical inputs yield byte-identical frames, the
/// property the migration cutover test asserts.
class Compositor {
 public:
  explicit Compositor(CompositorOptions options = {});

  /// Composes frame `index` (audio window [index, index+1) *
  /// frame_interval) for every bandwidth class. `images` are the
  /// visible image objects in document order; `tracks` the
  /// participants' audio.
  Result<std::vector<ComposedFrame>> ComposeFrame(
      uint32_t index, const std::vector<media::Image>& images,
      const std::vector<SpeakerTrack>& tracks) const;

  const CompositorOptions& options() const { return options_; }

  /// Publishes composition work into the obs layer: `mix.*` counters
  /// (frames, windows, tie-breaks, selected speakers) and a
  /// per-frame-encode histogram of composed video bytes. Either pointer
  /// may be null; both must outlive the compositor.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  CompositorOptions options_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_frames_ = nullptr;
  obs::Counter* m_windows_ = nullptr;
  obs::Counter* m_ties_ = nullptr;
  obs::Counter* m_active_ = nullptr;
  obs::Histogram* m_video_bytes_ = nullptr;
};

}  // namespace mmconf::fanout

#endif  // MMCONF_FANOUT_COMPOSITOR_H_
