#include "fanout/compositor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "imaging/ops.h"

namespace mmconf::fanout {

using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;
using media::Image;
using media::Rect;

uint64_t SpeakerTieRank(uint64_t seed, int speaker) {
  // splitmix64 finalizer over seed ^ id: a bijective scramble, so two
  // distinct speakers never collide under the same seed and the ranking
  // depends on nothing but (seed, id).
  uint64_t z = seed ^ static_cast<uint64_t>(static_cast<int64_t>(speaker));
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

// Speech samples of `track` inside [begin, end).
size_t SpeechOverlap(const SpeakerTrack& track, size_t begin, size_t end) {
  size_t overlap = 0;
  for (const AudioSegment& segment : track.segments) {
    if (segment.cls != AudioClass::kSpeech) continue;
    size_t lo = std::max(segment.begin, begin);
    size_t hi = std::min(segment.end, end);
    if (hi > lo) overlap += hi - lo;
  }
  return overlap;
}

}  // namespace

Result<MixResult> MixActiveSpeakers(const std::vector<SpeakerTrack>& tracks,
                                    size_t total_samples, int sample_rate,
                                    const MixOptions& options) {
  if (sample_rate <= 0) {
    return Status::InvalidArgument("mix sample rate must be positive");
  }
  if (options.window_micros <= 0) {
    return Status::InvalidArgument("mix window must be positive");
  }
  if (options.max_active == 0) {
    return Status::InvalidArgument("mix needs at least one active slot");
  }
  for (const SpeakerTrack& track : tracks) {
    if (track.signal == nullptr) {
      return Status::InvalidArgument("speaker track has no signal");
    }
    if (track.signal->sample_rate() != sample_rate) {
      return Status::InvalidArgument("speaker track sample rate mismatch");
    }
  }

  // Canonical order: ascending speaker id. Selection below depends only
  // on this order, activity, and the seeded rank — never on how the
  // caller happened to arrange the vector.
  std::vector<size_t> order(tracks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tracks[a].speaker < tracks[b].speaker;
  });
  for (size_t i = 1; i < order.size(); ++i) {
    if (tracks[order[i - 1]].speaker == tracks[order[i]].speaker) {
      return Status::InvalidArgument("duplicate speaker id in mix");
    }
  }

  size_t window_samples = static_cast<size_t>(
      static_cast<unsigned long long>(options.window_micros) * sample_rate /
      1000000ull);
  if (window_samples == 0) window_samples = 1;

  MixResult result;
  result.mixed =
      AudioSignal(std::vector<float>(total_samples, 0.0f), sample_rate);
  result.windows =
      (total_samples + window_samples - 1) / window_samples;
  result.active_per_window.reserve(result.windows);

  struct Candidate {
    size_t track;
    size_t activity;
    uint64_t rank;
    int speaker;
  };
  for (size_t w = 0; w < result.windows; ++w) {
    size_t begin = w * window_samples;
    size_t end = std::min(total_samples, begin + window_samples);
    std::vector<Candidate> candidates;
    for (size_t idx : order) {
      size_t activity = SpeechOverlap(tracks[idx], begin, end);
      if (activity == 0) continue;
      candidates.push_back({idx, activity,
                            SpeakerTieRank(options.tie_seed,
                                           tracks[idx].speaker),
                            tracks[idx].speaker});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.activity != b.activity) return a.activity > b.activity;
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.speaker < b.speaker;
              });
    size_t selected = std::min(options.max_active, candidates.size());
    if (selected > 0 && selected < candidates.size() &&
        candidates[selected - 1].activity == candidates[selected].activity) {
      ++result.ties_broken;  // the seeded rank decided the cut
    }

    std::vector<int> active;
    active.reserve(selected);
    for (size_t i = 0; i < selected; ++i) {
      active.push_back(candidates[i].speaker);
    }
    if (selected > 0) {
      float scale = 1.0f / static_cast<float>(selected);
      for (size_t i = 0; i < selected; ++i) {
        const std::vector<float>& samples =
            tracks[candidates[i].track].signal->samples();
        size_t hi = std::min(end, samples.size());
        for (size_t s = begin; s < hi; ++s) {
          result.mixed.mutable_samples()[s] += samples[s] * scale;
        }
      }
      for (size_t s = begin; s < end; ++s) {
        float& v = result.mixed.mutable_samples()[s];
        v = std::clamp(v, -1.0f, 1.0f);
      }
    }
    result.active_per_window.push_back(std::move(active));
  }
  return result;
}

Result<Image> ComposeMosaic(const std::vector<Image>& sources,
                            const MosaicOptions& options) {
  if (options.width <= 0 || options.height <= 0) {
    return Status::InvalidArgument("mosaic canvas must be non-empty");
  }
  MMCONF_ASSIGN_OR_RETURN(
      Image canvas,
      Image::Create(options.width, options.height, options.background));
  if (sources.empty()) return canvas;  // bare background: nobody on screen

  size_t n = sources.size();
  int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  int rows = static_cast<int>((n + cols - 1) / static_cast<size_t>(cols));
  MMCONF_ASSIGN_OR_RETURN(
      std::vector<Rect> cells,
      imaging::GridCells(options.width, options.height, rows, cols));

  for (size_t i = 0; i < n; ++i) {
    const Image& source = sources[i];
    if (source.empty()) {
      return Status::InvalidArgument("mosaic source image is empty");
    }
    const Rect& cell = cells[i];
    // Collaborative markup (text/line overlays) belongs in the composed
    // picture, so rasterize it before resampling.
    Image flat = (source.text_elements().empty() &&
                  source.line_elements().empty())
                     ? source
                     : source.Flatten();
    MMCONF_ASSIGN_OR_RETURN(
        Image tile,
        imaging::Zoom(flat, flat.Bounds(), cell.width, cell.height));
    for (int y = 0; y < cell.height; ++y) {
      for (int x = 0; x < cell.width; ++x) {
        canvas.set(cell.x + x, cell.y + y, tile.at(x, y));
      }
    }
  }
  if (options.draw_borders) {
    for (const Rect& cell : cells) {
      int right = cell.x + cell.width - 1;
      int bottom = cell.y + cell.height - 1;
      for (int y = cell.y; y <= bottom; ++y) {
        canvas.set(right, y, options.border_intensity);
      }
      for (int x = cell.x; x <= right; ++x) {
        canvas.set(x, bottom, options.border_intensity);
      }
    }
  }
  return canvas;
}

Compositor::Compositor(CompositorOptions options)
    : options_(std::move(options)) {}

void Compositor::SetObserver(obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    m_frames_ = metrics->GetCounter("mix.frames");
    m_windows_ = metrics->GetCounter("mix.windows");
    m_ties_ = metrics->GetCounter("mix.ties_broken");
    m_active_ = metrics->GetCounter("mix.active_selected");
    m_video_bytes_ = metrics->GetHistogram(
        "mix.video_bytes", {1024, 4096, 16384, 65536, 262144});
  } else {
    m_frames_ = m_windows_ = m_ties_ = m_active_ = nullptr;
    m_video_bytes_ = nullptr;
  }
}

Result<std::vector<ComposedFrame>> Compositor::ComposeFrame(
    uint32_t index, const std::vector<Image>& images,
    const std::vector<SpeakerTrack>& tracks) const {
  if (options_.frame_interval_micros <= 0) {
    return Status::InvalidArgument("frame interval must be positive");
  }
  int sample_rate = 16000;
  if (!tracks.empty() && tracks[0].signal != nullptr) {
    sample_rate = tracks[0].signal->sample_rate();
  }
  size_t frame_samples = static_cast<size_t>(
      static_cast<unsigned long long>(options_.frame_interval_micros) *
      sample_rate / 1000000ull);
  if (frame_samples == 0) frame_samples = 1;
  size_t frame_begin = static_cast<size_t>(index) * frame_samples;

  // Cut each track down to this frame's window so the mixer scores
  // activity locally (a handoff flips the selection next frame, not at
  // the end of the lecture).
  std::vector<AudioSignal> slices;
  slices.reserve(tracks.size());
  std::vector<SpeakerTrack> frame_tracks;
  frame_tracks.reserve(tracks.size());
  for (const SpeakerTrack& track : tracks) {
    if (track.signal == nullptr) {
      return Status::InvalidArgument("speaker track has no signal");
    }
    slices.push_back(
        track.signal->Slice(frame_begin, frame_begin + frame_samples));
    SpeakerTrack local;
    local.speaker = track.speaker;
    for (const AudioSegment& segment : track.segments) {
      size_t lo = std::max(segment.begin, frame_begin);
      size_t hi = std::min(segment.end, frame_begin + frame_samples);
      if (hi <= lo) continue;
      AudioSegment shifted = segment;
      shifted.begin = lo - frame_begin;
      shifted.end = hi - frame_begin;
      local.segments.push_back(shifted);
    }
    frame_tracks.push_back(std::move(local));
  }
  for (size_t i = 0; i < frame_tracks.size(); ++i) {
    frame_tracks[i].signal = &slices[i];
  }

  MMCONF_ASSIGN_OR_RETURN(
      MixResult mix,
      MixActiveSpeakers(frame_tracks, frame_samples, sample_rate,
                        options_.mix));
  Bytes audio = mix.mixed.Encode();
  std::vector<int> active_speakers;
  for (const std::vector<int>& window : mix.active_per_window) {
    for (int speaker : window) {
      if (std::find(active_speakers.begin(), active_speakers.end(),
                    speaker) == active_speakers.end()) {
        active_speakers.push_back(speaker);
      }
    }
  }

  compress::LayeredCodec codec(options_.codec);
  const std::pair<doc::BandwidthLevel, int> classes[] = {
      {doc::BandwidthLevel::kHigh, options_.high_px},
      {doc::BandwidthLevel::kMedium, options_.medium_px},
      {doc::BandwidthLevel::kLow, options_.low_px},
  };
  std::vector<ComposedFrame> frames;
  frames.reserve(3);
  for (const auto& [level, px] : classes) {
    MosaicOptions mosaic = options_.mosaic;
    mosaic.width = px;
    mosaic.height = px;
    MMCONF_ASSIGN_OR_RETURN(Image composed, ComposeMosaic(images, mosaic));
    MMCONF_ASSIGN_OR_RETURN(Bytes video, codec.Encode(composed));
    ComposedFrame frame;
    frame.index = index;
    frame.level = level;
    frame.video = std::move(video);
    frame.audio = audio;
    frame.active_speakers = active_speakers;
    if (m_video_bytes_ != nullptr) {
      m_video_bytes_->Observe(static_cast<int64_t>(frame.video.size()));
    }
    frames.push_back(std::move(frame));
  }

  if (m_frames_ != nullptr) {
    m_frames_->Add(1);
    m_windows_->Add(mix.windows);
    m_ties_->Add(mix.ties_broken);
    size_t selected = 0;
    for (const std::vector<int>& window : mix.active_per_window) {
      selected += window.size();
    }
    m_active_->Add(selected);
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(0, 0, "compose_frame", "mix", "frame",
                     static_cast<int64_t>(index));
  }
  return frames;
}

}  // namespace mmconf::fanout
