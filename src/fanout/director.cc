#include "fanout/director.h"

#include <algorithm>
#include <utility>

#include "doc/presentation.h"
#include "doc/presentation_view.h"
#include "server/room.h"

namespace mmconf::fanout {

namespace {

/// Wire size of a front-door admission hop (mirrors the tier's control
/// hop framing).
constexpr size_t kAdmitBytes = 96;

bool IsImageKind(doc::PresentationKind kind) {
  return kind == doc::PresentationKind::kImage ||
         kind == doc::PresentationKind::kSegmentedImage ||
         kind == doc::PresentationKind::kThumbnail;
}

}  // namespace

BroadcastDirector::BroadcastDirector(
    federation::FederatedInteractionTier* tier, net::Network* network)
    : tier_(tier), network_(network) {
  // One failure callback serves both layers: broadcast traffic first
  // (tree links, viewer last miles, composed-stream chunks), the tier's
  // own dispatch for everything else.
  tier_->transport()->SetFailureCallback(
      [this](const net::FailedMessage& failure) {
        for (auto& [room, hosted] : sessions_) {
          if (hosted.session->OnSendFailure(failure)) return;
        }
        tier_->DispatchFailure(failure);
      });
  // A migrated room drags its broadcast along: re-root the tree at the
  // new hosting node and resume frame production.
  tier_->SetRoomMovedCallback(
      [this](const std::string& room_id, size_t /*from*/, size_t to) {
        auto it = sessions_.find(room_id);
        if (it == sessions_.end()) return;
        BroadcastSession* session = it->second.session.get();
        if (!session->paused()) session->PauseAtChunkBoundary().ok();
        session->ResumeAt(tier_->node_net(to)).ok();
      });
}

Result<BroadcastSession*> BroadcastDirector::HostBroadcast(
    const std::string& room_id, size_t expected_audience,
    BroadcastOptions options) {
  if (sessions_.count(room_id) > 0) {
    return Status::AlreadyExists("room \"" + room_id +
                                 "\" already hosts a broadcast");
  }
  MMCONF_ASSIGN_OR_RETURN(size_t owner, tier_->NodeOf(room_id));
  options.install_failure_callback = false;  // the director owns it
  Hosted hosted;
  hosted.session = std::make_unique<BroadcastSession>(
      network_, tier_->transport(), tier_->node_net(owner), room_id,
      std::move(options));
  MMCONF_RETURN_IF_ERROR(hosted.session->OpenAudience(expected_audience));
  hosted.session->SetObserver(metrics_, tracer_);
  BroadcastSession* session = hosted.session.get();
  sessions_[room_id] = std::move(hosted);
  return session;
}

Result<BroadcastSession*> BroadcastDirector::SessionFor(
    const std::string& room_id) {
  auto it = sessions_.find(room_id);
  if (it == sessions_.end()) {
    return Status::NotFound("room \"" + room_id +
                            "\" hosts no broadcast");
  }
  return it->second.session.get();
}

Status BroadcastDirector::CloseBroadcast(const std::string& room_id) {
  if (sessions_.erase(room_id) == 0) {
    return Status::NotFound("room \"" + room_id +
                            "\" hosts no broadcast");
  }
  return Status::OK();
}

Status BroadcastDirector::RegisterImage(const std::string& room_id,
                                        const std::string& component,
                                        media::Image image) {
  auto it = sessions_.find(room_id);
  if (it == sessions_.end()) {
    return Status::NotFound("room \"" + room_id +
                            "\" hosts no broadcast");
  }
  it->second.images[component] = std::move(image);
  return Status::OK();
}

Status BroadcastDirector::RegisterSpeaker(
    const std::string& room_id, int speaker,
    const media::AudioSignal& signal,
    std::vector<media::AudioSegment> segments) {
  auto it = sessions_.find(room_id);
  if (it == sessions_.end()) {
    return Status::NotFound("room \"" + room_id +
                            "\" hosts no broadcast");
  }
  for (const Speaker& existing : it->second.speakers) {
    if (existing.speaker == speaker) {
      return Status::AlreadyExists("speaker " + std::to_string(speaker) +
                                   " already registered");
    }
  }
  Speaker entry;
  entry.speaker = speaker;
  entry.signal = signal;
  entry.segments = std::move(segments);
  it->second.speakers.push_back(std::move(entry));
  std::sort(it->second.speakers.begin(), it->second.speakers.end(),
            [](const Speaker& a, const Speaker& b) {
              return a.speaker < b.speaker;
            });
  return Status::OK();
}

Status BroadcastDirector::AdmitViewers(const std::string& room_id,
                                       size_t count,
                                       doc::BandwidthLevel level) {
  MMCONF_ASSIGN_OR_RETURN(BroadcastSession * session, SessionFor(room_id));
  MMCONF_ASSIGN_OR_RETURN(size_t owner, tier_->NodeOf(room_id));
  // Front-door billing: view-only admission routes through node 0 like
  // any other request, one control hop for the whole batch.
  if (owner != 0) {
    MMCONF_RETURN_IF_ERROR(
        tier_->transport()
            ->Send(tier_->node_net(0), tier_->node_net(owner), kAdmitBytes,
                   "fo:admit:" + room_id)
            .status());
  }
  return session->AdmitAudience(count, level);
}

Result<net::NodeId> BroadcastDirector::AdmitSampledViewer(
    const std::string& room_id, doc::BandwidthLevel level,
    const net::LinkSpec& last_mile, const net::FaultSpec& faults) {
  MMCONF_ASSIGN_OR_RETURN(BroadcastSession * session, SessionFor(room_id));
  MMCONF_ASSIGN_OR_RETURN(size_t owner, tier_->NodeOf(room_id));
  if (owner != 0) {
    MMCONF_RETURN_IF_ERROR(
        tier_->transport()
            ->Send(tier_->node_net(0), tier_->node_net(owner), kAdmitBytes,
                   "fo:admit:" + room_id)
            .status());
  }
  return session->AdmitSampledViewer(level, last_mile, faults);
}

Result<std::vector<media::Image>> BroadcastDirector::FrameImages(
    const std::string& room_id, const Hosted& hosted) {
  MMCONF_ASSIGN_OR_RETURN(server::Room * room, tier_->GetRoom(room_id));
  const doc::PresentationView& view = room->view();
  std::vector<media::Image> images;
  for (size_t var = 0; var < view.num_components(); ++var) {
    if (!view.visible(var)) continue;
    const doc::PrimitiveMultimediaComponent* primitive =
        view.primitive(var);
    const doc::MMPresentation* presentation = view.presentation(var);
    if (primitive == nullptr || presentation == nullptr) continue;
    if (!IsImageKind(presentation->kind)) continue;
    auto raster = hosted.images.find(primitive->name());
    if (raster == hosted.images.end()) continue;  // no pixels registered
    images.push_back(raster->second);
  }
  return images;
}

Status BroadcastDirector::PushFrame(const std::string& room_id) {
  auto it = sessions_.find(room_id);
  if (it == sessions_.end()) {
    return Status::NotFound("room \"" + room_id +
                            "\" hosts no broadcast");
  }
  Hosted& hosted = it->second;
  MMCONF_ASSIGN_OR_RETURN(std::vector<media::Image> images,
                          FrameImages(room_id, hosted));
  std::vector<SpeakerTrack> tracks;
  tracks.reserve(hosted.speakers.size());
  for (const Speaker& speaker : hosted.speakers) {
    SpeakerTrack track;
    track.speaker = speaker.speaker;
    track.signal = &speaker.signal;
    track.segments = speaker.segments;
    tracks.push_back(std::move(track));
  }
  return hosted.session->PushFrame(images, tracks);
}

Result<federation::MigrationReport> BroadcastDirector::MigrateBroadcast(
    const std::string& room_id, size_t target_node) {
  MMCONF_ASSIGN_OR_RETURN(BroadcastSession * session, SessionFor(room_id));
  // Chunk-boundary quiesce: no new frames, drain what is in flight so
  // every composed stream resolves before the room's state ships.
  MMCONF_RETURN_IF_ERROR(session->PauseAtChunkBoundary());
  MMCONF_RETURN_IF_ERROR(Settle().status());
  // The room-moved hook fires inside FinishMigration: it re-roots the
  // tree at the target node and un-pauses the session.
  Result<federation::MigrationReport> report =
      tier_->MigrateRoom(room_id, target_node);
  if (!report.ok()) {
    // The room stayed put; the broadcast continues from the old origin.
    session->ResumeAt(session->origin()).ok();
    return report;
  }
  MMCONF_RETURN_IF_ERROR(Settle().status());
  return report;
}

Result<std::vector<net::Delivery>> BroadcastDirector::Settle() {
  std::vector<net::Delivery> passthrough;
  net::ReliableTransport* transport = tier_->transport();
  while (true) {
    MicrosT now = network_->clock()->NowMicros();
    MicrosT wake = -1;
    for (size_t i = 0; i < tier_->num_nodes(); ++i) {
      MicrosT at = tier_->node(i)->NextStreamActionAt(now);
      if (at >= 0 && (wake < 0 || at < wake)) wake = at;
    }
    for (auto& [room, hosted] : sessions_) {
      MicrosT at = hosted.session->NextActionAt(now);
      if (at >= 0 && (wake < 0 || at < wake)) wake = at;
    }
    std::vector<net::Delivery> batch = wake >= 0
                                           ? transport->AdvanceTo(wake)
                                           : transport->AdvanceUntilIdle();
    for (net::Delivery& delivery : batch) {
      bool consumed = false;
      for (auto& [room, hosted] : sessions_) {
        if (hosted.session->OnDelivery(delivery)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) {
        for (size_t i = 0; i < tier_->num_nodes(); ++i) {
          if (tier_->node(i)->RouteDelivery(delivery)) {
            consumed = true;
            break;
          }
        }
      }
      if (!consumed) passthrough.push_back(std::move(delivery));
    }
    size_t sent = 0;
    MicrosT pump_now = network_->clock()->NowMicros();
    for (size_t i = 0; i < tier_->num_nodes(); ++i) {
      tier_->node(i)->ObserveStreamAcks();
      sent += tier_->node(i)->PumpStreams(pump_now);
    }
    for (auto& [room, hosted] : sessions_) {
      hosted.session->ObserveAcks();
      sent += hosted.session->Pump(pump_now);
    }
    if (wake < 0 && batch.empty() && sent == 0 &&
        transport->in_flight() == 0 && network_->pending() == 0) {
      break;
    }
  }
  return passthrough;
}

void BroadcastDirector::SetObserver(obs::MetricsRegistry* metrics,
                                    obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  for (auto& [room, hosted] : sessions_) {
    hosted.session->SetObserver(metrics, tracer);
  }
}

}  // namespace mmconf::fanout
