#ifndef MMCONF_FANOUT_DIRECTOR_H_
#define MMCONF_FANOUT_DIRECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "doc/tuning.h"
#include "fanout/broadcast.h"
#include "federation/tier.h"
#include "media/audio.h"
#include "media/image.h"
#include "net/network.h"

namespace mmconf::fanout {

/// Hosts BroadcastSessions on top of a FederatedInteractionTier: the
/// lecture/webinar control plane. The hosting room stays a normal
/// (small) interaction room on its federation node; the director
/// composes its visible image objects and registered speaker audio into
/// broadcast frames, admits view-only clients through the tier's front
/// door (they never join the room), and keeps the fan-out tree rooted at
/// whichever node the room lives on — a tier migration re-roots the tree
/// automatically via the tier's room-moved callback.
///
/// The director owns the shared transport's failure callback (installed
/// over the tier's): session failures (tree links, viewer last miles)
/// are handled by the owning session, everything else is forwarded to
/// FederatedInteractionTier::DispatchFailure. It also owns the combined
/// drive loop (Settle) — with broadcasts hosted, neither the tier's
/// Settle nor a session's standalone Settle may be used, since each
/// would pump the shared transport blind to the other's streams.
class BroadcastDirector {
 public:
  /// `tier` and `network` must outlive the director. Installs the
  /// wrapping failure callback and the room-moved hook on the tier.
  BroadcastDirector(federation::FederatedInteractionTier* tier,
                    net::Network* network);

  BroadcastDirector(const BroadcastDirector&) = delete;
  BroadcastDirector& operator=(const BroadcastDirector&) = delete;

  /// Stands a broadcast up for an open room: the session's tree roots at
  /// the room's hosting node, sized for `expected_audience`.
  /// `options.install_failure_callback` is forced off (the director owns
  /// the callback). AlreadyExists when the room already broadcasts.
  Result<BroadcastSession*> HostBroadcast(const std::string& room_id,
                                          size_t expected_audience,
                                          BroadcastOptions options = {});
  Result<BroadcastSession*> SessionFor(const std::string& room_id);
  Status CloseBroadcast(const std::string& room_id);
  size_t num_broadcasts() const { return sessions_.size(); }

  /// Binds a room image component (by name) to its decoded raster. Only
  /// registered components appear in the mosaic — the room's document
  /// stores BLOBs; the director needs the pixels.
  Status RegisterImage(const std::string& room_id,
                       const std::string& component, media::Image image);

  /// Registers a speaker's audio plus its speech segmentation (from
  /// audio::AudioSegmenter, attributed to `speaker`). The signal is
  /// copied; segments are absolute sample spans on the room timeline.
  Status RegisterSpeaker(const std::string& room_id, int speaker,
                         const media::AudioSignal& signal,
                         std::vector<media::AudioSegment> segments);

  /// Front-door admission of view-only clients: bills the admit hop
  /// front door -> hosting node over the transport (like tier Join), then
  /// spreads them over the session's edge relays. They never join the
  /// room — the room's member list stays the speakers'.
  Status AdmitViewers(const std::string& room_id, size_t count,
                      doc::BandwidthLevel level);
  Result<net::NodeId> AdmitSampledViewer(const std::string& room_id,
                                         doc::BandwidthLevel level,
                                         const net::LinkSpec& last_mile,
                                         const net::FaultSpec& faults);

  /// Composes and pushes the room's next broadcast frame: visible image
  /// components (in document order, registered rasters only) plus every
  /// registered speaker track.
  Status PushFrame(const std::string& room_id);

  /// Migrates the hosting room with its live broadcast: pauses frame
  /// production, drains to a chunk boundary (Settle), migrates the room
  /// through the tier — the room-moved hook re-roots the tree at the new
  /// node and resumes — then settles the cutover traffic.
  Result<federation::MigrationReport> MigrateBroadcast(
      const std::string& room_id, size_t target_node);

  /// The combined drive loop: advances the shared transport, routing
  /// deliveries to sessions first and tier nodes second, and pumps every
  /// node's and every session's schedulers until everything idles.
  /// Returns unconsumed deliveries in arrival order.
  Result<std::vector<net::Delivery>> Settle();

  /// Forwarded to every hosted session (fanout.* / mix.* / stream.*).
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  struct Speaker {
    int speaker = -1;
    media::AudioSignal signal;
    std::vector<media::AudioSegment> segments;
  };

  struct Hosted {
    std::unique_ptr<BroadcastSession> session;
    std::map<std::string, media::Image> images;  ///< component -> raster
    std::vector<Speaker> speakers;               ///< ascending speaker id
  };

  /// Visible registered images of the room, document order.
  Result<std::vector<media::Image>> FrameImages(const std::string& room_id,
                                                const Hosted& hosted);

  federation::FederatedInteractionTier* tier_;
  net::Network* network_;
  std::map<std::string, Hosted> sessions_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace mmconf::fanout

#endif  // MMCONF_FANOUT_DIRECTOR_H_
