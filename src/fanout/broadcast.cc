#include "fanout/broadcast.h"

#include <algorithm>
#include <set>
#include <utility>

namespace mmconf::fanout {

namespace {

/// Wire framing on top of a frame payload / audio payload.
constexpr size_t kFrameOverheadBytes = 32;
constexpr size_t kAudioOverheadBytes = 16;

size_t LevelIdx(doc::BandwidthLevel level) {
  return static_cast<size_t>(static_cast<int>(level));
}

}  // namespace

BroadcastSession::BroadcastSession(net::Network* network,
                                   net::ReliableTransport* transport,
                                   net::NodeId origin, std::string label,
                                   BroadcastOptions options)
    : network_(network),
      transport_(transport),
      origin_(origin),
      label_(std::move(label)),
      options_(std::move(options)),
      compositor_(options_.compositor),
      next_stream_id_(options_.first_stream_id) {
  if (options_.frame_history == 0) options_.frame_history = 1;
  history_.resize(options_.frame_history);
  frame_tag_prefix_ = "fo:f:" + label_ + ":";
  audio_tag_prefix_ = "fo:a:" + label_ + ":";
  if (options_.install_failure_callback) {
    transport_->SetFailureCallback([this](const net::FailedMessage& failure) {
      OnSendFailure(failure);
    });
  }
}

Status BroadcastSession::OpenAudience(size_t expected_audience) {
  if (tree_ != nullptr) {
    return Status::FailedPrecondition("broadcast audience already open");
  }
  tree_ = std::make_unique<RelayTree>(network_, origin_, label_,
                                      options_.tree);
  Status built = tree_->Build(expected_audience);
  if (!built.ok()) {
    tree_.reset();
    return built;
  }
  return Status::OK();
}

Status BroadcastSession::AdmitAudience(size_t count,
                                       doc::BandwidthLevel level) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("open the audience first");
  }
  MMCONF_RETURN_IF_ERROR(tree_->AssignAudience(count));
  audience_[LevelIdx(level)] += count;
  return Status::OK();
}

Result<net::NodeId> BroadcastSession::AdmitSampledViewer(
    doc::BandwidthLevel level, const net::LinkSpec& last_mile,
    const net::FaultSpec& faults) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("open the audience first");
  }
  MMCONF_ASSIGN_OR_RETURN(net::NodeId edge, tree_->AssignViewer());
  net::NodeId node = network_->AddNode(
      "viewer-" + label_ + "-" + std::to_string(viewers_.size()));
  MMCONF_RETURN_IF_ERROR(network_->SetDuplexLink(edge, node, last_mile));
  // Loss is injected downstream only: the last mile eats data, the ack
  // path stays clean — the adversarial case for base-layer delivery.
  MMCONF_RETURN_IF_ERROR(network_->SetFault(edge, node, faults));
  SampledViewerStats viewer;
  viewer.node = node;
  viewer.edge = edge;
  viewer.level = level;
  viewers_[node] = viewer;
  ++sampled_[LevelIdx(level)];
  SchedulerFor(edge);  // stand the edge's scheduler up front
  return node;
}

Bytes BroadcastSession::SerializeFrame(const ComposedFrame& frame) {
  ByteWriter writer;
  writer.PutU32(frame.index);
  writer.PutU8(static_cast<uint8_t>(static_cast<int>(frame.level)));
  writer.PutVarint(frame.active_speakers.size());
  for (int speaker : frame.active_speakers) writer.PutI32(speaker);
  writer.PutBytes(frame.video);
  writer.PutBytes(frame.audio);
  return writer.Take();
}

Result<BroadcastSession::ParsedFrame> BroadcastSession::ParseFrame(
    const Bytes& payload) {
  ByteReader reader(payload);
  ParsedFrame frame;
  MMCONF_ASSIGN_OR_RETURN(frame.index, reader.GetU32());
  MMCONF_ASSIGN_OR_RETURN(uint8_t level, reader.GetU8());
  if (level > 2) return Status::Corruption("bad bandwidth level in frame");
  frame.level = static_cast<doc::BandwidthLevel>(level);
  MMCONF_ASSIGN_OR_RETURN(uint64_t speakers, reader.GetVarint());
  if (speakers > 1024) return Status::Corruption("absurd speaker count");
  frame.active_speakers.reserve(speakers);
  for (uint64_t i = 0; i < speakers; ++i) {
    MMCONF_ASSIGN_OR_RETURN(int32_t speaker, reader.GetI32());
    frame.active_speakers.push_back(speaker);
  }
  MMCONF_ASSIGN_OR_RETURN(frame.video, reader.GetBytes());
  MMCONF_ASSIGN_OR_RETURN(frame.audio, reader.GetBytes());
  return frame;
}

Status BroadcastSession::SendFrame(net::NodeId from, net::NodeId to,
                                   const std::string& tag,
                                   const Bytes& payload) {
  MMCONF_RETURN_IF_ERROR(
      transport_
          ->Send(from, to, payload.size() + kFrameOverheadBytes, tag,
                 payload)
          .status());
  if (from != origin_ && m_forwards_ != nullptr) m_forwards_->Add();
  return Status::OK();
}

Status BroadcastSession::PushFrame(const std::vector<media::Image>& images,
                                   const std::vector<SpeakerTrack>& tracks) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("open the audience first");
  }
  if (paused_) {
    return Status::FailedPrecondition(
        "broadcast is paused at a chunk boundary (migrating)");
  }
  uint32_t index = next_frame_++;
  MMCONF_ASSIGN_OR_RETURN(
      std::vector<ComposedFrame> frames,
      compositor_.ComposeFrame(index, images, tracks));

  HistoryEntry& slot = history_[index % history_.size()];
  slot.index = index;
  slot.valid = true;
  slot.sends.clear();

  std::vector<net::NodeId> first_hop = tree_->ChildrenOf(origin_);
  for (const ComposedFrame& frame : frames) {
    Bytes payload = SerializeFrame(frame);
    std::string tag = frame_tag_prefix_ + std::to_string(index) + ":" +
                      std::to_string(static_cast<int>(frame.level));
    size_t level = LevelIdx(frame.level);
    // The audience-linear term lives only on the modeled last hop; the
    // origin pays fanout copies, never one per viewer.
    modeled_last_hop_bytes_ += payload.size() * audience_[level];
    unicast_equiv_bytes_ +=
        (payload.size() + kFrameOverheadBytes) *
        (audience_[level] + sampled_[level]);
    if (m_frame_bytes_ != nullptr) {
      m_frame_bytes_->Observe(static_cast<int64_t>(payload.size()));
    }
    for (net::NodeId child : first_hop) {
      MMCONF_RETURN_IF_ERROR(SendFrame(origin_, child, tag, payload));
    }
    slot.sends.emplace_back(std::move(tag), std::move(payload));
  }
  ++frames_pushed_;
  if (m_frames_ != nullptr) m_frames_->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(origin_, 0, "push_frame", "fanout", "frame",
                     static_cast<int64_t>(index));
  }
  return Status::OK();
}

stream::StreamScheduler* BroadcastSession::SchedulerFor(net::NodeId edge) {
  auto it = schedulers_.find(edge);
  if (it == schedulers_.end()) {
    auto scheduler =
        std::make_unique<stream::StreamScheduler>(transport_, edge);
    scheduler->SetObserver(metrics_, tracer_);
    it = schedulers_.emplace(edge, std::move(scheduler)).first;
  }
  return it->second.get();
}

Status BroadcastSession::DeliverAtEdge(net::NodeId edge,
                                       const ParsedFrame& frame,
                                       MicrosT now) {
  stream::StreamScheduler* scheduler = nullptr;
  for (auto& [node, viewer] : viewers_) {
    if (viewer.edge != edge || viewer.level != frame.level) continue;
    if (scheduler == nullptr) scheduler = SchedulerFor(edge);
    stream::StreamOptions stream_options = options_.viewer_stream;
    stream_options.interval_micros =
        options_.compositor.frame_interval_micros;
    stream_options.start_deadline_micros =
        now + stream_options.interval_micros;
    MMCONF_RETURN_IF_ERROR(
        scheduler
            ->Open(next_stream_id_++, viewer.node, {frame.video},
                   stream_options)
            .status());
    ++streams_opened_;
    if (m_streams_ != nullptr) m_streams_->Add();
    MMCONF_RETURN_IF_ERROR(
        transport_
            ->Send(edge, viewer.node,
                   frame.audio.size() + kAudioOverheadBytes,
                   audio_tag_prefix_ + std::to_string(frame.index),
                   frame.audio)
            .status());
    ++audio_messages_;
    if (m_audio_ != nullptr) m_audio_->Add();
  }
  return Status::OK();
}

bool BroadcastSession::OnDelivery(const net::Delivery& delivery) {
  if (delivery.tag.rfind(frame_tag_prefix_, 0) == 0) {
    if (tree_ == nullptr || !tree_->IsRelay(delivery.to)) return true;
    Result<ParsedFrame> parsed = ParseFrame(delivery.payload);
    if (!parsed.ok()) return true;  // corrupt frame: drop, do not forward
    // A reparented relay can receive a history re-send for a frame the
    // dying link already delivered; forwarding it again would ripple
    // duplicate streams down the subtree. Dedup on (frame, level).
    static constexpr size_t kSeenCap = 256;
    uint64_t key = (static_cast<uint64_t>(parsed->index) << 2) |
                   static_cast<uint64_t>(LevelIdx(parsed->level));
    std::set<uint64_t>& seen = seen_frames_[delivery.to];
    if (!seen.insert(key).second) return true;
    while (seen.size() > kSeenCap) seen.erase(seen.begin());

    for (net::NodeId child : tree_->ChildrenOf(delivery.to)) {
      SendFrame(delivery.to, child, delivery.tag, delivery.payload).ok();
    }
    if (tree_->IsEdge(delivery.to)) {
      DeliverAtEdge(delivery.to, *parsed, delivery.delivered_at).ok();
    }
    return true;
  }
  if (delivery.tag.rfind(audio_tag_prefix_, 0) == 0) {
    auto it = viewers_.find(delivery.to);
    if (it != viewers_.end()) {
      ++it->second.audio_messages;
      it->second.audio_bytes += delivery.bytes;
    }
    return true;
  }
  if (delivery.tag.rfind("sc:", 0) == 0) {
    for (auto& [edge, scheduler] : schedulers_) {
      if (scheduler->OnDelivery(delivery)) return true;
    }
  }
  return false;
}

bool BroadcastSession::OnSendFailure(const net::FailedMessage& failure) {
  if (failure.tag.rfind(frame_tag_prefix_, 0) == 0) {
    if (tree_ == nullptr || !tree_->IsRelay(failure.to)) return true;
    Result<net::NodeId> parent = tree_->ParentOf(failure.to);
    if (!parent.ok()) return true;
    if (*parent == failure.from) {
      // The orphan still hangs off the dead link: re-hang its subtree.
      Result<net::NodeId> reparented = tree_->Reparent(failure.to);
      if (!reparented.ok()) return true;  // nowhere left to hang it
      parent = *reparented;
      if (m_reparents_ != nullptr) m_reparents_->Add();
      if (tracer_ != nullptr) {
        tracer_->Instant(failure.from, 0, "reparent", "fanout", "relay",
                         static_cast<int64_t>(failure.to));
      }
    }
    // Replay the recent frame history down the (new) link — the frames
    // the dead link may have eaten. The seen-set dedup on the far side
    // drops anything that did get through.
    std::vector<const HistoryEntry*> entries;
    for (const HistoryEntry& entry : history_) {
      if (entry.valid) entries.push_back(&entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const HistoryEntry* a, const HistoryEntry* b) {
                return a->index < b->index;
              });
    for (const HistoryEntry* entry : entries) {
      for (const auto& [tag, payload] : entry->sends) {
        SendFrame(*parent, failure.to, tag, payload).ok();
        if (m_resends_ != nullptr) m_resends_->Add();
      }
    }
    return true;
  }
  if (failure.tag.rfind(audio_tag_prefix_, 0) == 0) {
    ++audio_failures_;
    return true;
  }
  if (failure.tag.rfind("sc:", 0) == 0 &&
      schedulers_.count(failure.from) > 0) {
    // A chunk of one of this session's composed streams: the scheduler
    // folds the failure in via ObserveAcks; nothing to dispatch.
    return true;
  }
  return false;
}

void BroadcastSession::ObserveAcks() {
  for (auto& [edge, scheduler] : schedulers_) scheduler->ObserveAcks();
  ReapStreams();
}

size_t BroadcastSession::Pump(MicrosT now) {
  size_t sent = 0;
  for (auto& [edge, scheduler] : schedulers_) sent += scheduler->Pump(now);
  return sent;
}

MicrosT BroadcastSession::NextActionAt(MicrosT now) const {
  MicrosT wake = -1;
  for (const auto& [edge, scheduler] : schedulers_) {
    MicrosT at = scheduler->NextActionAt(now);
    if (at >= 0 && (wake < 0 || at < wake)) wake = at;
  }
  return wake;
}

bool BroadcastSession::Idle() const {
  for (const auto& [edge, scheduler] : schedulers_) {
    if (!scheduler->Idle()) return false;
  }
  return true;
}

void BroadcastSession::ReapStreams() {
  for (auto& [edge, scheduler] : schedulers_) {
    for (const stream::StreamStats& stats : scheduler->AllStats()) {
      if (!stats.finished && !stats.aborted) continue;
      if (stats.finished) ++streams_finished_;
      if (stats.aborted) ++streams_aborted_;
      chunks_failed_ += stats.chunks_failed;
      enhancement_layers_dropped_ += stats.layers_dropped;
      auto viewer = viewers_.find(stats.client);
      if (viewer != viewers_.end()) {
        if (stats.finished) ++viewer->second.frames_delivered;
        if (stats.aborted) ++viewer->second.frames_aborted;
      }
      scheduler->Close(stats.id).ok();
    }
  }
}

Status BroadcastSession::Settle() {
  while (true) {
    MicrosT now = network_->clock()->NowMicros();
    MicrosT wake = NextActionAt(now);
    std::vector<net::Delivery> batch = wake >= 0
                                           ? transport_->AdvanceTo(wake)
                                           : transport_->AdvanceUntilIdle();
    for (const net::Delivery& delivery : batch) OnDelivery(delivery);
    ObserveAcks();
    size_t sent = Pump(network_->clock()->NowMicros());
    if (wake < 0 && batch.empty() && sent == 0 &&
        transport_->in_flight() == 0 && network_->pending() == 0) {
      break;
    }
  }
  return Status::OK();
}

Status BroadcastSession::PauseAtChunkBoundary() {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("open the audience first");
  }
  paused_ = true;
  return Status::OK();
}

Status BroadcastSession::ResumeAt(net::NodeId new_origin) {
  if (!paused_) {
    return Status::FailedPrecondition(
        "resume requires a paused broadcast (PauseAtChunkBoundary first)");
  }
  MMCONF_RETURN_IF_ERROR(tree_->Reroot(new_origin));
  origin_ = new_origin;
  paused_ = false;
  return Status::OK();
}

BroadcastStats BroadcastSession::Stats() const {
  BroadcastStats stats;
  stats.frames = frames_pushed_;
  stats.audience = audience_[0] + audience_[1] + audience_[2];
  stats.sampled_viewers = viewers_.size();
  if (tree_ != nullptr) {
    stats.relays = tree_->num_relays();
    stats.tree_edges = tree_->num_edges();
    stats.rebuilds = tree_->rebuilds();
    stats.server_egress_bytes = tree_->RootEgressBytes();
    stats.tree_wire_bytes = tree_->TreeWireBytes();
  }
  stats.modeled_last_hop_bytes = modeled_last_hop_bytes_;
  stats.unicast_equiv_bytes = unicast_equiv_bytes_;
  stats.streams_opened = streams_opened_;
  stats.streams_finished = streams_finished_;
  stats.streams_aborted = streams_aborted_;
  stats.chunks_failed = chunks_failed_;
  stats.enhancement_layers_dropped = enhancement_layers_dropped_;
  stats.audio_messages = audio_messages_;
  stats.audio_failures = audio_failures_;
  // Streams still open (not yet reaped) fold in without closing.
  bool live_unresolved = false;
  for (const auto& [edge, scheduler] : schedulers_) {
    for (const stream::StreamStats& live : scheduler->AllStats()) {
      if (live.finished) {
        ++stats.streams_finished;
      } else if (live.aborted) {
        ++stats.streams_aborted;
      } else {
        live_unresolved = true;
      }
      stats.chunks_failed += live.chunks_failed;
      stats.enhancement_layers_dropped += live.layers_dropped;
    }
  }
  stats.all_finished = !live_unresolved &&
                       stats.streams_finished + stats.streams_aborted ==
                           stats.streams_opened;
  return stats;
}

Result<SampledViewerStats> BroadcastSession::ViewerStats(
    net::NodeId viewer) const {
  auto it = viewers_.find(viewer);
  if (it == viewers_.end()) {
    return Status::NotFound("not a sampled viewer of this broadcast");
  }
  return it->second;
}

void BroadcastSession::SetObserver(obs::MetricsRegistry* metrics,
                                   obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  compositor_.SetObserver(metrics, tracer);
  for (auto& [edge, scheduler] : schedulers_) {
    scheduler->SetObserver(metrics, tracer);
  }
  if (metrics_ != nullptr) {
    m_frames_ = metrics_->GetCounter("fanout.frames");
    m_forwards_ = metrics_->GetCounter("fanout.relay_forwards");
    m_reparents_ = metrics_->GetCounter("fanout.reparents");
    m_resends_ = metrics_->GetCounter("fanout.history_resends");
    m_streams_ = metrics_->GetCounter("fanout.viewer_streams");
    m_audio_ = metrics_->GetCounter("fanout.audio_messages");
    m_frame_bytes_ = metrics_->GetHistogram(
        "fanout.frame_bytes", {1024, 4096, 16384, 65536, 262144, 1048576});
  } else {
    m_frames_ = m_forwards_ = m_reparents_ = m_resends_ = nullptr;
    m_streams_ = m_audio_ = nullptr;
    m_frame_bytes_ = nullptr;
  }
}

}  // namespace mmconf::fanout
