#ifndef MMCONF_FANOUT_RELAY_TREE_H_
#define MMCONF_FANOUT_RELAY_TREE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace mmconf::fanout {

/// Shape of a broadcast fan-out tree.
struct RelayTreeOptions {
  /// Maximum children per node (root included). The origin's egress is
  /// bounded by this regardless of audience size — the shared-subpath
  /// pricing the lecture tier exists for.
  size_t fanout = 8;
  /// Aggregated audience one edge relay serves. The edge-relay count is
  /// ceil(audience / viewers_per_edge), so total relay state grows with
  /// audience / viewers_per_edge, not with the audience itself.
  size_t viewers_per_edge = 1024;
  /// Link spec of every tree edge (origin->relay and relay->relay,
  /// duplex so acks flow back).
  net::LinkSpec relay_link{50e6, 2000};
};

/// One-to-many distribution tree over the simulated network: the origin
/// (an interaction node hosting a BroadcastSession) feeds at most
/// `fanout` first-hop relays, interior relays replicate downward, and
/// edge relays terminate the aggregated audience. A stream chunk
/// traverses each tree edge exactly once, so a shared subpath is priced
/// once no matter how many viewers sit below it: origin egress is
/// O(fanout), total tree wire bytes are O(#relays), and only the
/// conceptual last hop scales with the audience — which is exactly the
/// hop the aggregation models instead of simulating.
///
/// Invariants (asserted by the tests):
///  - every relay has exactly one parent and is reachable from the root;
///  - no node exceeds `fanout` children (the root included);
///  - edge relays and only edge relays carry viewers;
///  - Reparent/Reroot preserve all of the above, so a rebuild after a
///    link failure or a room migration never orphans a subtree.
class RelayTree {
 public:
  /// `network` must outlive the tree. `label` namespaces the relay node
  /// names ("relay-<label>-<i>") so several sessions can share a network.
  RelayTree(net::Network* network, net::NodeId root, std::string label,
            RelayTreeOptions options);

  RelayTree(const RelayTree&) = delete;
  RelayTree& operator=(const RelayTree&) = delete;

  /// Sizes the tree for `audience` aggregated viewers: creates the edge
  /// relays and the interior spine above them (bottom-up, every level
  /// packing up to `fanout` children per parent), adds the duplex links,
  /// and wires everything under the root. FailedPrecondition when called
  /// twice — the tree is built once per session; admission then fills
  /// the edges.
  Status Build(size_t audience);
  bool built() const { return !relays_.empty(); }

  net::NodeId root() const { return root_; }
  /// Every relay node, creation order (edges first, then interior
  /// levels bottom-up).
  const std::vector<net::NodeId>& relays() const { return relay_nodes_; }
  const std::vector<net::NodeId>& edge_relays() const { return edge_nodes_; }
  size_t num_relays() const { return relays_.size(); }
  /// Tree edges (parent -> child pairs), including the root's.
  std::vector<std::pair<net::NodeId, net::NodeId>> Edges() const;
  size_t num_edges() const { return relays_.size(); }

  /// NotFound unless `relay` is a tree relay.
  Result<net::NodeId> ParentOf(net::NodeId relay) const;
  std::vector<net::NodeId> ChildrenOf(net::NodeId node) const;
  bool IsRelay(net::NodeId node) const { return index_.count(node) > 0; }
  bool IsEdge(net::NodeId node) const;

  /// Deterministic viewer admission: the least-loaded edge relay
  /// (lowest index on ties). Never fails once built — edges aggregate,
  /// they do not cap.
  Result<net::NodeId> AssignViewer();
  /// Bulk admission of `count` aggregated viewers, spread round-robin
  /// from the least-loaded edge; returns the per-edge counts touched.
  Status AssignAudience(size_t count);
  Status ReleaseViewer(net::NodeId edge);
  /// Aggregated viewers currently assigned to `edge` (NotFound for a
  /// non-edge node).
  Result<size_t> ViewersAt(net::NodeId edge) const;
  size_t total_viewers() const { return total_viewers_; }

  /// Re-hangs `relay`'s whole subtree under a healthy parent after the
  /// link from its current parent died (flap or partition): picks the
  /// root when the dead parent was interior, else the lowest-index
  /// sibling subtree root that is not `relay` itself, adds the duplex
  /// link, and re-points the parent. The subtree below `relay` is
  /// untouched — its links never failed. Returns the new parent.
  /// FailedPrecondition when `relay` is the root's only child (nowhere
  /// left to hang it).
  Result<net::NodeId> Reparent(net::NodeId relay);
  size_t rebuilds() const { return rebuilds_; }

  /// Moves the tree to a new origin (room migration): every first-hop
  /// relay is re-linked under `new_root` and the old root forgets the
  /// tree. Idempotent for the current root.
  Status Reroot(net::NodeId new_root);

  /// Total bytes ever sent down the tree's current edges (root fan-out
  /// included) — the shared-subpath wire cost, measured on the Network
  /// rather than estimated. Retransmissions bill here too; acks ride
  /// the reverse links and are not counted.
  size_t TreeWireBytes() const;
  /// Bytes the origin itself transmitted onto its first-hop edges — the
  /// server-egress figure the audience sweep shows to be sub-linear.
  size_t RootEgressBytes() const;

 private:
  struct Relay {
    net::NodeId node = 0;
    net::NodeId parent = 0;
    bool edge = false;
    size_t viewers = 0;
  };

  Relay* Find(net::NodeId node);
  const Relay* Find(net::NodeId node) const;

  net::Network* network_;
  net::NodeId root_;
  std::string label_;
  RelayTreeOptions options_;
  std::vector<Relay> relays_;
  std::map<net::NodeId, size_t> index_;
  std::vector<net::NodeId> relay_nodes_;
  std::vector<net::NodeId> edge_nodes_;
  size_t total_viewers_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace mmconf::fanout

#endif  // MMCONF_FANOUT_RELAY_TREE_H_
