#include "search/descriptors.h"

#include <cmath>

namespace mmconf::search {

Result<Descriptor> DescribeImage(const media::Image& image) {
  if (image.empty()) {
    return Status::InvalidArgument("cannot describe an empty image");
  }
  Descriptor descriptor(kImageDescriptorDim, 0.0);
  const double n = static_cast<double>(image.pixels().size());
  // 16-bin normalized histogram.
  for (uint8_t p : image.pixels()) {
    descriptor[static_cast<size_t>(p / 16)] += 1.0;
  }
  for (int b = 0; b < 16; ++b) descriptor[static_cast<size_t>(b)] /= n;
  // Mean and standard deviation (scaled to [0,1]).
  double mean = 0;
  for (uint8_t p : image.pixels()) mean += p;
  mean /= n;
  double variance = 0;
  for (uint8_t p : image.pixels()) {
    variance += (p - mean) * (p - mean);
  }
  variance /= n;
  descriptor[16] = mean / 255.0;
  descriptor[17] = std::sqrt(variance) / 255.0;
  // Texture: mean absolute horizontal gradient.
  double gradient = 0;
  long gradient_count = 0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 1; x < image.width(); ++x) {
      gradient += std::abs(static_cast<int>(image.at(x, y)) -
                           static_cast<int>(image.at(x - 1, y)));
      ++gradient_count;
    }
  }
  descriptor[18] =
      gradient_count > 0 ? gradient / gradient_count / 255.0 : 0.0;
  // Foreground fraction.
  long bright = 0;
  for (uint8_t p : image.pixels()) {
    if (p >= 128) ++bright;
  }
  descriptor[19] = static_cast<double>(bright) / n;
  return descriptor;
}

Result<Descriptor> DescribeAudio(const media::AudioSignal& signal) {
  if (signal.empty()) {
    return Status::InvalidArgument("cannot describe an empty signal");
  }
  Descriptor descriptor(kAudioDescriptorDim, 0.0);
  const std::vector<float>& samples = signal.samples();
  const size_t n = samples.size();

  // Coarse spectral shape from 8 band energies over 50% overlapping
  // 256-sample windows, via a Goertzel-style projection at band centers.
  const int kBands = 8;
  const size_t window = 256;
  size_t windows = 0;
  std::vector<double> band_energy(kBands, 0.0);
  for (size_t start = 0; start + window <= n; start += window / 2) {
    ++windows;
    for (int b = 0; b < kBands; ++b) {
      double hz = (b + 0.5) * signal.sample_rate() / 2.0 / kBands;
      double w = 2.0 * M_PI * hz / signal.sample_rate();
      double re = 0, im = 0;
      for (size_t i = 0; i < window; ++i) {
        re += samples[start + i] * std::cos(w * static_cast<double>(i));
        im += samples[start + i] * std::sin(w * static_cast<double>(i));
      }
      band_energy[static_cast<size_t>(b)] += re * re + im * im;
    }
  }
  if (windows > 0) {
    for (int b = 0; b < kBands; ++b) {
      descriptor[static_cast<size_t>(b)] =
          std::log(band_energy[static_cast<size_t>(b)] /
                       static_cast<double>(windows) +
                   1e-9);
    }
  }
  // Temporal statistics.
  double energy = 0;
  int zero_crossings = 0;
  long quiet = 0;
  for (size_t i = 0; i < n; ++i) {
    energy += static_cast<double>(samples[i]) * samples[i];
    if (i > 0 && (samples[i] >= 0) != (samples[i - 1] >= 0)) {
      ++zero_crossings;
    }
    if (std::abs(samples[i]) < 0.01) ++quiet;
  }
  double rms = std::sqrt(energy / static_cast<double>(n));
  descriptor[8] = rms;
  descriptor[9] = static_cast<double>(zero_crossings) /
                  static_cast<double>(n);
  // Energy variance over 1024-sample blocks (rhythm / dynamics).
  std::vector<double> block_rms;
  for (size_t start = 0; start + 1024 <= n; start += 1024) {
    double block_energy = 0;
    for (size_t i = 0; i < 1024; ++i) {
      block_energy +=
          static_cast<double>(samples[start + i]) * samples[start + i];
    }
    block_rms.push_back(std::sqrt(block_energy / 1024.0));
  }
  if (!block_rms.empty()) {
    double block_mean = 0;
    for (double v : block_rms) block_mean += v;
    block_mean /= static_cast<double>(block_rms.size());
    double block_variance = 0;
    for (double v : block_rms) {
      block_variance += (v - block_mean) * (v - block_mean);
    }
    descriptor[10] =
        std::sqrt(block_variance / static_cast<double>(block_rms.size()));
  }
  descriptor[11] = static_cast<double>(quiet) / static_cast<double>(n);
  return descriptor;
}

Result<double> DescriptorDistance(const Descriptor& a, const Descriptor& b) {
  if (a.size() != b.size() || a.empty()) {
    return Status::InvalidArgument("descriptor dimensions differ");
  }
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace mmconf::search
