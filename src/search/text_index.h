#ifndef MMCONF_SEARCH_TEXT_INDEX_H_
#define MMCONF_SEARCH_TEXT_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

namespace mmconf::search {

/// A ranked text-retrieval hit.
struct TextHit {
  storage::ObjectRef ref;
  double score = 0;  ///< TF-IDF relevance, higher is better
};

/// Tokenizes text into lowercase alphanumeric terms (everything else is a
/// separator). Exposed for tests.
std::vector<std::string> Tokenize(const std::string& text);

/// Keyword retrieval over stored text objects — the intro scenario:
/// "some of them may like to support their views with articles from
/// databases on the web, whether from known sources or from dynamically
/// searched sites." Implements a classic inverted index with TF-IDF
/// ranking over the database's Text objects.
class TextIndex {
 public:
  /// `db` must outlive the index.
  explicit TextIndex(const storage::DatabaseServer* db) : db_(db) {}

  /// Indexes one stored text object (the blob is interpreted as UTF-8 /
  /// ASCII text).
  Status AddText(const storage::ObjectRef& ref,
                 const std::string& blob_field = "FLD_DATA");

  /// Indexes every object of `type`; returns how many were indexed.
  Result<int> AddAllTexts(const std::string& type = "Text",
                          const std::string& blob_field = "FLD_DATA");

  /// Removes a document from the index.
  Status Remove(const storage::ObjectRef& ref);

  size_t num_documents() const { return documents_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Top-k documents for a free-text query, ranked by summed TF-IDF of
  /// the query terms. Documents matching no term are omitted; ties break
  /// on ObjectRef order for determinism.
  Result<std::vector<TextHit>> Query(const std::string& query, int k) const;

  /// Documents containing *all* query terms (boolean AND), unranked.
  Result<std::vector<storage::ObjectRef>> QueryAll(
      const std::string& query) const;

 private:
  struct DocumentStats {
    size_t length = 0;  ///< total terms
  };

  const storage::DatabaseServer* db_;
  std::map<storage::ObjectRef, DocumentStats> documents_;
  /// term -> (doc -> term frequency)
  std::map<std::string, std::map<storage::ObjectRef, int>> postings_;
};

}  // namespace mmconf::search

#endif  // MMCONF_SEARCH_TEXT_INDEX_H_
