#ifndef MMCONF_SEARCH_DESCRIPTORS_H_
#define MMCONF_SEARCH_DESCRIPTORS_H_

#include <vector>

#include "common/result.h"
#include "media/audio.h"
#include "media/image.h"

namespace mmconf::search {

/// Fixed-length feature vector summarizing a media object for similarity
/// retrieval — the "access structures that represent the relevant
/// 'features' of the data" of the multimedia-database literature the
/// paper builds on, powering the intro scenario: "some of them would like
/// to consider similar cases either from the same database or from other
/// medical databases."
using Descriptor = std::vector<double>;

/// Dimension of image descriptors: 16 histogram bins + 4 moment/texture
/// statistics.
inline constexpr int kImageDescriptorDim = 20;

/// Image descriptor: normalized 16-bin intensity histogram, mean and
/// standard deviation of intensity, mean absolute horizontal gradient
/// (texture), and foreground fraction (pixels above half intensity).
/// Deterministic and rotation-insensitive enough for "similar case"
/// retrieval over CT-like images.
Result<Descriptor> DescribeImage(const media::Image& image);

/// Dimension of audio descriptors: 8 spectral-band energy means + 4
/// temporal statistics.
inline constexpr int kAudioDescriptorDim = 12;

/// Audio descriptor: mean log energy in 8 linear bands plus overall RMS,
/// zero-crossing rate, energy variance, and silence fraction.
Result<Descriptor> DescribeAudio(const media::AudioSignal& signal);

/// Euclidean distance between two descriptors of equal dimension.
Result<double> DescriptorDistance(const Descriptor& a, const Descriptor& b);

}  // namespace mmconf::search

#endif  // MMCONF_SEARCH_DESCRIPTORS_H_
