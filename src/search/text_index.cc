#include "search/text_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace mmconf::search {

using storage::ObjectRef;

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status TextIndex::AddText(const ObjectRef& ref,
                          const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(Bytes payload, db_->FetchBlob(ref, blob_field));
  std::string text(payload.begin(), payload.end());
  std::vector<std::string> tokens = Tokenize(text);
  // Re-adding replaces the previous contents.
  Remove(ref).ok();
  DocumentStats stats;
  stats.length = tokens.size();
  documents_[ref] = stats;
  for (const std::string& token : tokens) {
    ++postings_[token][ref];
  }
  return Status::OK();
}

Result<int> TextIndex::AddAllTexts(const std::string& type,
                                   const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(std::vector<ObjectRef> refs, db_->List(type));
  int indexed = 0;
  for (const ObjectRef& ref : refs) {
    if (AddText(ref, blob_field).ok()) ++indexed;
  }
  return indexed;
}

Status TextIndex::Remove(const ObjectRef& ref) {
  if (documents_.erase(ref) == 0) {
    return Status::NotFound("document not indexed");
  }
  for (auto it = postings_.begin(); it != postings_.end();) {
    it->second.erase(ref);
    if (it->second.empty()) {
      it = postings_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<std::vector<TextHit>> TextIndex::Query(const std::string& query,
                                              int k) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  std::vector<std::string> terms = Tokenize(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no searchable terms");
  }
  const double num_documents = static_cast<double>(documents_.size());
  std::map<ObjectRef, double> scores;
  for (const std::string& term : terms) {
    auto posting = postings_.find(term);
    if (posting == postings_.end()) continue;
    double idf = std::log(
        (num_documents + 1.0) /
        (static_cast<double>(posting->second.size()) + 1.0));
    for (const auto& [ref, term_frequency] : posting->second) {
      double length =
          static_cast<double>(documents_.at(ref).length) + 1.0;
      scores[ref] += (term_frequency / length) * idf;
    }
  }
  std::vector<TextHit> hits;
  hits.reserve(scores.size());
  for (const auto& [ref, score] : scores) hits.push_back({ref, score});
  std::sort(hits.begin(), hits.end(), [](const TextHit& a, const TextHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.ref < b.ref;
  });
  if (hits.size() > static_cast<size_t>(k)) {
    hits.resize(static_cast<size_t>(k));
  }
  return hits;
}

Result<std::vector<ObjectRef>> TextIndex::QueryAll(
    const std::string& query) const {
  std::vector<std::string> terms = Tokenize(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no searchable terms");
  }
  std::vector<ObjectRef> out;
  for (const auto& [ref, stats] : documents_) {
    bool all = true;
    for (const std::string& term : terms) {
      auto posting = postings_.find(term);
      if (posting == postings_.end() ||
          posting->second.count(ref) == 0) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(ref);
  }
  return out;
}

}  // namespace mmconf::search
