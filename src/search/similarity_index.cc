#include "search/similarity_index.h"

#include <algorithm>

namespace mmconf::search {

using storage::ObjectRef;

Status SimilarityIndex::AddImage(const ObjectRef& ref,
                                 const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(Bytes payload, db_->FetchBlob(ref, blob_field));
  MMCONF_ASSIGN_OR_RETURN(media::Image image, media::Image::Decode(payload));
  MMCONF_ASSIGN_OR_RETURN(Descriptor descriptor, DescribeImage(image));
  image_index_[ref] = std::move(descriptor);
  return Status::OK();
}

Status SimilarityIndex::AddAudio(const ObjectRef& ref,
                                 const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(Bytes payload, db_->FetchBlob(ref, blob_field));
  MMCONF_ASSIGN_OR_RETURN(media::AudioSignal signal,
                          media::AudioSignal::Decode(payload));
  MMCONF_ASSIGN_OR_RETURN(Descriptor descriptor, DescribeAudio(signal));
  audio_index_[ref] = std::move(descriptor);
  return Status::OK();
}

Result<int> SimilarityIndex::AddAllImages(const std::string& type,
                                          const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(std::vector<ObjectRef> refs, db_->List(type));
  int indexed = 0;
  for (const ObjectRef& ref : refs) {
    if (AddImage(ref, blob_field).ok()) ++indexed;
  }
  return indexed;
}

Result<int> SimilarityIndex::AddAllAudio(const std::string& type,
                                         const std::string& blob_field) {
  MMCONF_ASSIGN_OR_RETURN(std::vector<ObjectRef> refs, db_->List(type));
  int indexed = 0;
  for (const ObjectRef& ref : refs) {
    if (AddAudio(ref, blob_field).ok()) ++indexed;
  }
  return indexed;
}

Status SimilarityIndex::Remove(const ObjectRef& ref) {
  if (image_index_.erase(ref) > 0 || audio_index_.erase(ref) > 0) {
    return Status::OK();
  }
  return Status::NotFound("object not indexed");
}

Result<std::vector<SimilarityHit>> SimilarityIndex::NearestIn(
    const std::map<ObjectRef, Descriptor>& index, const Descriptor& query,
    int k, const ObjectRef* exclude) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  std::vector<SimilarityHit> hits;
  for (const auto& [ref, descriptor] : index) {
    if (exclude != nullptr && ref == *exclude) continue;
    MMCONF_ASSIGN_OR_RETURN(double distance,
                            DescriptorDistance(query, descriptor));
    hits.push_back({ref, distance});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SimilarityHit& a, const SimilarityHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.ref < b.ref;
            });
  if (hits.size() > static_cast<size_t>(k)) {
    hits.resize(static_cast<size_t>(k));
  }
  return hits;
}

Result<std::vector<SimilarityHit>> SimilarityIndex::QueryImage(
    const media::Image& query, int k) const {
  MMCONF_ASSIGN_OR_RETURN(Descriptor descriptor, DescribeImage(query));
  return NearestIn(image_index_, descriptor, k, nullptr);
}

Result<std::vector<SimilarityHit>> SimilarityIndex::QueryAudio(
    const media::AudioSignal& query, int k) const {
  MMCONF_ASSIGN_OR_RETURN(Descriptor descriptor, DescribeAudio(query));
  return NearestIn(audio_index_, descriptor, k, nullptr);
}

Result<std::vector<SimilarityHit>> SimilarityIndex::QuerySimilarTo(
    const ObjectRef& ref, int k) const {
  auto image_it = image_index_.find(ref);
  if (image_it != image_index_.end()) {
    return NearestIn(image_index_, image_it->second, k, &ref);
  }
  auto audio_it = audio_index_.find(ref);
  if (audio_it != audio_index_.end()) {
    return NearestIn(audio_index_, audio_it->second, k, &ref);
  }
  return Status::NotFound("object not indexed");
}

}  // namespace mmconf::search
