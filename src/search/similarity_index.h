#ifndef MMCONF_SEARCH_SIMILARITY_INDEX_H_
#define MMCONF_SEARCH_SIMILARITY_INDEX_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "search/descriptors.h"
#include "storage/database.h"

namespace mmconf::search {

/// A retrieved object with its distance to the query.
struct SimilarityHit {
  storage::ObjectRef ref;
  double distance = 0;
};

/// Content-based "similar cases" retrieval over the object database —
/// the intro scenario: "a group of physicians... While discussing the
/// case, some of them would like to consider similar cases either from
/// the same database or from other medical databases."
///
/// Descriptors are computed once on Add and searched linearly (the
/// catalog scale of a consultation archive); descriptors are stored
/// per-ObjectRef, so the index survives object mutation only until
/// Refresh()/re-Add.
class SimilarityIndex {
 public:
  /// `db` must outlive the index.
  explicit SimilarityIndex(const storage::DatabaseServer* db) : db_(db) {}

  /// Indexes one stored image object (decodes `blob_field` as an Image
  /// and describes it).
  Status AddImage(const storage::ObjectRef& ref,
                  const std::string& blob_field = "FLD_DATA");

  /// Indexes one stored audio object.
  Status AddAudio(const storage::ObjectRef& ref,
                  const std::string& blob_field = "FLD_DATA");

  /// Indexes every object of `type` whose blob decodes as the expected
  /// media; returns how many were indexed.
  Result<int> AddAllImages(const std::string& type = "Image",
                           const std::string& blob_field = "FLD_DATA");
  Result<int> AddAllAudio(const std::string& type = "Audio",
                          const std::string& blob_field = "FLD_DATA");

  /// Removes an object from the index. NotFound if absent.
  Status Remove(const storage::ObjectRef& ref);

  size_t size() const { return image_index_.size() + audio_index_.size(); }

  /// k nearest indexed images to a query image (ascending distance).
  Result<std::vector<SimilarityHit>> QueryImage(const media::Image& query,
                                                int k) const;

  /// k nearest indexed audio objects to a query signal.
  Result<std::vector<SimilarityHit>> QueryAudio(
      const media::AudioSignal& query, int k) const;

  /// k nearest neighbours of an already-indexed object (excluding
  /// itself) — "similar cases from the same database".
  Result<std::vector<SimilarityHit>> QuerySimilarTo(
      const storage::ObjectRef& ref, int k) const;

 private:
  static Result<std::vector<SimilarityHit>> NearestIn(
      const std::map<storage::ObjectRef, Descriptor>& index,
      const Descriptor& query, int k, const storage::ObjectRef* exclude);

  const storage::DatabaseServer* db_;
  std::map<storage::ObjectRef, Descriptor> image_index_;
  std::map<storage::ObjectRef, Descriptor> audio_index_;
};

}  // namespace mmconf::search

#endif  // MMCONF_SEARCH_SIMILARITY_INDEX_H_
