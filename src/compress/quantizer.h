#ifndef MMCONF_COMPRESS_QUANTIZER_H_
#define MMCONF_COMPRESS_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "compress/plane.h"

namespace mmconf::compress {

/// Uniform dead-zone quantizer. The dead zone (values with |x| < step map
/// to 0) is what makes transform coefficients sparse and the zero-run
/// coder effective.
std::vector<int32_t> Quantize(const Plane& plane, double step);

/// Midpoint reconstruction of Quantize output.
Result<Plane> Dequantize(const std::vector<int32_t>& coefficients, int width,
                         int height, double step);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_QUANTIZER_H_
