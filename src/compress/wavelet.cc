#include "compress/wavelet.h"

#include <cmath>

namespace mmconf::compress {

namespace {

struct FilterPair {
  std::vector<double> low;
  std::vector<double> high;
};

FilterPair FiltersFor(WaveletBasis basis) {
  switch (basis) {
    case WaveletBasis::kHaar: {
      const double s = 1.0 / std::sqrt(2.0);
      return {{s, s}, {s, -s}};
    }
    case WaveletBasis::kDaub4: {
      const double s3 = std::sqrt(3.0);
      const double norm = 4.0 * std::sqrt(2.0);
      std::vector<double> low = {(1 + s3) / norm, (3 + s3) / norm,
                                 (3 - s3) / norm, (1 - s3) / norm};
      // g[k] = (-1)^k * h[L-1-k]
      std::vector<double> high(low.size());
      for (size_t k = 0; k < low.size(); ++k) {
        high[k] = (k % 2 == 0 ? 1.0 : -1.0) * low[low.size() - 1 - k];
      }
      return {std::move(low), std::move(high)};
    }
  }
  return {};
}

}  // namespace

Status DwtStep(std::vector<double>& signal, WaveletBasis basis) {
  const size_t n = signal.size();
  if (n < 2 || n % 2 != 0) {
    return Status::InvalidArgument("DWT step needs even length >= 2, got " +
                                   std::to_string(n));
  }
  FilterPair filters = FiltersFor(basis);
  const size_t half = n / 2;
  std::vector<double> out(n);
  for (size_t k = 0; k < half; ++k) {
    double a = 0, d = 0;
    for (size_t m = 0; m < filters.low.size(); ++m) {
      double x = signal[(2 * k + m) % n];
      a += filters.low[m] * x;
      d += filters.high[m] * x;
    }
    out[k] = a;
    out[half + k] = d;
  }
  signal = std::move(out);
  return Status::OK();
}

Status IdwtStep(std::vector<double>& signal, WaveletBasis basis) {
  const size_t n = signal.size();
  if (n < 2 || n % 2 != 0) {
    return Status::InvalidArgument("IDWT step needs even length >= 2");
  }
  FilterPair filters = FiltersFor(basis);
  const size_t half = n / 2;
  std::vector<double> out(n, 0.0);
  for (size_t k = 0; k < half; ++k) {
    for (size_t m = 0; m < filters.low.size(); ++m) {
      size_t idx = (2 * k + m) % n;
      out[idx] += filters.low[m] * signal[k] +
                  filters.high[m] * signal[half + k];
    }
  }
  signal = std::move(out);
  return Status::OK();
}

int MaxDwtLevels(int width, int height) {
  int levels = 0;
  while (width % 2 == 0 && height % 2 == 0 && width >= 2 && height >= 2) {
    width /= 2;
    height /= 2;
    ++levels;
  }
  return levels;
}

namespace {

Status Transform2DLevel(Plane& plane, int w, int h, WaveletBasis basis,
                        bool forward) {
  // Rows.
  std::vector<double> row(static_cast<size_t>(w));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) row[static_cast<size_t>(x)] = plane.at(x, y);
    MMCONF_RETURN_IF_ERROR(forward ? DwtStep(row, basis)
                                   : IdwtStep(row, basis));
    for (int x = 0; x < w; ++x) plane.at(x, y) = row[static_cast<size_t>(x)];
  }
  // Columns.
  std::vector<double> col(static_cast<size_t>(h));
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h; ++y) col[static_cast<size_t>(y)] = plane.at(x, y);
    MMCONF_RETURN_IF_ERROR(forward ? DwtStep(col, basis)
                                   : IdwtStep(col, basis));
    for (int y = 0; y < h; ++y) plane.at(x, y) = col[static_cast<size_t>(y)];
  }
  return Status::OK();
}

}  // namespace

Status Dwt2D(Plane& plane, int levels, WaveletBasis basis) {
  if (levels < 0 || levels > MaxDwtLevels(plane.width, plane.height)) {
    return Status::InvalidArgument(
        "cannot apply " + std::to_string(levels) + " DWT levels to " +
        std::to_string(plane.width) + "x" + std::to_string(plane.height));
  }
  int w = plane.width, h = plane.height;
  for (int level = 0; level < levels; ++level) {
    MMCONF_RETURN_IF_ERROR(
        Transform2DLevel(plane, w, h, basis, /*forward=*/true));
    w /= 2;
    h /= 2;
  }
  return Status::OK();
}

Status Idwt2D(Plane& plane, int levels, WaveletBasis basis) {
  if (levels < 0 || levels > MaxDwtLevels(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid level count");
  }
  for (int level = levels - 1; level >= 0; --level) {
    int w = plane.width >> level;
    int h = plane.height >> level;
    MMCONF_RETURN_IF_ERROR(
        Transform2DLevel(plane, w, h, basis, /*forward=*/false));
  }
  return Status::OK();
}

Result<Plane> ReconstructAtScale(const Plane& analyzed, int levels,
                                 int scale_log2, WaveletBasis basis) {
  if (scale_log2 < 0 || scale_log2 > levels) {
    return Status::InvalidArgument("scale must be within [0, levels]");
  }
  int w = analyzed.width >> scale_log2;
  int h = analyzed.height >> scale_log2;
  Plane sub(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) sub.at(x, y) = analyzed.at(x, y);
  }
  MMCONF_RETURN_IF_ERROR(Idwt2D(sub, levels - scale_log2, basis));
  // Each 2D analysis level scales the LL band by 2 (orthonormal filters),
  // so the coarse reconstruction sits 2^scale above pixel range.
  double scale = std::pow(2.0, -scale_log2);
  for (double& v : sub.data) v *= scale;
  return sub;
}

}  // namespace mmconf::compress
