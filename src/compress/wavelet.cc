#include "compress/wavelet.h"

#include <cmath>
#include <cstring>

#include "obs/metrics.h"

namespace mmconf::compress {

namespace {

// Filter taps as compile-time constants (17 significant digits
// round-trip IEEE doubles exactly; WaveletTapsMatchDefiningExpressions
// in compress_test.cc pins them bit-for-bit to the defining
// expressions). kDaub4High follows g[k] = (-1)^k * h[3-k].
inline constexpr double kHaarTap = 0.70710678118654746;  // 1/sqrt(2)
inline constexpr double kDaub4Low[4] = {
    0.4829629131445341,    // (1 + sqrt(3)) / (4 * sqrt(2))
    0.83651630373780772,   // (3 + sqrt(3)) / (4 * sqrt(2))
    0.22414386804201339,   // (3 - sqrt(3)) / (4 * sqrt(2))
    -0.12940952255126034,  // (1 - sqrt(3)) / (4 * sqrt(2))
};

// Profiling hooks (nullptr when detached): 1D line transforms, 2D region
// passes, and the scratch arena's high-water byte count.
obs::Counter* g_line_steps = nullptr;
obs::Counter* g_region_passes = nullptr;
obs::Gauge* g_scratch_bytes = nullptr;

void NoteScratch(const KernelScratch& scratch) {
  if (g_scratch_bytes != nullptr &&
      static_cast<int64_t>(scratch.capacity_bytes()) >
          g_scratch_bytes->value()) {
    g_scratch_bytes->Set(static_cast<int64_t>(scratch.capacity_bytes()));
  }
}

// ---- 1D line kernels -------------------------------------------------
// All operate out-of-place (in != out), length n even >= 2, periodic
// boundary. The interior loops are flat — no modulo, no branches — and
// the wrap-around tail is a dedicated epilogue, so the compiler can
// vectorize the body. Accumulation order matches the original
// filter-loop formulation term for term.

void DwtLineHaar(const double* in, double* out, size_t n) {
  const size_t half = n / 2;
  const double s = kHaarTap;
  for (size_t k = 0; k < half; ++k) {
    const double x0 = in[2 * k];
    const double x1 = in[2 * k + 1];
    out[k] = s * x0 + s * x1;
    out[half + k] = s * x0 - s * x1;
  }
}

void IdwtLineHaar(const double* in, double* out, size_t n) {
  const size_t half = n / 2;
  const double s = kHaarTap;
  for (size_t k = 0; k < half; ++k) {
    const double a = in[k];
    const double d = in[half + k];
    out[2 * k] = s * a + s * d;
    out[2 * k + 1] = s * a - s * d;
  }
}

void DwtLineDaub4(const double* in, double* out, size_t n) {
  const size_t half = n / 2;
  const double l0 = kDaub4Low[0], l1 = kDaub4Low[1], l2 = kDaub4Low[2],
               l3 = kDaub4Low[3];
  const double g0 = l3, g1 = -l2, g2 = l1, g3 = -l0;
  // Interior: windows [2k, 2k+3] that stay inside the signal.
  for (size_t k = 0; k + 1 < half; ++k) {
    const double x0 = in[2 * k];
    const double x1 = in[2 * k + 1];
    const double x2 = in[2 * k + 2];
    const double x3 = in[2 * k + 3];
    out[k] = l0 * x0 + l1 * x1 + l2 * x2 + l3 * x3;
    out[half + k] = g0 * x0 + g1 * x1 + g2 * x2 + g3 * x3;
  }
  // Boundary: the last window wraps to the first two samples.
  const double x0 = in[n - 2];
  const double x1 = in[n - 1];
  const double x2 = in[0];
  const double x3 = in[1];
  out[half - 1] = l0 * x0 + l1 * x1 + l2 * x2 + l3 * x3;
  out[n - 1] = g0 * x0 + g1 * x1 + g2 * x2 + g3 * x3;
}

void IdwtLineDaub4(const double* in, double* out, size_t n) {
  const size_t half = n / 2;
  const double l0 = kDaub4Low[0], l1 = kDaub4Low[1], l2 = kDaub4Low[2],
               l3 = kDaub4Low[3];
  const double g0 = l3, g1 = -l2, g2 = l1, g3 = -l0;
  // Each output sample receives exactly two filter contributions; the
  // first pass writes the m ∈ {0,1} terms, the second accumulates the
  // m ∈ {2,3} terms shifted down one window (wrapping at the boundary).
  for (size_t k = 0; k < half; ++k) {
    const double a = in[k];
    const double d = in[half + k];
    out[2 * k] = l0 * a + g0 * d;
    out[2 * k + 1] = l1 * a + g1 * d;
  }
  for (size_t k = 0; k + 1 < half; ++k) {
    const double a = in[k];
    const double d = in[half + k];
    out[2 * k + 2] += l2 * a + g2 * d;
    out[2 * k + 3] += l3 * a + g3 * d;
  }
  const double a = in[half - 1];
  const double d = in[n - 1];
  out[0] += l2 * a + g2 * d;
  out[1] += l3 * a + g3 * d;
}

void TransformLine(const double* in, double* out, size_t n,
                   WaveletBasis basis, bool forward) {
  if (basis == WaveletBasis::kHaar) {
    forward ? DwtLineHaar(in, out, n) : IdwtLineHaar(in, out, n);
  } else {
    forward ? DwtLineDaub4(in, out, n) : IdwtLineDaub4(in, out, n);
  }
  if (g_line_steps != nullptr) g_line_steps->Add(1);
}

Status CheckLineLength(size_t n, bool forward) {
  if (n < 2 || n % 2 != 0) {
    if (forward) {
      return Status::InvalidArgument(
          "DWT step needs even length >= 2, got " + std::to_string(n));
    }
    return Status::InvalidArgument("IDWT step needs even length >= 2");
  }
  return Status::OK();
}

}  // namespace

KernelScratch& ThreadKernelScratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

Status DwtStep(std::vector<double>& signal, WaveletBasis basis) {
  MMCONF_RETURN_IF_ERROR(CheckLineLength(signal.size(), /*forward=*/true));
  KernelScratch& scratch = ThreadKernelScratch();
  double* out = scratch.Line(signal.size());
  TransformLine(signal.data(), out, signal.size(), basis, /*forward=*/true);
  std::memcpy(signal.data(), out, signal.size() * sizeof(double));
  NoteScratch(scratch);
  return Status::OK();
}

Status IdwtStep(std::vector<double>& signal, WaveletBasis basis) {
  MMCONF_RETURN_IF_ERROR(CheckLineLength(signal.size(), /*forward=*/false));
  KernelScratch& scratch = ThreadKernelScratch();
  double* out = scratch.Line(signal.size());
  TransformLine(signal.data(), out, signal.size(), basis,
                /*forward=*/false);
  std::memcpy(signal.data(), out, signal.size() * sizeof(double));
  NoteScratch(scratch);
  return Status::OK();
}

Status Transform2DRegion(Plane& plane, int x0, int y0, int w, int h,
                         WaveletBasis basis, bool forward) {
  if (w < 2 || h < 2 || w % 2 != 0 || h % 2 != 0) {
    return Status::InvalidArgument(
        "2D transform region needs even dimensions >= 2, got " +
        std::to_string(w) + "x" + std::to_string(h));
  }
  if (x0 < 0 || y0 < 0 || x0 + w > plane.width || y0 + h > plane.height) {
    return Status::InvalidArgument("transform region outside plane");
  }
  KernelScratch& scratch = ThreadKernelScratch();
  // Rows are contiguous in the plane: transform each span into line
  // scratch and copy back.
  double* line = scratch.Line(static_cast<size_t>(w));
  for (int y = 0; y < h; ++y) {
    double* row = &plane.at(x0, y0 + y);
    TransformLine(row, line, static_cast<size_t>(w), basis, forward);
    std::memcpy(row, line, static_cast<size_t>(w) * sizeof(double));
  }
  // Columns: instead of gathering one strided column at a time, combine
  // whole rows so every inner loop runs unit-stride over x across all w
  // columns at once (per-element arithmetic identical to the 1D line
  // kernels). Results build up in block scratch, then land back in the
  // region in one pass.
  const size_t sw = static_cast<size_t>(w);
  double* block = scratch.Block(sw * static_cast<size_t>(h));
  const auto row_in = [&](int yy) -> const double* {
    return &plane.at(x0, y0 + yy);
  };
  const auto row_out = [&](int yy) -> double* {
    return block + static_cast<size_t>(yy) * sw;
  };
  const int half = h / 2;
  if (basis == WaveletBasis::kHaar) {
    const double s = kHaarTap;
    for (int k = 0; k < half; ++k) {
      const double* r0 = row_in(forward ? 2 * k : k);
      const double* r1 = row_in(forward ? 2 * k + 1 : half + k);
      double* o0 = row_out(forward ? k : 2 * k);
      double* o1 = row_out(forward ? half + k : 2 * k + 1);
      // Analysis and synthesis share the butterfly; only the row
      // pairing above differs.
      for (int x = 0; x < w; ++x) {
        o0[x] = s * r0[x] + s * r1[x];
        o1[x] = s * r0[x] - s * r1[x];
      }
    }
  } else if (forward) {
    const double l0 = kDaub4Low[0], l1 = kDaub4Low[1], l2 = kDaub4Low[2],
                 l3 = kDaub4Low[3];
    const double g0 = l3, g1 = -l2, g2 = l1, g3 = -l0;
    for (int k = 0; k < half; ++k) {
      const double* r0 = row_in(2 * k);
      const double* r1 = row_in(2 * k + 1);
      // The wrap only affects which rows feed the window — resolved out
      // here, never inside the x loop.
      const double* r2 = row_in((2 * k + 2) % h);
      const double* r3 = row_in((2 * k + 3) % h);
      double* oa = row_out(k);
      double* od = row_out(half + k);
      for (int x = 0; x < w; ++x) {
        oa[x] = l0 * r0[x] + l1 * r1[x] + l2 * r2[x] + l3 * r3[x];
        od[x] = g0 * r0[x] + g1 * r1[x] + g2 * r2[x] + g3 * r3[x];
      }
    }
  } else {
    const double l0 = kDaub4Low[0], l1 = kDaub4Low[1], l2 = kDaub4Low[2],
                 l3 = kDaub4Low[3];
    const double g0 = l3, g1 = -l2, g2 = l1, g3 = -l0;
    for (int k = 0; k < half; ++k) {
      const double* a = row_in(k);
      const double* d = row_in(half + k);
      double* o0 = row_out(2 * k);
      double* o1 = row_out(2 * k + 1);
      for (int x = 0; x < w; ++x) {
        o0[x] = l0 * a[x] + g0 * d[x];
        o1[x] = l1 * a[x] + g1 * d[x];
      }
    }
    for (int k = 0; k + 1 < half; ++k) {
      const double* a = row_in(k);
      const double* d = row_in(half + k);
      double* o2 = row_out(2 * k + 2);
      double* o3 = row_out(2 * k + 3);
      for (int x = 0; x < w; ++x) {
        o2[x] += l2 * a[x] + g2 * d[x];
        o3[x] += l3 * a[x] + g3 * d[x];
      }
    }
    const double* a = row_in(half - 1);
    const double* d = row_in(h - 1);
    double* o0 = row_out(0);
    double* o1 = row_out(1);
    for (int x = 0; x < w; ++x) {
      o0[x] += l2 * a[x] + g2 * d[x];
      o1[x] += l3 * a[x] + g3 * d[x];
    }
  }
  for (int yy = 0; yy < h; ++yy) {
    std::memcpy(&plane.at(x0, y0 + yy), row_out(yy), sw * sizeof(double));
  }
  if (g_region_passes != nullptr) g_region_passes->Add(1);
  NoteScratch(scratch);
  return Status::OK();
}

int MaxDwtLevels(int width, int height) {
  int levels = 0;
  while (width % 2 == 0 && height % 2 == 0 && width >= 2 && height >= 2) {
    width /= 2;
    height /= 2;
    ++levels;
  }
  return levels;
}

Status Dwt2D(Plane& plane, int levels, WaveletBasis basis) {
  if (levels < 0 || levels > MaxDwtLevels(plane.width, plane.height)) {
    return Status::InvalidArgument(
        "cannot apply " + std::to_string(levels) + " DWT levels to " +
        std::to_string(plane.width) + "x" + std::to_string(plane.height));
  }
  int w = plane.width, h = plane.height;
  for (int level = 0; level < levels; ++level) {
    MMCONF_RETURN_IF_ERROR(
        Transform2DRegion(plane, 0, 0, w, h, basis, /*forward=*/true));
    w /= 2;
    h /= 2;
  }
  return Status::OK();
}

Status Idwt2D(Plane& plane, int levels, WaveletBasis basis) {
  if (levels < 0 || levels > MaxDwtLevels(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid level count");
  }
  for (int level = levels - 1; level >= 0; --level) {
    int w = plane.width >> level;
    int h = plane.height >> level;
    MMCONF_RETURN_IF_ERROR(
        Transform2DRegion(plane, 0, 0, w, h, basis, /*forward=*/false));
  }
  return Status::OK();
}

Result<Plane> ReconstructAtScale(const Plane& analyzed, int levels,
                                 int scale_log2, WaveletBasis basis) {
  if (scale_log2 < 0 || scale_log2 > levels) {
    return Status::InvalidArgument("scale must be within [0, levels]");
  }
  int w = analyzed.width >> scale_log2;
  int h = analyzed.height >> scale_log2;
  Plane sub(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) sub.at(x, y) = analyzed.at(x, y);
  }
  MMCONF_RETURN_IF_ERROR(Idwt2D(sub, levels - scale_log2, basis));
  // Each 2D analysis level scales the LL band by 2 (orthonormal filters),
  // so the coarse reconstruction sits 2^scale above pixel range.
  double scale = std::pow(2.0, -scale_log2);
  for (double& v : sub.data) v *= scale;
  return sub;
}

void SetKernelObserver(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    g_line_steps = nullptr;
    g_region_passes = nullptr;
    g_scratch_bytes = nullptr;
    return;
  }
  g_line_steps = metrics->GetCounter("compress.kernel.line_steps");
  g_region_passes = metrics->GetCounter("compress.kernel.region_passes");
  g_scratch_bytes = metrics->GetGauge("compress.kernel.scratch_bytes");
}

}  // namespace mmconf::compress
