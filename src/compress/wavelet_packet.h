#ifndef MMCONF_COMPRESS_WAVELET_PACKET_H_
#define MMCONF_COMPRESS_WAVELET_PACKET_H_

#include "common/status.h"
#include "compress/plane.h"
#include "compress/wavelet.h"

namespace mmconf::compress {

/// Full (uniform) 2D wavelet-packet decomposition: unlike the Mallat
/// pyramid, *every* subband — detail bands included — is re-analyzed at
/// each depth, yielding 4^depth equal tiles. The paper's layered codec
/// uses packet bases for the residual layers because residuals after the
/// wavelet base layer are oscillatory, which packets represent sparsely.
Status WaveletPacket2D(Plane& plane, int depth, WaveletBasis basis);

/// Inverse of WaveletPacket2D.
Status InverseWaveletPacket2D(Plane& plane, int depth, WaveletBasis basis);

/// Maximum depth for the given dimensions (every tile must keep even
/// dimensions at each step).
int MaxPacketDepth(int width, int height);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_WAVELET_PACKET_H_
