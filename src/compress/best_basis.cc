#include "compress/best_basis.h"

#include <cmath>

#include "compress/wavelet_packet.h"

namespace mmconf::compress {

size_t BasisNode::LeafCount() const {
  if (!split) return 1;
  size_t count = 0;
  for (const BasisNode& child : children) count += child.LeafCount();
  return count;
}

int BasisNode::MaxDepth() const {
  if (!split) return 0;
  int deepest = 0;
  for (const BasisNode& child : children) {
    deepest = std::max(deepest, child.MaxDepth());
  }
  return deepest + 1;
}

double L1Cost(const Plane& plane) {
  double cost = 0;
  for (double v : plane.data) cost += std::abs(v);
  return cost;
}

namespace {

Plane ExtractRegion(const Plane& plane, int x0, int y0, int w, int h) {
  Plane out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) out.at(x, y) = plane.at(x0 + x, y0 + y);
  }
  return out;
}

Result<BasisNode> Search(const Plane& tile, int depth_left,
                         WaveletBasis basis) {
  BasisNode node;
  node.cost = L1Cost(tile);
  if (depth_left == 0 || tile.width < 2 || tile.height < 2 ||
      tile.width % 2 != 0 || tile.height % 2 != 0) {
    return node;
  }
  Plane analyzed = tile;
  MMCONF_RETURN_IF_ERROR(Transform2DRegion(analyzed, 0, 0, analyzed.width,
                                         analyzed.height, basis,
                                         /*forward=*/true));
  const int hw = tile.width / 2;
  const int hh = tile.height / 2;
  const int offsets[4][2] = {{0, 0}, {hw, 0}, {0, hh}, {hw, hh}};
  std::vector<BasisNode> children;
  double split_cost = 0;
  for (const auto& offset : offsets) {
    Plane quadrant =
        ExtractRegion(analyzed, offset[0], offset[1], hw, hh);
    MMCONF_ASSIGN_OR_RETURN(BasisNode child,
                            Search(quadrant, depth_left - 1, basis));
    split_cost += child.cost;
    children.push_back(std::move(child));
  }
  if (split_cost < node.cost) {
    node.split = true;
    node.cost = split_cost;
    node.children = std::move(children);
  }
  return node;
}

Status ApplyRegion(Plane& plane, const BasisNode& node, int x0, int y0,
                   int w, int h, WaveletBasis basis, bool forward) {
  if (!node.split) return Status::OK();
  if (node.children.size() != 4) {
    return Status::InvalidArgument("split basis node needs 4 children");
  }
  const int hw = w / 2;
  const int hh = h / 2;
  const int offsets[4][2] = {{0, 0}, {hw, 0}, {0, hh}, {hw, hh}};
  if (forward) {
    MMCONF_RETURN_IF_ERROR(
        Transform2DRegion(plane, x0, y0, w, h, basis, true));
    for (int q = 0; q < 4; ++q) {
      MMCONF_RETURN_IF_ERROR(ApplyRegion(plane, node.children[q],
                                         x0 + offsets[q][0],
                                         y0 + offsets[q][1], hw, hh, basis,
                                         true));
    }
  } else {
    for (int q = 0; q < 4; ++q) {
      MMCONF_RETURN_IF_ERROR(ApplyRegion(plane, node.children[q],
                                         x0 + offsets[q][0],
                                         y0 + offsets[q][1], hw, hh, basis,
                                         false));
    }
    MMCONF_RETURN_IF_ERROR(
        Transform2DRegion(plane, x0, y0, w, h, basis, false));
  }
  return Status::OK();
}

}  // namespace

Result<BasisNode> BestBasisSearch(const Plane& plane, int max_depth,
                                  WaveletBasis basis) {
  if (max_depth < 0 || max_depth > MaxPacketDepth(plane.width,
                                                  plane.height)) {
    return Status::InvalidArgument("max_depth infeasible for plane size");
  }
  return Search(plane, max_depth, basis);
}

Status ApplyBestBasis(Plane& plane, const BasisNode& tree,
                      WaveletBasis basis) {
  return ApplyRegion(plane, tree, 0, 0, plane.width, plane.height, basis,
                     /*forward=*/true);
}

Status InvertBestBasis(Plane& plane, const BasisNode& tree,
                       WaveletBasis basis) {
  return ApplyRegion(plane, tree, 0, 0, plane.width, plane.height, basis,
                     /*forward=*/false);
}

Result<double> UniformPacketCost(const Plane& plane, int depth,
                                 WaveletBasis basis) {
  Plane analyzed = plane;
  MMCONF_RETURN_IF_ERROR(WaveletPacket2D(analyzed, depth, basis));
  return L1Cost(analyzed);
}

Result<double> PyramidCost(const Plane& plane, int levels,
                           WaveletBasis basis) {
  Plane analyzed = plane;
  MMCONF_RETURN_IF_ERROR(Dwt2D(analyzed, levels, basis));
  return L1Cost(analyzed);
}

}  // namespace mmconf::compress
