#include "compress/local_cosine.h"

#include <array>
#include <cmath>

namespace mmconf::compress {

namespace {

constexpr int kN = kLocalCosineBlock;

/// Orthonormal DCT-II basis matrix, built once.
const std::array<std::array<double, kN>, kN>& DctMatrix() {
  static const std::array<std::array<double, kN>, kN> matrix = [] {
    std::array<std::array<double, kN>, kN> m{};
    for (int k = 0; k < kN; ++k) {
      double scale = k == 0 ? std::sqrt(1.0 / kN) : std::sqrt(2.0 / kN);
      for (int n = 0; n < kN; ++n) {
        m[k][n] = scale * std::cos(M_PI * (n + 0.5) * k / kN);
      }
    }
    return m;
  }();
  return matrix;
}

Status CheckDims(const Plane& plane) {
  if (plane.width % kN != 0 || plane.height % kN != 0) {
    return Status::InvalidArgument(
        "local cosine transform needs dimensions divisible by " +
        std::to_string(kN) + ", got " + std::to_string(plane.width) + "x" +
        std::to_string(plane.height));
  }
  return Status::OK();
}

void TransformBlock(Plane& plane, int bx, int by, bool forward) {
  const auto& dct = DctMatrix();
  std::array<std::array<double, kN>, kN> tmp{}, out{};
  // Rows: tmp = (D * block^T)^T i.e. apply along x.
  for (int y = 0; y < kN; ++y) {
    for (int k = 0; k < kN; ++k) {
      double acc = 0;
      for (int n = 0; n < kN; ++n) {
        acc += (forward ? dct[k][n] : dct[n][k]) * plane.at(bx + n, by + y);
      }
      tmp[y][k] = acc;
    }
  }
  // Columns.
  for (int x = 0; x < kN; ++x) {
    for (int k = 0; k < kN; ++k) {
      double acc = 0;
      for (int n = 0; n < kN; ++n) {
        acc += (forward ? dct[k][n] : dct[n][k]) * tmp[n][x];
      }
      out[k][x] = acc;
    }
  }
  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) plane.at(bx + x, by + y) = out[y][x];
  }
}

Status TransformAll(Plane& plane, bool forward) {
  MMCONF_RETURN_IF_ERROR(CheckDims(plane));
  for (int by = 0; by < plane.height; by += kN) {
    for (int bx = 0; bx < plane.width; bx += kN) {
      TransformBlock(plane, bx, by, forward);
    }
  }
  return Status::OK();
}

}  // namespace

Status LocalCosine2D(Plane& plane) { return TransformAll(plane, true); }

Status InverseLocalCosine2D(Plane& plane) {
  return TransformAll(plane, false);
}

}  // namespace mmconf::compress
