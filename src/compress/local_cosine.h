#ifndef MMCONF_COMPRESS_LOCAL_COSINE_H_
#define MMCONF_COMPRESS_LOCAL_COSINE_H_

#include "common/status.h"
#include "compress/plane.h"

namespace mmconf::compress {

/// Block size of the local cosine transform.
inline constexpr int kLocalCosineBlock = 8;

/// Blockwise orthonormal DCT-II — the "local cosine" basis of the paper's
/// residual layers (Averbuch, Aharoni, Coifman & Israeli 1993 use local
/// cosine to fight blocking artifacts; here it gives the codec a third
/// basis family whose artifacts differ from the wavelet bases, so each
/// residual layer "can encode and compensate for the artifacts created by
/// the quantization of the coefficients of the previous bases").
///
/// Plane dimensions must be multiples of kLocalCosineBlock.
Status LocalCosine2D(Plane& plane);

/// Inverse of LocalCosine2D.
Status InverseLocalCosine2D(Plane& plane);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_LOCAL_COSINE_H_
