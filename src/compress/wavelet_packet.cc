#include "compress/wavelet_packet.h"

#include <vector>

namespace mmconf::compress {

int MaxPacketDepth(int width, int height) { return MaxDwtLevels(width, height); }

namespace {

/// Applies one analysis/synthesis step to every (tw x th) tile of the
/// plane via the shared allocation-free region kernel.
Status TransformTiles(Plane& plane, int tw, int th, WaveletBasis basis,
                      bool forward) {
  for (int ty = 0; ty < plane.height; ty += th) {
    for (int tx = 0; tx < plane.width; tx += tw) {
      MMCONF_RETURN_IF_ERROR(
          Transform2DRegion(plane, tx, ty, tw, th, basis, forward));
    }
  }
  return Status::OK();
}

}  // namespace

Status WaveletPacket2D(Plane& plane, int depth, WaveletBasis basis) {
  if (depth < 0 || depth > MaxPacketDepth(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid packet depth " +
                                   std::to_string(depth));
  }
  for (int level = 0; level < depth; ++level) {
    MMCONF_RETURN_IF_ERROR(TransformTiles(plane, plane.width >> level,
                                          plane.height >> level, basis,
                                          /*forward=*/true));
  }
  return Status::OK();
}

Status InverseWaveletPacket2D(Plane& plane, int depth, WaveletBasis basis) {
  if (depth < 0 || depth > MaxPacketDepth(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid packet depth " +
                                   std::to_string(depth));
  }
  for (int level = depth - 1; level >= 0; --level) {
    MMCONF_RETURN_IF_ERROR(TransformTiles(plane, plane.width >> level,
                                          plane.height >> level, basis,
                                          /*forward=*/false));
  }
  return Status::OK();
}

}  // namespace mmconf::compress
