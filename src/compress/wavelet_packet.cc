#include "compress/wavelet_packet.h"

#include <vector>

namespace mmconf::compress {

int MaxPacketDepth(int width, int height) { return MaxDwtLevels(width, height); }

namespace {

/// Applies one analysis/synthesis step to every (tw x th) tile of the
/// plane.
Status TransformTiles(Plane& plane, int tw, int th, WaveletBasis basis,
                      bool forward) {
  std::vector<double> line;
  for (int ty = 0; ty < plane.height; ty += th) {
    for (int tx = 0; tx < plane.width; tx += tw) {
      // Rows of the tile.
      line.resize(static_cast<size_t>(tw));
      for (int y = 0; y < th; ++y) {
        for (int x = 0; x < tw; ++x) {
          line[static_cast<size_t>(x)] = plane.at(tx + x, ty + y);
        }
        MMCONF_RETURN_IF_ERROR(forward ? DwtStep(line, basis)
                                       : IdwtStep(line, basis));
        for (int x = 0; x < tw; ++x) {
          plane.at(tx + x, ty + y) = line[static_cast<size_t>(x)];
        }
      }
      // Columns of the tile.
      line.resize(static_cast<size_t>(th));
      for (int x = 0; x < tw; ++x) {
        for (int y = 0; y < th; ++y) {
          line[static_cast<size_t>(y)] = plane.at(tx + x, ty + y);
        }
        MMCONF_RETURN_IF_ERROR(forward ? DwtStep(line, basis)
                                       : IdwtStep(line, basis));
        for (int y = 0; y < th; ++y) {
          plane.at(tx + x, ty + y) = line[static_cast<size_t>(y)];
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status WaveletPacket2D(Plane& plane, int depth, WaveletBasis basis) {
  if (depth < 0 || depth > MaxPacketDepth(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid packet depth " +
                                   std::to_string(depth));
  }
  for (int level = 0; level < depth; ++level) {
    MMCONF_RETURN_IF_ERROR(TransformTiles(plane, plane.width >> level,
                                          plane.height >> level, basis,
                                          /*forward=*/true));
  }
  return Status::OK();
}

Status InverseWaveletPacket2D(Plane& plane, int depth, WaveletBasis basis) {
  if (depth < 0 || depth > MaxPacketDepth(plane.width, plane.height)) {
    return Status::InvalidArgument("invalid packet depth " +
                                   std::to_string(depth));
  }
  for (int level = depth - 1; level >= 0; --level) {
    MMCONF_RETURN_IF_ERROR(TransformTiles(plane, plane.width >> level,
                                          plane.height >> level, basis,
                                          /*forward=*/false));
  }
  return Status::OK();
}

}  // namespace mmconf::compress
