#ifndef MMCONF_COMPRESS_WAVELET_H_
#define MMCONF_COMPRESS_WAVELET_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "compress/plane.h"

namespace mmconf::obs {
class MetricsRegistry;
}  // namespace mmconf::obs

namespace mmconf::compress {

/// Orthonormal wavelet family used by the base layer.
enum class WaveletBasis : uint8_t {
  kHaar = 0,
  kDaub4 = 1,
};

/// Reusable scratch arena for the transform kernels: two growable double
/// buffers (a line and a block) that are requested per call and never
/// shrink, so steady-state transforms perform zero heap allocation. The
/// kernels keep one per thread (see ThreadKernelScratch); Line/Block
/// return pointers that stay valid until the next request of the same
/// buffer.
class KernelScratch {
 public:
  /// At least `n` doubles of line scratch (1D transforms, row passes).
  double* Line(size_t n) {
    if (line_.size() < n) line_.resize(n);
    return line_.data();
  }
  /// At least `n` doubles of block scratch (vectorized column passes).
  double* Block(size_t n) {
    if (block_.size() < n) block_.resize(n);
    return block_.data();
  }
  size_t capacity_bytes() const {
    return (line_.capacity() + block_.capacity()) * sizeof(double);
  }

 private:
  std::vector<double> line_;
  std::vector<double> block_;
};

/// The calling thread's kernel scratch arena. All transforms below draw
/// from it, so a warmed-up thread transforms without touching the heap.
KernelScratch& ThreadKernelScratch();

/// One-level 1D analysis with periodic boundary handling: `signal` (even
/// length) becomes [approx | detail], each of half length. Filter taps
/// live in fixed static tables and the periodic wrap is handled by a
/// dedicated boundary iteration, so the interior loop is flat
/// (autovectorizable, no `% n`, no per-call allocation).
Status DwtStep(std::vector<double>& signal, WaveletBasis basis);
/// Inverse of DwtStep.
Status IdwtStep(std::vector<double>& signal, WaveletBasis basis);

/// One 2D analysis (forward) or synthesis step confined to the region
/// [x0, x0+w) x [y0, y0+h) of `plane`: rows first, then columns, periodic
/// within the region — the shared kernel behind Dwt2D, the wavelet-packet
/// tiling, and the best-basis recursion. The column pass processes all
/// `w` columns simultaneously with unit-stride inner loops over x.
/// Requires even w, h >= 2 and the region inside the plane.
Status Transform2DRegion(Plane& plane, int x0, int y0, int w, int h,
                         WaveletBasis basis, bool forward);

/// Maximum number of 2D DWT levels applicable to a width x height plane
/// (each level requires both current dimensions to be even).
int MaxDwtLevels(int width, int height);

/// Multi-level 2D Mallat decomposition in place: after `levels` steps, the
/// top-left (w/2^levels x h/2^levels) region holds the coarsest
/// approximation (LL) and the remaining regions hold detail subbands.
Status Dwt2D(Plane& plane, int levels, WaveletBasis basis);
/// Inverse of Dwt2D.
Status Idwt2D(Plane& plane, int levels, WaveletBasis basis);

/// Reconstructs only the lowest `target_levels` of an analyzed plane,
/// producing the coarse approximation at 1/2^(levels-target_levels) the
/// original resolution, rescaled into pixel range. This is the
/// multi-resolution path ("the compression and transfer of images in
/// various degrees of resolution"): a client with little bandwidth can
/// synthesize a faithful thumbnail from the coefficient prefix.
Result<Plane> ReconstructAtScale(const Plane& analyzed, int levels,
                                 int scale_log2, WaveletBasis basis);

/// Wires the codec kernel profiling counters (compress.kernel.*: 1D line
/// transforms, 2D region passes, scratch high-water bytes) into
/// `metrics`; pass nullptr to detach. Process-wide, like the kernels
/// themselves.
void SetKernelObserver(obs::MetricsRegistry* metrics);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_WAVELET_H_
