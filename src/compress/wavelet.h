#ifndef MMCONF_COMPRESS_WAVELET_H_
#define MMCONF_COMPRESS_WAVELET_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "compress/plane.h"

namespace mmconf::compress {

/// Orthonormal wavelet family used by the base layer.
enum class WaveletBasis : uint8_t {
  kHaar = 0,
  kDaub4 = 1,
};

/// One-level 1D analysis with periodic boundary handling: `signal` (even
/// length) becomes [approx | detail], each of half length.
Status DwtStep(std::vector<double>& signal, WaveletBasis basis);
/// Inverse of DwtStep.
Status IdwtStep(std::vector<double>& signal, WaveletBasis basis);

/// Maximum number of 2D DWT levels applicable to a width x height plane
/// (each level requires both current dimensions to be even).
int MaxDwtLevels(int width, int height);

/// Multi-level 2D Mallat decomposition in place: after `levels` steps, the
/// top-left (w/2^levels x h/2^levels) region holds the coarsest
/// approximation (LL) and the remaining regions hold detail subbands.
Status Dwt2D(Plane& plane, int levels, WaveletBasis basis);
/// Inverse of Dwt2D.
Status Idwt2D(Plane& plane, int levels, WaveletBasis basis);

/// Reconstructs only the lowest `target_levels` of an analyzed plane,
/// producing the coarse approximation at 1/2^(levels-target_levels) the
/// original resolution, rescaled into pixel range. This is the
/// multi-resolution path ("the compression and transfer of images in
/// various degrees of resolution"): a client with little bandwidth can
/// synthesize a faithful thumbnail from the coefficient prefix.
Result<Plane> ReconstructAtScale(const Plane& analyzed, int levels,
                                 int scale_log2, WaveletBasis basis);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_WAVELET_H_
