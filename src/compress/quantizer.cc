#include "compress/quantizer.h"

#include <cmath>

namespace mmconf::compress {

std::vector<int32_t> Quantize(const Plane& plane, double step) {
  std::vector<int32_t> out(plane.data.size());
  for (size_t i = 0; i < plane.data.size(); ++i) {
    double v = plane.data[i] / step;
    out[i] = static_cast<int32_t>(v < 0 ? -std::floor(-v) : std::floor(v));
  }
  return out;
}

Result<Plane> Dequantize(const std::vector<int32_t>& coefficients, int width,
                         int height, double step) {
  if (coefficients.size() != static_cast<size_t>(width) * height) {
    return Status::InvalidArgument("coefficient count does not match plane");
  }
  Plane plane(width, height);
  for (size_t i = 0; i < coefficients.size(); ++i) {
    int32_t q = coefficients[i];
    if (q == 0) {
      plane.data[i] = 0;
    } else if (q > 0) {
      plane.data[i] = (q + 0.5) * step;
    } else {
      plane.data[i] = (q - 0.5) * step;
    }
  }
  return plane;
}

}  // namespace mmconf::compress
