#ifndef MMCONF_COMPRESS_BEST_BASIS_H_
#define MMCONF_COMPRESS_BEST_BASIS_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "compress/plane.h"
#include "compress/wavelet.h"

namespace mmconf::compress {

/// A node of the chosen wavelet-packet basis tree. `split == false` means
/// the subband is kept as-is (a basis leaf); `split == true` means one
/// more 2D analysis step is applied and the four quadrant children are
/// refined recursively (child order: LL, HL, LH, HH).
struct BasisNode {
  bool split = false;
  double cost = 0;  ///< l1 cost of the subtree under the chosen basis
  std::vector<BasisNode> children;  ///< size 4 when split

  /// Number of leaves of this subtree (1 when !split).
  size_t LeafCount() const;
  /// Depth of the deepest split below (0 when !split).
  int MaxDepth() const;
};

/// Additive sparsity cost driving the search: sum of |coefficient|.
/// Orthonormal steps preserve l2, so a lower l1 means energy packed into
/// fewer coefficients — fewer bits after dead-zone quantization.
double L1Cost(const Plane& plane);

/// The Coifman–Wickerhauser best-basis algorithm over the 2D
/// wavelet-packet family ("By selecting different wavelet and wavelet
/// packet or local cosine bases, we allow different features to be
/// discovered in the image"): bottom-up dynamic programming that keeps a
/// subband unsplit exactly when no further analysis lowers the l1 cost.
/// `max_depth` bounds the tree (and must be feasible for the plane's
/// dimensions).
Result<BasisNode> BestBasisSearch(const Plane& plane, int max_depth,
                                  WaveletBasis basis);

/// Transforms `plane` in place into the coefficients of the chosen basis.
Status ApplyBestBasis(Plane& plane, const BasisNode& tree,
                      WaveletBasis basis);

/// Inverse of ApplyBestBasis.
Status InvertBestBasis(Plane& plane, const BasisNode& tree,
                       WaveletBasis basis);

/// Cost of representing `plane` in a *uniform* packet basis of `depth`
/// (depth 0 = identity). Reference point for tests and the ablation
/// bench: BestBasisSearch's cost is <= every uniform depth.
Result<double> UniformPacketCost(const Plane& plane, int depth,
                                 WaveletBasis basis);

/// Cost of the Mallat pyramid of `levels` (also a member of the packet
/// family: only the LL child ever splits).
Result<double> PyramidCost(const Plane& plane, int levels,
                           WaveletBasis basis);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_BEST_BASIS_H_
