#include "compress/layered_codec.h"

#include <algorithm>

#include "compress/bitstream.h"
#include "compress/local_cosine.h"
#include "compress/quantizer.h"
#include "compress/wavelet_packet.h"

namespace mmconf::compress {

namespace {

constexpr uint32_t kMagic = 0x4d4c4352;  // "MLCR"

Status AnalyzeLayer(Plane& plane, const LayerSpec& spec,
                    WaveletBasis wavelet) {
  switch (spec.basis) {
    case LayerBasis::kWavelet:
      return Dwt2D(plane, spec.levels, wavelet);
    case LayerBasis::kWaveletPacket:
      return WaveletPacket2D(plane, spec.levels, wavelet);
    case LayerBasis::kLocalCosine:
      return LocalCosine2D(plane);
  }
  return Status::InvalidArgument("unknown layer basis");
}

Status SynthesizeLayer(Plane& plane, const LayerSpec& spec,
                       WaveletBasis wavelet) {
  switch (spec.basis) {
    case LayerBasis::kWavelet:
      return Idwt2D(plane, spec.levels, wavelet);
    case LayerBasis::kWaveletPacket:
      return InverseWaveletPacket2D(plane, spec.levels, wavelet);
    case LayerBasis::kLocalCosine:
      return InverseLocalCosine2D(plane);
  }
  return Status::InvalidArgument("unknown layer basis");
}

Result<Plane> DecodeLayerPayload(const Bytes& payload, const LayerSpec& spec,
                                 int width, int height,
                                 WaveletBasis wavelet) {
  MMCONF_ASSIGN_OR_RETURN(std::vector<int32_t> coefficients,
                          DecodeCoefficients(payload));
  MMCONF_ASSIGN_OR_RETURN(
      Plane plane, Dequantize(coefficients, width, height, spec.quant_step));
  MMCONF_RETURN_IF_ERROR(SynthesizeLayer(plane, spec, wavelet));
  return plane;
}

/// Byte offset where the header ends and payload 0 begins.
Result<size_t> HeaderEnd(const Bytes& stream) {
  ByteReader r(stream);
  MMCONF_RETURN_IF_ERROR(r.GetU32().status());
  MMCONF_RETURN_IF_ERROR(r.GetI32().status());
  MMCONF_RETURN_IF_ERROR(r.GetI32().status());
  MMCONF_RETURN_IF_ERROR(r.GetU8().status());
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    MMCONF_RETURN_IF_ERROR(r.GetU8().status());
    MMCONF_RETURN_IF_ERROR(r.GetU8().status());
    MMCONF_RETURN_IF_ERROR(r.GetF64().status());
    MMCONF_RETURN_IF_ERROR(r.GetVarint().status());
  }
  return r.position();
}

}  // namespace

const char* LayerBasisToString(LayerBasis basis) {
  switch (basis) {
    case LayerBasis::kWavelet:
      return "wavelet";
    case LayerBasis::kWaveletPacket:
      return "wavelet-packet";
    case LayerBasis::kLocalCosine:
      return "local-cosine";
  }
  return "unknown";
}

LayeredCodec::LayeredCodec(CodecOptions options)
    : options_(std::move(options)) {}

Result<Bytes> LayeredCodec::Encode(const media::Image& image) const {
  if (options_.layers.empty()) {
    return Status::InvalidArgument("codec needs at least one layer");
  }
  if (options_.layers.front().basis != LayerBasis::kWavelet) {
    return Status::InvalidArgument(
        "the main approximation layer must use the wavelet basis");
  }
  for (const LayerSpec& spec : options_.layers) {
    if (spec.quant_step <= 0) {
      return Status::InvalidArgument("quantization step must be positive");
    }
    if (spec.basis != LayerBasis::kLocalCosine &&
        spec.levels > MaxDwtLevels(image.width(), image.height())) {
      return Status::InvalidArgument(
          "image " + std::to_string(image.width()) + "x" +
          std::to_string(image.height()) + " cannot support " +
          std::to_string(spec.levels) + " decomposition levels");
    }
    if (spec.basis == LayerBasis::kLocalCosine &&
        (image.width() % kLocalCosineBlock != 0 ||
         image.height() % kLocalCosineBlock != 0)) {
      return Status::InvalidArgument(
          "local-cosine layer needs dimensions divisible by 8");
    }
  }

  Plane residual = PlaneFromImage(image);
  ByteWriter header;
  header.PutU32(kMagic);
  header.PutI32(image.width());
  header.PutI32(image.height());
  header.PutU8(static_cast<uint8_t>(options_.wavelet));
  header.PutVarint(options_.layers.size());
  std::vector<Bytes> payloads;
  for (const LayerSpec& spec : options_.layers) {
    Plane analyzed = residual;
    MMCONF_RETURN_IF_ERROR(AnalyzeLayer(analyzed, spec, options_.wavelet));
    std::vector<int32_t> coefficients = Quantize(analyzed, spec.quant_step);
    payloads.push_back(EncodeCoefficients(coefficients));
    // Reconstruct what the decoder will see and subtract it, so the next
    // layer encodes (and compensates for) this layer's quantization
    // artifacts.
    MMCONF_ASSIGN_OR_RETURN(
        Plane reconstructed,
        Dequantize(coefficients, image.width(), image.height(),
                   spec.quant_step));
    MMCONF_RETURN_IF_ERROR(
        SynthesizeLayer(reconstructed, spec, options_.wavelet));
    for (size_t i = 0; i < residual.data.size(); ++i) {
      residual.data[i] -= reconstructed.data[i];
    }
    header.PutU8(static_cast<uint8_t>(spec.basis));
    header.PutU8(static_cast<uint8_t>(spec.levels));
    header.PutF64(spec.quant_step);
    header.PutVarint(payloads.back().size());
  }
  Bytes out = header.Take();
  for (const Bytes& payload : payloads) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Result<Bytes> LayeredCodec::EncodeToBudget(const media::Image& image,
                                           size_t byte_budget,
                                           int iterations) const {
  // Scale 1.0 = configured quality; larger scale = coarser steps =
  // smaller stream. Find the smallest sufficient scale.
  auto encode_scaled = [&](double scale) -> Result<Bytes> {
    CodecOptions scaled = options_;
    for (LayerSpec& layer : scaled.layers) layer.quant_step *= scale;
    return LayeredCodec(scaled).Encode(image);
  };
  MMCONF_ASSIGN_OR_RETURN(Bytes at_unit, encode_scaled(1.0));
  if (at_unit.size() <= byte_budget) return at_unit;

  double lo = 1.0, hi = 1.0;
  Bytes best;
  // Grow hi until the stream fits (cap the search at 4096x coarser).
  while (hi < 4096.0) {
    hi *= 2.0;
    MMCONF_ASSIGN_OR_RETURN(Bytes attempt, encode_scaled(hi));
    if (attempt.size() <= byte_budget) {
      best = std::move(attempt);
      break;
    }
    lo = hi;
  }
  if (best.empty()) {
    return Status::ResourceExhausted(
        "budget of " + std::to_string(byte_budget) +
        " bytes unreachable even at coarsest quantization");
  }
  for (int i = 0; i < iterations; ++i) {
    double mid = (lo + hi) / 2.0;
    MMCONF_ASSIGN_OR_RETURN(Bytes attempt, encode_scaled(mid));
    if (attempt.size() <= byte_budget) {
      hi = mid;
      best = std::move(attempt);
    } else {
      lo = mid;
    }
  }
  return best;
}

Result<StreamInfo> LayeredCodec::Inspect(const Bytes& stream) {
  ByteReader r(stream);
  MMCONF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMagic) return Status::Corruption("bad layered-codec magic");
  StreamInfo info;
  MMCONF_ASSIGN_OR_RETURN(info.width, r.GetI32());
  MMCONF_ASSIGN_OR_RETURN(info.height, r.GetI32());
  if (info.width <= 0 || info.height <= 0) {
    return Status::Corruption("bad stream dimensions");
  }
  MMCONF_ASSIGN_OR_RETURN(uint8_t wavelet, r.GetU8());
  if (wavelet > 1) return Status::Corruption("bad wavelet basis");
  info.wavelet = static_cast<WaveletBasis>(wavelet);
  MMCONF_ASSIGN_OR_RETURN(uint64_t num_layers, r.GetVarint());
  if (num_layers == 0 || num_layers > 255) {
    return Status::Corruption("bad layer count");
  }
  std::vector<size_t> payload_sizes;
  for (uint64_t i = 0; i < num_layers; ++i) {
    LayerSpec spec;
    MMCONF_ASSIGN_OR_RETURN(uint8_t basis, r.GetU8());
    if (basis > 2) return Status::Corruption("bad layer basis");
    spec.basis = static_cast<LayerBasis>(basis);
    MMCONF_ASSIGN_OR_RETURN(uint8_t levels, r.GetU8());
    spec.levels = levels;
    MMCONF_ASSIGN_OR_RETURN(spec.quant_step, r.GetF64());
    MMCONF_ASSIGN_OR_RETURN(uint64_t payload_size, r.GetVarint());
    info.layers.push_back(spec);
    payload_sizes.push_back(payload_size);
  }
  info.header_bytes = r.position();
  size_t offset = r.position();
  for (size_t size : payload_sizes) {
    offset += size;
    info.layer_end.push_back(offset);
  }
  // A stream shorter than the declared payloads is a valid *prefix* (the
  // progressive-transfer case): the header stays authoritative and
  // Decode guards that requested layers are physically present.
  info.total_bytes = offset;
  return info;
}

Result<media::Image> LayeredCodec::Decode(const Bytes& stream,
                                          int max_layers) {
  MMCONF_ASSIGN_OR_RETURN(StreamInfo info, Inspect(stream));
  size_t use = info.layers.size();
  if (max_layers >= 0) {
    use = std::min(use, static_cast<size_t>(max_layers));
  }
  if (use == 0) {
    return Status::InvalidArgument("must decode at least the base layer");
  }
  Plane sum(info.width, info.height);
  MMCONF_ASSIGN_OR_RETURN(size_t begin, HeaderEnd(stream));
  for (size_t k = 0; k < use; ++k) {
    size_t end = info.layer_end[k];
    if (end > stream.size()) {
      return Status::FailedPrecondition(
          "layer " + std::to_string(k) +
          " is not fully present in this stream prefix");
    }
    Bytes payload(stream.begin() + static_cast<long>(begin),
                  stream.begin() + static_cast<long>(end));
    MMCONF_ASSIGN_OR_RETURN(
        Plane plane, DecodeLayerPayload(payload, info.layers[k], info.width,
                                        info.height, info.wavelet));
    for (size_t i = 0; i < sum.data.size(); ++i) {
      sum.data[i] += plane.data[i];
    }
    begin = end;
  }
  return ImageFromPlane(sum);
}

Result<int> LayeredCodec::LayersWithinBudget(const Bytes& stream,
                                             size_t byte_budget) {
  MMCONF_ASSIGN_OR_RETURN(StreamInfo info, Inspect(stream));
  // A layer counts only when it fits the budget AND is physically
  // present (the stream may itself be a prefix).
  size_t effective = std::min(byte_budget, stream.size());
  int layers = 0;
  for (size_t k = 0; k < info.layer_end.size(); ++k) {
    if (info.layer_end[k] <= effective) layers = static_cast<int>(k) + 1;
  }
  return layers;
}

Result<media::Image> LayeredCodec::DecodePrefix(const Bytes& stream,
                                                size_t byte_budget) {
  MMCONF_ASSIGN_OR_RETURN(int layers, LayersWithinBudget(stream, byte_budget));
  if (layers == 0) {
    return Status::FailedPrecondition(
        "byte budget " + std::to_string(byte_budget) +
        " cannot cover the base layer");
  }
  return Decode(stream, layers);
}

Result<media::Image> LayeredCodec::DecodeThumbnail(const Bytes& stream,
                                                   int scale_log2) {
  MMCONF_ASSIGN_OR_RETURN(StreamInfo info, Inspect(stream));
  const LayerSpec& base = info.layers.front();
  if (scale_log2 < 0 || scale_log2 > base.levels) {
    return Status::InvalidArgument("thumbnail scale must be in [0, " +
                                   std::to_string(base.levels) + "]");
  }
  // Base payload bounds: header end .. layer_end[0].
  if (info.layer_end[0] > stream.size()) {
    return Status::FailedPrecondition(
        "base layer is not fully present in this stream prefix");
  }
  MMCONF_ASSIGN_OR_RETURN(size_t header_end, HeaderEnd(stream));
  Bytes payload(stream.begin() + static_cast<long>(header_end),
                stream.begin() + static_cast<long>(info.layer_end[0]));
  MMCONF_ASSIGN_OR_RETURN(std::vector<int32_t> coefficients,
                          DecodeCoefficients(payload));
  MMCONF_ASSIGN_OR_RETURN(
      Plane analyzed,
      Dequantize(coefficients, info.width, info.height, base.quant_step));
  MMCONF_ASSIGN_OR_RETURN(
      Plane thumb,
      ReconstructAtScale(analyzed, base.levels, scale_log2, info.wavelet));
  return ImageFromPlane(thumb);
}

}  // namespace mmconf::compress
