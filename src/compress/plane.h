#ifndef MMCONF_COMPRESS_PLANE_H_
#define MMCONF_COMPRESS_PLANE_H_

#include <vector>

#include "media/image.h"

namespace mmconf::compress {

/// Row-major plane of doubles — the working representation for all
/// transforms in the codec.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<double> data;

  Plane() = default;
  Plane(int w, int h) : width(w), height(h), data(static_cast<size_t>(w) * h) {}

  double& at(int x, int y) { return data[static_cast<size_t>(y) * width + x]; }
  double at(int x, int y) const {
    return data[static_cast<size_t>(y) * width + x];
  }
};

/// Converts an image's pixel plane (annotations are not included — the
/// codec compresses the scan; overlays travel as vector data).
inline Plane PlaneFromImage(const media::Image& image) {
  Plane plane(image.width(), image.height());
  for (size_t i = 0; i < plane.data.size(); ++i) {
    plane.data[i] = static_cast<double>(image.pixels()[i]);
  }
  return plane;
}

/// Converts back to an image, clamping to [0, 255].
inline media::Image ImageFromPlane(const Plane& plane) {
  media::Image image =
      media::Image::Create(plane.width, plane.height).value();
  for (size_t i = 0; i < plane.data.size(); ++i) {
    double v = plane.data[i];
    image.mutable_pixels()[i] =
        static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v + 0.5));
  }
  return image;
}

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_PLANE_H_
