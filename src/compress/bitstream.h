#ifndef MMCONF_COMPRESS_BITSTREAM_H_
#define MMCONF_COMPRESS_BITSTREAM_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace mmconf::compress {

/// Bit-level writer used by the coefficient coder.
class BitWriter {
 public:
  BitWriter() = default;

  void PutBit(bool bit);
  /// Writes `count` low bits of `value`, most significant first.
  void PutBits(uint32_t value, int count);
  /// Unsigned Exp-Golomb code.
  void PutUExpGolomb(uint32_t value);
  /// Signed Exp-Golomb code (zigzag mapping).
  void PutSExpGolomb(int32_t value);

  /// Flushes partial byte (zero padded) and returns the stream.
  Bytes Finish();

  size_t bit_count() const { return bytes_.size() * 8 + bit_pos_; }

 private:
  Bytes bytes_;
  uint8_t current_ = 0;
  int bit_pos_ = 0;  // bits used in current_
};

/// Bit-level reader; all reads are bounds-checked.
class BitReader {
 public:
  explicit BitReader(const Bytes& bytes) : bytes_(bytes) {}

  Result<bool> GetBit();
  Result<uint32_t> GetBits(int count);
  Result<uint32_t> GetUExpGolomb();
  Result<int32_t> GetSExpGolomb();

  size_t bits_consumed() const { return pos_; }

 private:
  const Bytes& bytes_;
  size_t pos_ = 0;  // bit position
};

/// Encodes a coefficient array with zero-run + Exp-Golomb coding: a run
/// length of zeros (unsigned EG) followed by the next nonzero value
/// (signed EG), terminated by the array length in the header. This is the
/// library's stand-in for the arithmetic coders production codecs use —
/// simple, deterministic, and strictly decodable.
Bytes EncodeCoefficients(const std::vector<int32_t>& coefficients);
Result<std::vector<int32_t>> DecodeCoefficients(const Bytes& bytes);

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_BITSTREAM_H_
