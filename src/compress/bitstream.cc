#include "compress/bitstream.h"

namespace mmconf::compress {

void BitWriter::PutBit(bool bit) {
  current_ = static_cast<uint8_t>((current_ << 1) | (bit ? 1 : 0));
  if (++bit_pos_ == 8) {
    bytes_.push_back(current_);
    current_ = 0;
    bit_pos_ = 0;
  }
}

void BitWriter::PutBits(uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) PutBit((value >> i) & 1);
}

void BitWriter::PutUExpGolomb(uint32_t value) {
  // code(v) = unary(len(v+1)-1) ++ binary(v+1 without leading 1)
  uint64_t v = static_cast<uint64_t>(value) + 1;
  int len = 0;
  for (uint64_t t = v; t > 1; t >>= 1) ++len;
  for (int i = 0; i < len; ++i) PutBit(false);
  PutBit(true);
  for (int i = len - 1; i >= 0; --i) PutBit((v >> i) & 1);
}

void BitWriter::PutSExpGolomb(int32_t value) {
  uint32_t zigzag = value >= 0 ? static_cast<uint32_t>(value) << 1
                               : (static_cast<uint32_t>(-(value + 1)) << 1) | 1;
  PutUExpGolomb(zigzag);
}

Bytes BitWriter::Finish() {
  while (bit_pos_ != 0) PutBit(false);
  return std::move(bytes_);
}

Result<bool> BitReader::GetBit() {
  size_t byte = pos_ >> 3;
  if (byte >= bytes_.size()) {
    return Status::Corruption("bitstream exhausted");
  }
  bool bit = (bytes_[byte] >> (7 - (pos_ & 7))) & 1;
  ++pos_;
  return bit;
}

Result<uint32_t> BitReader::GetBits(int count) {
  uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    MMCONF_ASSIGN_OR_RETURN(bool bit, GetBit());
    value = (value << 1) | (bit ? 1 : 0);
  }
  return value;
}

Result<uint32_t> BitReader::GetUExpGolomb() {
  int zeros = 0;
  while (true) {
    MMCONF_ASSIGN_OR_RETURN(bool bit, GetBit());
    if (bit) break;
    if (++zeros > 32) return Status::Corruption("exp-golomb code too long");
  }
  uint64_t v = 1;
  for (int i = 0; i < zeros; ++i) {
    MMCONF_ASSIGN_OR_RETURN(bool bit, GetBit());
    v = (v << 1) | (bit ? 1 : 0);
  }
  return static_cast<uint32_t>(v - 1);
}

Result<int32_t> BitReader::GetSExpGolomb() {
  MMCONF_ASSIGN_OR_RETURN(uint32_t zigzag, GetUExpGolomb());
  if (zigzag & 1) {
    return -static_cast<int32_t>(zigzag >> 1) - 1;
  }
  return static_cast<int32_t>(zigzag >> 1);
}

Bytes EncodeCoefficients(const std::vector<int32_t>& coefficients) {
  BitWriter w;
  w.PutBits(static_cast<uint32_t>(coefficients.size()), 32);
  size_t i = 0;
  while (i < coefficients.size()) {
    uint32_t run = 0;
    while (i < coefficients.size() && coefficients[i] == 0) {
      ++run;
      ++i;
    }
    w.PutUExpGolomb(run);
    if (i < coefficients.size()) {
      // Nonzero value, biased away from zero since zero is run-coded.
      int32_t v = coefficients[i++];
      w.PutSExpGolomb(v > 0 ? v - 1 : v + 1);
      w.PutBit(v > 0);
    }
  }
  return w.Finish();
}

Result<std::vector<int32_t>> DecodeCoefficients(const Bytes& bytes) {
  BitReader r(bytes);
  MMCONF_ASSIGN_OR_RETURN(uint32_t n, r.GetBits(32));
  std::vector<int32_t> out;
  out.reserve(n);
  while (out.size() < n) {
    MMCONF_ASSIGN_OR_RETURN(uint32_t run, r.GetUExpGolomb());
    if (run > n - out.size()) return Status::Corruption("zero run overflow");
    out.insert(out.end(), run, 0);
    if (out.size() == n) break;
    MMCONF_ASSIGN_OR_RETURN(int32_t biased, r.GetSExpGolomb());
    MMCONF_ASSIGN_OR_RETURN(bool positive, r.GetBit());
    out.push_back(positive ? biased + 1 : biased - 1);
  }
  return out;
}

}  // namespace mmconf::compress
