#ifndef MMCONF_COMPRESS_LAYERED_CODEC_H_
#define MMCONF_COMPRESS_LAYERED_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "compress/wavelet.h"
#include "media/image.h"

namespace mmconf::compress {

/// Basis family used by one layer of the hybrid codec.
enum class LayerBasis : uint8_t {
  kWavelet = 0,        ///< Mallat pyramid (base layer)
  kWaveletPacket = 1,  ///< uniform packet decomposition (residuals)
  kLocalCosine = 2,    ///< blockwise DCT (residuals)
};

const char* LayerBasisToString(LayerBasis basis);

/// One layer of the multi-layered representation: the basis in which the
/// (residual) signal is analyzed, its decomposition depth, and the
/// quantization step. Smaller steps on later layers mean each residual
/// layer refines the previous approximation.
struct LayerSpec {
  LayerBasis basis = LayerBasis::kWavelet;
  int levels = 4;           ///< DWT levels / packet depth; ignored by LCT
  double quant_step = 8.0;
};

/// Codec configuration. The paper's scheme (Meyer-Averbuch-Coifman): "a
/// wavelet compression algorithm encodes the main approximation of the
/// image, and a wavelet packet or local cosine compression algorithm
/// encodes the sequence of compression residuals."
struct CodecOptions {
  WaveletBasis wavelet = WaveletBasis::kDaub4;
  std::vector<LayerSpec> layers = {
      {LayerBasis::kWavelet, 4, 16.0},
      {LayerBasis::kWaveletPacket, 2, 8.0},
      {LayerBasis::kLocalCosine, 0, 4.0},
  };
};

/// Parsed header of an encoded stream, exposing per-layer boundaries so
/// callers can plan progressive (prefix) delivery.
struct StreamInfo {
  int width = 0;
  int height = 0;
  WaveletBasis wavelet = WaveletBasis::kDaub4;
  std::vector<LayerSpec> layers;
  /// Byte offset where each layer's payload ends (cumulative, including
  /// the header). `layer_end[k]` bytes of the stream suffice to decode
  /// layers 0..k.
  std::vector<size_t> layer_end;
  /// Size of the stream header (payload 0 begins here).
  size_t header_bytes = 0;
  size_t total_bytes = 0;
};

/// Multi-layered hybrid image codec.
class LayeredCodec {
 public:
  explicit LayeredCodec(CodecOptions options = {});

  /// Encodes `image` (pixel plane only). The first layer must be
  /// kWavelet; at least one layer is required. Image dimensions must
  /// support every layer's decomposition depth (and be multiples of 8
  /// when a local-cosine layer is present).
  Result<Bytes> Encode(const media::Image& image) const;

  /// Rate control: scales every configured quantization step by a common
  /// factor, binary-searched over `iterations` refinements, to produce
  /// the highest-quality stream that fits `byte_budget`. Use when the
  /// interaction server knows a client's buffer or per-transfer byte
  /// allowance up front (Section 4.4's measurable-parameter case).
  /// ResourceExhausted if even very coarse quantization overshoots.
  Result<Bytes> EncodeToBudget(const media::Image& image,
                               size_t byte_budget,
                               int iterations = 8) const;

  /// Parses the stream header.
  static Result<StreamInfo> Inspect(const Bytes& stream);

  /// Decodes using the first `max_layers` layers (all layers if
  /// max_layers < 0 or exceeds the stream's layer count).
  static Result<media::Image> Decode(const Bytes& stream,
                                     int max_layers = -1);

  /// Decodes using every layer that *fully* fits within `byte_budget`
  /// bytes of the stream — the progressive-transfer entry point used by
  /// the interaction server to adapt quality to each client's bandwidth.
  /// FailedPrecondition if even the header + base layer do not fit.
  static Result<media::Image> DecodePrefix(const Bytes& stream,
                                           size_t byte_budget);

  /// Number of layers that fully fit in `byte_budget` bytes.
  static Result<int> LayersWithinBudget(const Bytes& stream,
                                        size_t byte_budget);

  /// Decodes a reduced-resolution approximation from the base layer only:
  /// the result is (width/2^scale_log2 x height/2^scale_log2).
  /// scale_log2 must not exceed the base layer's level count.
  static Result<media::Image> DecodeThumbnail(const Bytes& stream,
                                              int scale_log2);

  const CodecOptions& options() const { return options_; }

 private:
  CodecOptions options_;
};

}  // namespace mmconf::compress

#endif  // MMCONF_COMPRESS_LAYERED_CODEC_H_
