#ifndef MMCONF_COMMON_RNG_H_
#define MMCONF_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mmconf {

/// Deterministic pseudo-random generator (xoshiro256**). All stochastic
/// parts of the library (synthetic media, workload generators, EM
/// initialization) take an explicit `Rng` so experiments are reproducible
/// bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0;
};

}  // namespace mmconf

#endif  // MMCONF_COMMON_RNG_H_
