#include "common/bytes.h"

#include <array>
#include <cstdlib>
#include <cstring>

namespace mmconf {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  PutRaw(b.data(), b.size());
}

void ByteWriter::PutRaw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Status ByteReader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  MMCONF_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  MMCONF_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  MMCONF_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  MMCONF_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<int32_t> ByteReader::GetI32() {
  MMCONF_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> ByteReader::GetI64() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<float> ByteReader::GetF32() {
  MMCONF_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> ByteReader::GetF64() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    MMCONF_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
    if (shift >= 64) return Status::Corruption("varint overflow");
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<std::string> ByteReader::GetString() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  MMCONF_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> ByteReader::GetBytes() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  MMCONF_RETURN_IF_ERROR(Need(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

namespace {

using CrcTables = std::array<std::array<uint32_t, 256>, 8>;

/// tables[0] is the classic byte-at-a-time table; tables[k] maps a byte
/// k positions deeper into the window for slicing-by-8.
CrcTables MakeCrcTables() {
  CrcTables tables{};
  const uint32_t poly = 0x82f63b78;  // Castagnoli, reflected.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xff] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

const CrcTables& GetCrcTables() {
  static const CrcTables tables = MakeCrcTables();
  return tables;
}

uint32_t Crc32cTable(const uint8_t* data, size_t n, uint32_t seed) {
  const CrcTables& t = GetCrcTables();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) c = t[0][(c ^ data[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

uint32_t Crc32cSlice8(const uint8_t* data, size_t n, uint32_t seed) {
  const CrcTables& t = GetCrcTables();
  uint32_t c = seed ^ 0xffffffffu;
  const uint8_t* p = data;
  // Eight bytes per iteration: fold the running CRC into the first
  // little-endian word, then look every byte up in its own table. The
  // byte-assembled loads compile to plain 32-bit loads on little-endian
  // targets while staying endian-correct everywhere.
  while (n >= 8) {
    uint32_t lo = static_cast<uint32_t>(p[0]) |
                  static_cast<uint32_t>(p[1]) << 8 |
                  static_cast<uint32_t>(p[2]) << 16 |
                  static_cast<uint32_t>(p[3]) << 24;
    uint32_t hi = static_cast<uint32_t>(p[4]) |
                  static_cast<uint32_t>(p[5]) << 8 |
                  static_cast<uint32_t>(p[6]) << 16 |
                  static_cast<uint32_t>(p[7]) << 24;
    lo ^= c;
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
        t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n) c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(MMCONF_FORCE_SCALAR)
#define MMCONF_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const uint8_t* data, size_t n, uint32_t seed) {
  uint64_t c = seed ^ 0xffffffffu;
  const uint8_t* p = data;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  if (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c32 = __builtin_ia32_crc32si(c32, v);
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    uint16_t v;
    std::memcpy(&v, p, 2);
    c32 = __builtin_ia32_crc32hi(c32, v);
    p += 2;
    n -= 2;
  }
  if (n >= 1) c32 = __builtin_ia32_crc32qi(c32, *p);
  return c32 ^ 0xffffffffu;
}

bool HardwareCrcAvailable() { return __builtin_cpu_supports("sse4.2"); }

#endif  // MMCONF_CRC32C_HW

using CrcFn = uint32_t (*)(const uint8_t*, size_t, uint32_t);

struct CrcDispatch {
  CrcFn fn;
  Crc32cImpl impl;
};

/// kAuto resolves to the fastest available engine; kHardware resolves to
/// {nullptr} when this build/CPU cannot run it.
CrcDispatch ResolveCrc(Crc32cImpl impl) {
  switch (impl) {
    case Crc32cImpl::kTable:
      return {Crc32cTable, Crc32cImpl::kTable};
    case Crc32cImpl::kSlice8:
      return {Crc32cSlice8, Crc32cImpl::kSlice8};
    case Crc32cImpl::kHardware:
#ifdef MMCONF_CRC32C_HW
      if (HardwareCrcAvailable()) {
        return {Crc32cHardware, Crc32cImpl::kHardware};
      }
#endif
      return {nullptr, Crc32cImpl::kHardware};
    case Crc32cImpl::kAuto:
      break;
  }
#ifdef MMCONF_CRC32C_HW
  if (HardwareCrcAvailable()) {
    return {Crc32cHardware, Crc32cImpl::kHardware};
  }
#endif
  return {Crc32cSlice8, Crc32cImpl::kSlice8};
}

/// First-use engine choice: the MMCONF_CRC32C environment variable
/// ("table", "slice8", "hardware") overrides auto-detection — for A/B
/// timing and for pinning the portable engine when triaging a machine.
/// Unknown values and unavailable engines fall back to kAuto.
CrcDispatch InitialCrcDispatch() {
  const char* requested = std::getenv("MMCONF_CRC32C");
  if (requested != nullptr) {
    Crc32cImpl impl = Crc32cImpl::kAuto;
    if (std::strcmp(requested, "table") == 0) impl = Crc32cImpl::kTable;
    if (std::strcmp(requested, "slice8") == 0) impl = Crc32cImpl::kSlice8;
    if (std::strcmp(requested, "hardware") == 0) {
      impl = Crc32cImpl::kHardware;
    }
    CrcDispatch resolved = ResolveCrc(impl);
    if (resolved.fn != nullptr) return resolved;
  }
  return ResolveCrc(Crc32cImpl::kAuto);
}

CrcDispatch& GlobalCrcDispatch() {
  static CrcDispatch dispatch = InitialCrcDispatch();
  return dispatch;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed) {
  return GlobalCrcDispatch().fn(data, n, seed);
}

bool SetCrc32cImpl(Crc32cImpl impl) {
  CrcDispatch resolved = ResolveCrc(impl);
  if (resolved.fn == nullptr) return false;
  GlobalCrcDispatch() = resolved;
  return true;
}

Crc32cImpl ActiveCrc32cImpl() { return GlobalCrcDispatch().impl; }

}  // namespace mmconf
