#include "common/bytes.h"

#include <array>

namespace mmconf {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  PutRaw(b.data(), b.size());
}

void ByteWriter::PutRaw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Status ByteReader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  MMCONF_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  MMCONF_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  MMCONF_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  MMCONF_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<int32_t> ByteReader::GetI32() {
  MMCONF_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> ByteReader::GetI64() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<float> ByteReader::GetF32() {
  MMCONF_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> ByteReader::GetF64() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    MMCONF_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
    if (shift >= 64) return Status::Corruption("varint overflow");
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<std::string> ByteReader::GetString() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  MMCONF_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> ByteReader::GetBytes() {
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  MMCONF_RETURN_IF_ERROR(Need(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  const uint32_t poly = 0x82f63b78;  // Castagnoli, reflected.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace mmconf
