#ifndef MMCONF_COMMON_CLOCK_H_
#define MMCONF_COMMON_CLOCK_H_

#include <cstdint>

namespace mmconf {

/// Microseconds of simulated time.
using MicrosT = int64_t;

/// Virtual clock driving the network simulator and the interaction server.
/// Time only moves when the simulation advances it, so tests and benches
/// observe identical timings on every run.
class Clock {
 public:
  Clock() = default;

  MicrosT NowMicros() const { return now_; }
  double NowSeconds() const { return static_cast<double>(now_) * 1e-6; }

  /// Moves time forward. `delta` must be non-negative.
  void AdvanceMicros(MicrosT delta) {
    if (delta > 0) now_ += delta;
  }

  /// Jumps to an absolute timestamp not before the current one.
  void AdvanceTo(MicrosT t) {
    if (t > now_) now_ = t;
  }

 private:
  MicrosT now_ = 0;
};

}  // namespace mmconf

#endif  // MMCONF_COMMON_CLOCK_H_
