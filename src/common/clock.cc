#include "common/clock.h"

// Clock is header-only; this translation unit exists so the target has a
// stable archive member for the common library.
namespace mmconf {}  // namespace mmconf
