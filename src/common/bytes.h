#ifndef MMCONF_COMMON_BYTES_H_
#define MMCONF_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mmconf {

/// Owned byte payload. BLOBs, encoded images, and network message bodies
/// are all `Bytes`.
using Bytes = std::vector<uint8_t>;

/// Appends primitive values to a byte buffer in little-endian order.
/// Companion to `ByteReader`; together they define the library's on-disk
/// and on-wire record encoding.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Varint length prefix followed by raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const Bytes& b);
  void PutRaw(const void* data, size_t n);

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitive values written by `ByteWriter`. All reads are
/// bounds-checked and return `Status::Corruption` on truncated input.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int32_t> GetI32();
  Result<int64_t> GetI64();
  Result<float> GetF32();
  Result<double> GetF64();
  Result<uint64_t> GetVarint();
  Result<std::string> GetString();
  Result<Bytes> GetBytes();

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC32 (Castagnoli polynomial) used for WAL frames, BLOB page
/// checksums, reliable-transport verification, and corruption detection
/// tests. Dispatches at runtime to the fastest implementation the CPU
/// offers (see Crc32cImpl); every implementation computes the identical
/// checksum, so stored and on-wire values stay valid regardless of which
/// one produced them.
uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32c(const Bytes& b) { return Crc32c(b.data(), b.size()); }

/// Selectable Crc32c engine. All engines produce byte-identical
/// checksums; the choice only trades speed.
enum class Crc32cImpl {
  kAuto,      ///< kHardware when the CPU supports SSE4.2, else kSlice8
  kTable,     ///< byte-at-a-time single-table software (the oracle)
  kSlice8,    ///< slicing-by-8: eight parallel table lookups per 8 bytes
  kHardware,  ///< SSE4.2 crc32 instruction (x86-64, runtime-detected)
};

/// Repoints Crc32c() at `impl`. Returns false — leaving the current
/// selection unchanged — when the requested engine is unavailable
/// (kHardware without SSE4.2 support, or in a forced-scalar build). Not
/// synchronized: call during startup or single-threaded tests. The
/// initial selection honors the MMCONF_CRC32C environment variable
/// ("table", "slice8", "hardware") before falling back to kAuto.
bool SetCrc32cImpl(Crc32cImpl impl);
/// The engine Crc32c() currently dispatches to (never kAuto).
Crc32cImpl ActiveCrc32cImpl();

}  // namespace mmconf

#endif  // MMCONF_COMMON_BYTES_H_
