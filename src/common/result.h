#ifndef MMCONF_COMMON_RESULT_H_
#define MMCONF_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mmconf {

/// A value-or-error holder, the Arrow/RocksDB idiom for fallible functions
/// that produce a value. A `Result<T>` is either OK and holds a `T`, or
/// holds a non-OK `Status`.
///
/// Usage:
///   Result<Image> img = DecodeImage(bytes);
///   if (!img.ok()) return img.status();
///   Use(img.value());
///
/// or with the macro:
///   MMCONF_ASSIGN_OR_RETURN(Image img, DecodeImage(bytes));
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs an error result. `status` must not be OK. Intentionally
  /// implicit so functions can `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status; `Status::OK()` when a value is held.
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// By value (moved out) on rvalue Results, so patterns like
  /// `for (auto& x : Fn().value())` bind to a real object rather than a
  /// reference into the dead temporary.
  T value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;  // OK iff value_ holds.
  std::optional<T> value_;
};

}  // namespace mmconf

#define MMCONF_RESULT_CONCAT_INNER_(a, b) a##b
#define MMCONF_RESULT_CONCAT_(a, b) MMCONF_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define MMCONF_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  MMCONF_ASSIGN_OR_RETURN_IMPL_(                                       \
      MMCONF_RESULT_CONCAT_(_mmconf_result_, __LINE__), lhs, rexpr)

#define MMCONF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // MMCONF_COMMON_RESULT_H_
