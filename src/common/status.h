#ifndef MMCONF_COMMON_STATUS_H_
#define MMCONF_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mmconf {

/// Error category for a failed operation. Mirrors the coarse error classes
/// used across the library (storage, network, preference model, media).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. `mmconf` library code does not
/// throw exceptions; every fallible API returns a `Status` or a
/// `Result<T>` (see result.h).
///
/// The OK status is represented without allocation; error statuses carry a
/// code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" for OK statuses, otherwise "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mmconf

/// Propagates a non-OK status to the caller.
#define MMCONF_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::mmconf::Status _mmconf_status = (expr);        \
    if (!_mmconf_status.ok()) return _mmconf_status; \
  } while (0)

#endif  // MMCONF_COMMON_STATUS_H_
