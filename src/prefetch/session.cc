#include "prefetch/session.h"

#include <algorithm>

namespace mmconf::prefetch {

using cpnet::Assignment;
using cpnet::VarId;

PrefetchSession::PrefetchSession(const doc::MultimediaDocument* document,
                                 net::Network* network,
                                 net::NodeId server_node,
                                 net::NodeId client_node, Options options)
    : document_(document),
      network_(network),
      server_node_(server_node),
      client_node_(client_node),
      predictor_(document),
      cache_(options.buffer_bytes, options.policy),
      prefetch_batch_bytes_(options.prefetch_batch_bytes) {}

Result<MicrosT> PrefetchSession::OnConfiguration(const Assignment& next) {
  if (next.size() != document_->num_variables() || !next.IsComplete()) {
    return Status::InvalidArgument(
        "configuration must be a full assignment");
  }
  MicrosT delivered = network_->clock()->NowMicros();
  // 1. On-demand phase: everything newly visible (or changed form) is
  // requested; misses occupy the wire.
  for (size_t i = 0; i < document_->num_components(); ++i) {
    const doc::MultimediaComponent* component = document_->components()[i];
    if (component->IsComposite()) continue;
    VarId var = static_cast<VarId>(i);
    if (has_current_ && current_.Get(var) == next.Get(var)) continue;
    MMCONF_ASSIGN_OR_RETURN(bool visible,
                            document_->IsVisible(next, component->name()));
    if (!visible) continue;
    MMCONF_ASSIGN_OR_RETURN(
        doc::MMPresentation presentation,
        document_->PresentationFor(next, component->name()));
    if (presentation.kind == doc::PresentationKind::kHidden) continue;
    size_t cost = doc::PresentationCostBytes(
        presentation, component->AsPrimitive()->content().content_bytes);
    std::string key = CacheKey(component->name(), presentation.name);
    if (!cache_.Lookup(key)) {
      MMCONF_ASSIGN_OR_RETURN(
          MicrosT arrival,
          network_->Send(server_node_, client_node_, cost,
                         "on-demand:" + key));
      delivered = std::max(delivered, arrival);
      on_demand_bytes_ += cost;
      cache_.Insert(key, cost, 0.0).ok();
    }
  }
  current_ = next;
  has_current_ = true;
  // 2. Prefetch phase (preference policy): ship the predictor's plan in
  // the background; the wire serializes it after the on-demand traffic.
  if (cache_.policy() == CachePolicy::kPreference) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<PrefetchCandidate> ranked,
                            predictor_.RankCandidates(next));
    size_t budget =
        std::min(cache_.capacity_bytes(), prefetch_batch_bytes_);
    for (const PrefetchCandidate& candidate :
         PlanWithinBudget(std::move(ranked), budget)) {
      std::string key =
          CacheKey(candidate.component, candidate.presentation);
      if (cache_.Contains(key)) continue;
      MMCONF_RETURN_IF_ERROR(
          network_
              ->Send(server_node_, client_node_, candidate.cost_bytes,
                     "prefetch:" + key)
              .status());
      prefetched_bytes_ += candidate.cost_bytes;
      cache_.Insert(key, candidate.cost_bytes, candidate.score).ok();
    }
  }
  return delivered;
}

}  // namespace mmconf::prefetch
