#ifndef MMCONF_PREFETCH_SESSION_H_
#define MMCONF_PREFETCH_SESSION_H_

#include <string>

#include "common/result.h"
#include "cpnet/assignment.h"
#include "doc/document.h"
#include "net/network.h"
#include "prefetch/cache.h"
#include "prefetch/predictor.h"

namespace mmconf::prefetch {

/// One client's Section 4.4 delivery loop, assembled from the predictor,
/// the byte-bounded buffer, and the simulated downlink: on every shared
/// reconfiguration the session requests the newly visible presentations
/// (buffer hits are free; misses ride the wire), then — under the
/// preference policy — refills the buffer with the predictor's plan
/// using idle bandwidth ("we download components most likely to be
/// requested by the user, using the user's buffer as a cache").
class PrefetchSession {
 public:
  struct Options {
    size_t buffer_bytes = 1 << 20;
    CachePolicy policy = CachePolicy::kPreference;
    /// Per-update cap on background prefetch traffic. Prefetch shares
    /// the downlink with on-demand transfers (FIFO wire), so an
    /// unbounded plan would queue ahead of the user's *next* request;
    /// bounding each batch to roughly (think time x bandwidth) keeps
    /// prefetch inside the idle gaps — "using the user's buffer as a
    /// cache" without taxing the foreground.
    size_t prefetch_batch_bytes = 256 << 10;
  };

  /// `document` must be finalized; `network` needs a server->client
  /// link. All pointers must outlive the session.
  PrefetchSession(const doc::MultimediaDocument* document,
                  net::Network* network, net::NodeId server_node,
                  net::NodeId client_node, Options options);

  /// Applies a configuration change: requests every presentation that
  /// became visible (or changed form), counting buffer hits/misses and
  /// scheduling misses on the downlink; then prefetches the predictor's
  /// plan into the buffer. Returns the timestamp at which the on-demand
  /// portion of the view is fully delivered (the user-visible response
  /// time; prefetch traffic is scheduled after it).
  Result<MicrosT> OnConfiguration(const cpnet::Assignment& next);

  const CacheStats& stats() const { return cache_.stats(); }
  size_t bytes_fetched_on_demand() const { return on_demand_bytes_; }
  size_t bytes_prefetched() const { return prefetched_bytes_; }
  const cpnet::Assignment& current() const { return current_; }

  /// Forwards to the buffer (`prefetch.cache.*`) and the predictor
  /// (`prefetch.rank.*`). May be null to detach; must outlive the
  /// session.
  void SetObserver(obs::MetricsRegistry* metrics) {
    cache_.SetObserver(metrics);
    predictor_.SetObserver(metrics);
  }

 private:
  const doc::MultimediaDocument* document_;
  net::Network* network_;
  net::NodeId server_node_;
  net::NodeId client_node_;
  PrefetchPredictor predictor_;
  ClientCache cache_;
  cpnet::Assignment current_;
  size_t prefetch_batch_bytes_;
  bool has_current_ = false;
  size_t on_demand_bytes_ = 0;
  size_t prefetched_bytes_ = 0;
};

}  // namespace mmconf::prefetch

#endif  // MMCONF_PREFETCH_SESSION_H_
