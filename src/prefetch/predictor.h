#ifndef MMCONF_PREFETCH_PREDICTOR_H_
#define MMCONF_PREFETCH_PREDICTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cpnet/assignment.h"
#include "doc/document.h"
#include "obs/metrics.h"

namespace mmconf::prefetch {

/// A (component, presentation) pair worth having in the client's buffer,
/// with its predicted usefulness and delivery cost.
struct PrefetchCandidate {
  std::string component;
  std::string presentation;
  double score = 0;       ///< higher = more likely to be needed next
  size_t cost_bytes = 0;  ///< bytes to deliver this presentation
};

/// Preference-based prediction of likely components (the paper's Section
/// 4.4 / [12] "Predicting Likely Components in CP-net based Multimedia
/// Systems"): "we download components most likely to be requested by the
/// user, using the user's buffer as a cache."
///
/// Model: the viewer's next action is an explicit choice (component c
/// pinned to value v). The author's CPT rankings act as the prior — a
/// choice of a highly-ranked presentation (given the current
/// configuration's parent values) is more likely than a poorly-ranked
/// one. For each hypothetical next choice, the optimal completion
/// determines what becomes visible; every visible primitive presentation
/// accumulates the choice's prior weight. The accumulated weight ranks
/// prefetch candidates.
class PrefetchPredictor {
 public:
  /// `document` must be finalized and outlive the predictor.
  explicit PrefetchPredictor(const doc::MultimediaDocument* document)
      : document_(document) {}

  /// Ranks candidates given the current shared configuration. Items the
  /// current configuration already shows are excluded (the client holds
  /// them). Returns candidates sorted by descending score.
  ///
  /// Hot path: one unconstrained optimum is computed up front, each
  /// hypothetical choice re-sweeps only the chosen variable's descendant
  /// cone (CpNet::RecompleteInto into a reused scratch assignment),
  /// visibility is answered by one bulk pass per completion, and weights
  /// accumulate in a dense (variable, value)-indexed table resolved to
  /// names once at the end. Produces byte-identical output to
  /// RankCandidatesBaseline.
  Result<std::vector<PrefetchCandidate>> RankCandidates(
      const cpnet::Assignment& current) const;

  /// The straightforward reference implementation (full optimal
  /// completion and per-component string queries per hypothetical
  /// choice). Kept as the equivalence oracle for RankCandidates and as
  /// the "before" leg of the prefetch benchmarks.
  Result<std::vector<PrefetchCandidate>> RankCandidatesBaseline(
      const cpnet::Assignment& current) const;

  /// Publishes ranking work into `prefetch.rank.*`: a call counter and a
  /// candidates-per-call histogram (a deterministic work proxy — wall
  /// time would break seed-for-seed metric reproducibility). May be null
  /// to detach; must outlive the predictor.
  void SetObserver(obs::MetricsRegistry* metrics);

 private:
  const doc::MultimediaDocument* document_;
  /// Mutable: RankCandidates is logically const; observation is not a
  /// semantic mutation.
  mutable obs::Counter* m_rank_calls_ = nullptr;
  mutable obs::Histogram* m_rank_candidates_ = nullptr;
};

/// Greedy plan: the highest-score candidates that fit a byte budget
/// (knapsack-by-rank, the natural policy when scores are likelihoods and
/// the buffer drains in rank order). Zero-cost candidates are skipped —
/// there is nothing to deliver, and admitting them would make plans for
/// tied budgets depend on incidental rank order.
std::vector<PrefetchCandidate> PlanWithinBudget(
    std::vector<PrefetchCandidate> ranked, size_t budget_bytes);

}  // namespace mmconf::prefetch

#endif  // MMCONF_PREFETCH_PREDICTOR_H_
