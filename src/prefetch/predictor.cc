#include "prefetch/predictor.h"

#include <algorithm>
#include <map>

namespace mmconf::prefetch {

using cpnet::Assignment;
using cpnet::ValueId;
using cpnet::VarId;

Result<std::vector<PrefetchCandidate>> PrefetchPredictor::RankCandidates(
    const Assignment& current) const {
  const doc::MultimediaDocument& document = *document_;
  const cpnet::CpNet& net = document.net();
  if (current.size() != net.num_variables() || !current.IsComplete()) {
    return Status::InvalidArgument(
        "current configuration must be a full assignment");
  }
  // Accumulated weight per (component, presentation-name).
  std::map<std::pair<std::string, std::string>, double> weights;

  for (size_t i = 0; i < document.num_components(); ++i) {
    VarId var = static_cast<VarId>(i);
    // Prior over the viewer's next choice on this component: the
    // author's ranking given the *current* parent values (position decay
    // 1, 1/2, 1/3, ...).
    size_t row;
    {
      std::vector<ValueId> parent_values;
      for (VarId parent : net.Parents(var)) {
        parent_values.push_back(current.Get(parent));
      }
      MMCONF_ASSIGN_OR_RETURN(row, net.CptOf(var).RowIndex(parent_values));
    }
    MMCONF_ASSIGN_OR_RETURN(cpnet::PreferenceRanking ranking,
                            net.CptOf(var).Ranking(row));
    for (size_t position = 0; position < ranking.size(); ++position) {
      ValueId value = ranking[position];
      if (value == current.Get(var)) continue;  // Already displayed.
      double choice_weight = 1.0 / static_cast<double>(position + 1);
      // Hypothetical next choice: pin this component to `value`.
      Assignment evidence(net.num_variables());
      evidence.Set(var, value);
      MMCONF_ASSIGN_OR_RETURN(Assignment completion,
                              net.OptimalCompletion(evidence));
      // Everything visible under the completion but not under the
      // current configuration is a prefetch candidate.
      for (size_t j = 0; j < document.num_components(); ++j) {
        const doc::MultimediaComponent* target = document.components()[j];
        if (target->IsComposite()) continue;
        VarId target_var = static_cast<VarId>(j);
        MMCONF_ASSIGN_OR_RETURN(bool visible,
                                document.IsVisible(completion,
                                                   target->name()));
        if (!visible) continue;
        bool already_shown =
            completion.Get(target_var) == current.Get(target_var);
        if (already_shown) {
          MMCONF_ASSIGN_OR_RETURN(
              bool currently_visible,
              document.IsVisible(current, target->name()));
          if (currently_visible) continue;  // Client already has it.
        }
        MMCONF_ASSIGN_OR_RETURN(
            doc::MMPresentation presentation,
            document.PresentationFor(completion, target->name()));
        if (presentation.kind == doc::PresentationKind::kHidden) continue;
        weights[{target->name(), presentation.name}] += choice_weight;
      }
    }
  }

  std::vector<PrefetchCandidate> candidates;
  candidates.reserve(weights.size());
  for (const auto& [key, score] : weights) {
    PrefetchCandidate candidate;
    candidate.component = key.first;
    candidate.presentation = key.second;
    candidate.score = score;
    MMCONF_ASSIGN_OR_RETURN(const doc::MultimediaComponent* component,
                            document.Find(key.first));
    const doc::PrimitiveMultimediaComponent* primitive =
        component->AsPrimitive();
    // Find the presentation option by name for the cost model.
    for (const doc::MMPresentation& option : primitive->presentations()) {
      if (option.name == key.second) {
        candidate.cost_bytes = doc::PresentationCostBytes(
            option, primitive->content().content_bytes);
        break;
      }
    }
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PrefetchCandidate& a, const PrefetchCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.component != b.component) return a.component < b.component;
              return a.presentation < b.presentation;
            });
  return candidates;
}

std::vector<PrefetchCandidate> PlanWithinBudget(
    std::vector<PrefetchCandidate> ranked, size_t budget_bytes) {
  std::vector<PrefetchCandidate> plan;
  size_t used = 0;
  for (PrefetchCandidate& candidate : ranked) {
    if (used + candidate.cost_bytes > budget_bytes) continue;
    used += candidate.cost_bytes;
    plan.push_back(std::move(candidate));
  }
  return plan;
}

}  // namespace mmconf::prefetch
