#include "prefetch/predictor.h"

#include <algorithm>
#include <map>

namespace mmconf::prefetch {

using cpnet::Assignment;
using cpnet::ValueId;
using cpnet::VarId;

namespace {

/// Shared final ordering: score descending, then (component,
/// presentation) ascending. The comparator is a total order over the
/// distinct keys, so both implementations converge to the same sequence
/// no matter how the candidates were collected.
void SortCandidates(std::vector<PrefetchCandidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const PrefetchCandidate& a, const PrefetchCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.component != b.component) return a.component < b.component;
              return a.presentation < b.presentation;
            });
}

}  // namespace

void PrefetchPredictor::SetObserver(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    m_rank_calls_ = metrics->GetCounter("prefetch.rank.calls");
    m_rank_candidates_ = metrics->GetHistogram("prefetch.rank.candidates",
                                               {4, 16, 64, 256, 1024});
  } else {
    m_rank_calls_ = nullptr;
    m_rank_candidates_ = nullptr;
  }
  // The ranking hot loop is RecompleteInto on the document's CP-net;
  // surface its per-phase counters (cpnet.recomplete.*) alongside the
  // predictor's own.
  if (document_ != nullptr) document_->net().SetObserver(metrics);
}

Result<std::vector<PrefetchCandidate>> PrefetchPredictor::RankCandidates(
    const Assignment& current) const {
  const doc::MultimediaDocument& document = *document_;
  const cpnet::CpNet& net = document.net();
  if (current.size() != net.num_variables() || !current.IsComplete()) {
    return Status::InvalidArgument(
        "current configuration must be a full assignment");
  }
  const size_t num_components = document.num_components();

  // Resolve each component to its primitive form once (composites map to
  // nullptr); every inner-loop query below is then a plain index.
  std::vector<const doc::PrimitiveMultimediaComponent*> primitives(
      num_components);
  for (size_t j = 0; j < num_components; ++j) {
    primitives[j] = document.ComponentAt(static_cast<VarId>(j))->AsPrimitive();
  }

  // Dense weight table over (component variable, domain value):
  // offsets[j] is component j's base slot. Accumulation happens in the
  // same outer (variable, rank position) order as the baseline's map, so
  // the floating-point sums come out bit-identical.
  std::vector<size_t> offsets(num_components + 1, 0);
  for (size_t j = 0; j < num_components; ++j) {
    offsets[j + 1] =
        offsets[j] + static_cast<size_t>(net.DomainSize(static_cast<VarId>(j)));
  }
  std::vector<double> weights(offsets[num_components], 0.0);

  // All hypothetical single-choice completions share the unconstrained
  // optimum as their base: pinning one variable only re-sweeps its
  // descendant cone.
  MMCONF_ASSIGN_OR_RETURN(Assignment base,
                          net.OptimalCompletion(Assignment(
                              net.num_variables())));

  std::vector<char> current_visible;
  MMCONF_RETURN_IF_ERROR(document.ComputeVisibility(current,
                                                    &current_visible));

  Assignment completion(net.num_variables());  // reused scratch
  std::vector<char> visible;                   // reused scratch

  for (size_t i = 0; i < num_components; ++i) {
    VarId var = static_cast<VarId>(i);
    // Prior over the viewer's next choice on this component: the
    // author's ranking given the *current* parent values (position decay
    // 1, 1/2, 1/3, ...).
    MMCONF_ASSIGN_OR_RETURN(size_t row, net.RowFor(var, current));
    const cpnet::PreferenceRanking* ranking =
        net.CptOf(var).RankingOrNull(row);
    if (ranking == nullptr) {
      return net.CptOf(var).Ranking(row).status();  // cold: same error
    }
    for (size_t position = 0; position < ranking->size(); ++position) {
      ValueId value = (*ranking)[position];
      if (value == current.Get(var)) continue;  // Already displayed.
      double choice_weight = 1.0 / static_cast<double>(position + 1);
      // Hypothetical next choice: pin this component to `value` and
      // re-sweep only its descendant cone over the shared base optimum.
      MMCONF_RETURN_IF_ERROR(
          net.RecompleteInto(base, var, value, &completion));
      MMCONF_RETURN_IF_ERROR(document.ComputeVisibility(completion,
                                                        &visible));
      // Everything visible under the completion but not under the
      // current configuration is a prefetch candidate.
      for (size_t j = 0; j < num_components; ++j) {
        const doc::PrimitiveMultimediaComponent* primitive = primitives[j];
        if (primitive == nullptr) continue;
        if (!visible[j]) continue;
        VarId target_var = static_cast<VarId>(j);
        ValueId completed = completion.Get(target_var);
        if (completed == current.Get(target_var) && current_visible[j]) {
          continue;  // Client already has it.
        }
        const doc::MMPresentation& presentation =
            primitive->presentations()[static_cast<size_t>(completed)];
        if (presentation.kind == doc::PresentationKind::kHidden) continue;
        weights[offsets[j] + static_cast<size_t>(completed)] +=
            choice_weight;
      }
    }
  }

  // Resolve touched slots to names once, at the end. Slots only ever
  // receive strictly positive weight, so zero means untouched.
  std::vector<PrefetchCandidate> candidates;
  for (size_t j = 0; j < num_components; ++j) {
    const doc::PrimitiveMultimediaComponent* primitive = primitives[j];
    if (primitive == nullptr) continue;
    const std::vector<doc::MMPresentation>& options =
        primitive->presentations();
    for (size_t v = 0; v < options.size(); ++v) {
      double score = weights[offsets[j] + v];
      if (score <= 0.0) continue;
      PrefetchCandidate candidate;
      candidate.component = primitive->name();
      candidate.presentation = options[v].name;
      candidate.score = score;
      candidate.cost_bytes = doc::PresentationCostBytes(
          options[v], primitive->content().content_bytes);
      candidates.push_back(std::move(candidate));
    }
  }
  SortCandidates(&candidates);
  if (m_rank_calls_ != nullptr) {
    m_rank_calls_->Add();
    m_rank_candidates_->Observe(static_cast<int64_t>(candidates.size()));
  }
  return candidates;
}

Result<std::vector<PrefetchCandidate>>
PrefetchPredictor::RankCandidatesBaseline(const Assignment& current) const {
  const doc::MultimediaDocument& document = *document_;
  const cpnet::CpNet& net = document.net();
  if (current.size() != net.num_variables() || !current.IsComplete()) {
    return Status::InvalidArgument(
        "current configuration must be a full assignment");
  }
  // Accumulated weight per (component, presentation-name).
  std::map<std::pair<std::string, std::string>, double> weights;

  for (size_t i = 0; i < document.num_components(); ++i) {
    VarId var = static_cast<VarId>(i);
    // Prior over the viewer's next choice on this component: the
    // author's ranking given the *current* parent values (position decay
    // 1, 1/2, 1/3, ...).
    size_t row;
    {
      std::vector<ValueId> parent_values;
      for (VarId parent : net.Parents(var)) {
        parent_values.push_back(current.Get(parent));
      }
      MMCONF_ASSIGN_OR_RETURN(row, net.CptOf(var).RowIndex(parent_values));
    }
    MMCONF_ASSIGN_OR_RETURN(cpnet::PreferenceRanking ranking,
                            net.CptOf(var).Ranking(row));
    for (size_t position = 0; position < ranking.size(); ++position) {
      ValueId value = ranking[position];
      if (value == current.Get(var)) continue;  // Already displayed.
      double choice_weight = 1.0 / static_cast<double>(position + 1);
      // Hypothetical next choice: pin this component to `value`.
      Assignment evidence(net.num_variables());
      evidence.Set(var, value);
      MMCONF_ASSIGN_OR_RETURN(Assignment completion,
                              net.OptimalCompletion(evidence));
      // Everything visible under the completion but not under the
      // current configuration is a prefetch candidate.
      for (size_t j = 0; j < document.num_components(); ++j) {
        const doc::MultimediaComponent* target = document.components()[j];
        if (target->IsComposite()) continue;
        VarId target_var = static_cast<VarId>(j);
        MMCONF_ASSIGN_OR_RETURN(bool visible,
                                document.IsVisible(completion,
                                                   target->name()));
        if (!visible) continue;
        bool already_shown =
            completion.Get(target_var) == current.Get(target_var);
        if (already_shown) {
          MMCONF_ASSIGN_OR_RETURN(
              bool currently_visible,
              document.IsVisible(current, target->name()));
          if (currently_visible) continue;  // Client already has it.
        }
        MMCONF_ASSIGN_OR_RETURN(
            doc::MMPresentation presentation,
            document.PresentationFor(completion, target->name()));
        if (presentation.kind == doc::PresentationKind::kHidden) continue;
        weights[{target->name(), presentation.name}] += choice_weight;
      }
    }
  }

  std::vector<PrefetchCandidate> candidates;
  candidates.reserve(weights.size());
  for (const auto& [key, score] : weights) {
    PrefetchCandidate candidate;
    candidate.component = key.first;
    candidate.presentation = key.second;
    candidate.score = score;
    MMCONF_ASSIGN_OR_RETURN(const doc::MultimediaComponent* component,
                            document.Find(key.first));
    const doc::PrimitiveMultimediaComponent* primitive =
        component->AsPrimitive();
    // Find the presentation option by name for the cost model.
    bool priced = false;
    for (const doc::MMPresentation& option : primitive->presentations()) {
      if (option.name == key.second) {
        candidate.cost_bytes = doc::PresentationCostBytes(
            option, primitive->content().content_bytes);
        priced = true;
        break;
      }
    }
    if (!priced) {
      return Status::Internal("component \"" + key.first +
                              "\" has no presentation named \"" +
                              key.second + "\"");
    }
    candidates.push_back(std::move(candidate));
  }
  SortCandidates(&candidates);
  return candidates;
}

std::vector<PrefetchCandidate> PlanWithinBudget(
    std::vector<PrefetchCandidate> ranked, size_t budget_bytes) {
  std::vector<PrefetchCandidate> plan;
  size_t used = 0;
  for (PrefetchCandidate& candidate : ranked) {
    // Nothing to deliver: admitting free candidates would let rank-order
    // noise decide plans, so they are dropped outright.
    if (candidate.cost_bytes == 0) continue;
    if (used + candidate.cost_bytes > budget_bytes) continue;
    used += candidate.cost_bytes;
    plan.push_back(std::move(candidate));
  }
  return plan;
}

}  // namespace mmconf::prefetch
