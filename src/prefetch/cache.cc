#include "prefetch/cache.h"

#include <algorithm>

namespace mmconf::prefetch {

const char* CachePolicyToString(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kPreference:
      return "preference";
  }
  return "unknown";
}

std::string CacheKey(const std::string& component,
                     const std::string& presentation) {
  return component + "/" + presentation;
}

void ClientCache::SetObserver(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    m_hits_ = metrics->GetCounter("prefetch.cache.hits");
    m_misses_ = metrics->GetCounter("prefetch.cache.misses");
    m_evictions_ = metrics->GetCounter("prefetch.cache.evictions");
    m_insertions_ = metrics->GetCounter("prefetch.cache.insertions");
  } else {
    m_hits_ = nullptr;
    m_misses_ = nullptr;
    m_evictions_ = nullptr;
    m_insertions_ = nullptr;
  }
}

bool ClientCache::Lookup(const std::string& key) {
  if (policy_ == CachePolicy::kNone) {
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->Add();
    return false;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->Add();
    return false;
  }
  ++stats_.hits;
  if (m_hits_ != nullptr) m_hits_->Add();
  lru_.erase(it->second.lru_position);
  lru_.push_front(key);
  it->second.lru_position = lru_.begin();
  return true;
}

void ClientCache::Evict() {
  if (entries_.empty()) return;
  std::string victim;
  if (policy_ == CachePolicy::kPreference) {
    // Lowest score goes first; ties broken by LRU order (back of list).
    // Walk from the back so the least recently used candidate is seen
    // first and survives score ties.
    double worst = 0;
    bool first = true;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& entry = entries_.find(*it)->second;
      if (first || entry.score < worst) {
        worst = entry.score;
        victim = *it;
        first = false;
      }
    }
  } else {
    victim = lru_.back();
  }
  auto it = entries_.find(victim);
  used_ -= it->second.bytes;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
  ++stats_.evictions;
  if (m_evictions_ != nullptr) m_evictions_->Add();
}

Status ClientCache::Insert(const std::string& key, size_t bytes,
                           double score) {
  if (policy_ == CachePolicy::kNone) return Status::OK();
  if (bytes > capacity_) {
    return Status::ResourceExhausted("entry of " + std::to_string(bytes) +
                                     " bytes exceeds cache capacity " +
                                     std::to_string(capacity_));
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_ -= it->second.bytes;
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
  }
  while (used_ + bytes > capacity_) Evict();
  lru_.push_front(key);
  entries_.emplace(key, Entry{bytes, score, lru_.begin()});
  used_ += bytes;
  ++stats_.insertions;
  if (m_insertions_ != nullptr) m_insertions_->Add();
  return Status::OK();
}

}  // namespace mmconf::prefetch
