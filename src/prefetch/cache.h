#ifndef MMCONF_PREFETCH_CACHE_H_
#define MMCONF_PREFETCH_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace mmconf::prefetch {

/// Replacement policy of the client's limited buffer (Section 4.4: "the
/// limited buffer size and communication bandwidth prevent" downloading
/// the whole document; "we download components most likely to be
/// requested by the user, using the user's buffer as a cache").
enum class CachePolicy : uint8_t {
  kNone = 0,     ///< no caching at all (baseline: every request misses)
  kLru,          ///< least-recently-used eviction (baseline)
  kPreference,   ///< evict the lowest prediction score first (the paper's
                 ///< preference-based policy)
};

const char* CachePolicyToString(CachePolicy policy);

/// Hit/miss counters.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t insertions = 0;
  double HitRate() const {
    size_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0;
  }
};

/// Byte-bounded client buffer keyed by "component/presentation". Lookup
/// records a hit or miss; Insert evicts per policy until the entry fits.
/// Entries larger than the whole capacity are rejected (ResourceExhausted)
/// and counted as an insertion failure, not an eviction storm.
class ClientCache {
 public:
  ClientCache(size_t capacity_bytes, CachePolicy policy)
      : capacity_(capacity_bytes), policy_(policy) {}

  CachePolicy policy() const { return policy_; }
  size_t capacity_bytes() const { return capacity_; }
  size_t used_bytes() const { return used_; }
  size_t entry_count() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }

  /// Mirrors hit/miss/evict/insert counts into `prefetch.cache.*`
  /// counters of `metrics` (may be null to detach; must outlive the
  /// cache). Handles are cached, so Lookup/Insert stay allocation-free.
  void SetObserver(obs::MetricsRegistry* metrics);

  /// True (and counted as hit) when the key is buffered. kNone always
  /// misses.
  bool Lookup(const std::string& key);

  /// Buffers an entry of `bytes` with prediction `score` (used by the
  /// preference policy). kNone ignores inserts. Replaces an existing
  /// entry's score/size in place.
  Status Insert(const std::string& key, size_t bytes, double score);

  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }

 private:
  struct Entry {
    size_t bytes = 0;
    double score = 0;
    std::list<std::string>::iterator lru_position;
  };

  void Evict();

  size_t capacity_;
  CachePolicy policy_;
  size_t used_ = 0;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  CacheStats stats_;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_insertions_ = nullptr;
};

/// Canonical cache key for a component presentation.
std::string CacheKey(const std::string& component,
                     const std::string& presentation);

}  // namespace mmconf::prefetch

#endif  // MMCONF_PREFETCH_CACHE_H_
