#include "stream/rate.h"

#include <algorithm>
#include <cmath>

namespace mmconf::stream {

TokenBucket::TokenBucket(double rate_bytes_per_sec, size_t burst_bytes)
    : rate_(std::max(rate_bytes_per_sec, 1.0)),
      burst_(std::max(static_cast<double>(burst_bytes), 1.0)),
      tokens_(burst_) {}

void TokenBucket::Refill(MicrosT now) {
  if (now <= last_refill_) return;
  double elapsed_s = static_cast<double>(now - last_refill_) * 1e-6;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_refill_ = now;
}

void TokenBucket::SetRate(double rate_bytes_per_sec) {
  rate_ = std::max(rate_bytes_per_sec, 1.0);
}

MicrosT TokenBucket::WhenAvailable(size_t bytes, MicrosT now) const {
  double need = std::min(static_cast<double>(bytes), burst_);
  if (tokens_ >= need) return now;
  double wait_s = (need - tokens_) / rate_;
  return now + static_cast<MicrosT>(std::ceil(wait_s * 1e6));
}

AckRateEstimator::AckRateEstimator(double initial_bytes_per_sec, double alpha)
    : estimate_(std::max(initial_bytes_per_sec, 1.0)),
      alpha_(std::clamp(alpha, 0.01, 1.0)) {}

void AckRateEstimator::OnAck(size_t bytes, MicrosT sent_at,
                             MicrosT acked_at) {
  (void)sent_at;  // RTT is latency-dominated; spacing carries the signal.
  if (!has_last_) {
    // Opens the first interval; these bytes arrived *at* its start and
    // belong to no interval.
    has_last_ = true;
    last_ack_at_ = acked_at;
    return;
  }
  if (acked_at <= last_ack_at_) {
    pending_bytes_ += bytes;  // same-instant ack batch, fold into interval
    return;
  }
  double interval_s = static_cast<double>(acked_at - last_ack_at_) * 1e-6;
  double sample = static_cast<double>(pending_bytes_ + bytes) / interval_s;
  last_ack_at_ = acked_at;
  pending_bytes_ = 0;
  estimate_ = samples_ == 0 ? sample
                            : (1.0 - alpha_) * estimate_ + alpha_ * sample;
  ++samples_;
}

}  // namespace mmconf::stream
