#include "stream/chunker.h"

#include <algorithm>

#include "compress/layered_codec.h"

namespace mmconf::stream {

Chunker::Chunker(size_t max_chunk_bytes)
    : max_chunk_bytes_(max_chunk_bytes < 64 ? 64 : max_chunk_bytes) {}

Result<ObjectPlan> Chunker::Plan(const Bytes& encoded, StreamId stream,
                                 uint32_t object_index, uint32_t first_seq,
                                 MicrosT deadline) const {
  MMCONF_ASSIGN_OR_RETURN(compress::StreamInfo info,
                          compress::LayeredCodec::Inspect(encoded));
  if (info.total_bytes > encoded.size()) {
    return Status::InvalidArgument(
        "cannot stream a truncated object: header declares " +
        std::to_string(info.total_bytes) + " bytes, got " +
        std::to_string(encoded.size()));
  }
  ObjectPlan plan;
  plan.num_layers = static_cast<int>(info.layers.size());
  plan.total_bytes = info.total_bytes;
  uint32_t seq = first_seq;
  size_t begin = 0;  // the header is billed to the base layer
  for (size_t k = 0; k < info.layer_end.size(); ++k) {
    size_t end = info.layer_end[k];
    plan.layer_bytes.push_back(end - begin);
    size_t offset = begin;
    while (offset < end) {
      Chunk chunk;
      chunk.stream = stream;
      chunk.seq = seq++;
      chunk.object_index = object_index;
      chunk.layer = static_cast<int>(k);
      chunk.offset = offset;
      chunk.bytes = std::min(max_chunk_bytes_, end - offset);
      chunk.deadline = deadline;
      chunk.base = (k == 0);
      offset += chunk.bytes;
      chunk.last_of_layer = (offset == end);
      plan.chunks.push_back(chunk);
    }
    begin = end;
  }
  return plan;
}

}  // namespace mmconf::stream
