#ifndef MMCONF_STREAM_SCHEDULER_H_
#define MMCONF_STREAM_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/chunk.h"
#include "stream/chunker.h"
#include "stream/playout.h"
#include "stream/rate.h"

namespace mmconf::stream {

/// Per-stream knobs. Deadlines are absolute virtual time: object k is
/// due at `start_deadline_micros + k * interval_micros`.
struct StreamOptions {
  MicrosT start_deadline_micros = 0;
  MicrosT interval_micros = 100000;
  size_t chunk_bytes = 8 << 10;
  /// Client playout-buffer budget; enhancement admission pauses when the
  /// buffer would overfill (base chunks always pass — continuity over
  /// quality). The interaction server derives this from the client's
  /// prefetch cache headroom when one is attached.
  size_t playout_buffer_bytes = 512 << 10;
  /// Seed for the rate estimate; 0 = read the link spec.
  double initial_rate_bytes_per_sec = 0;
  /// Safety margin subtracted from deadlines in the drop decision.
  MicrosT drop_slack_micros = 0;
};

/// Delivery accounting of one stream.
struct StreamStats {
  StreamId id = 0;
  net::NodeId client = 0;
  size_t chunks_total = 0;
  size_t chunks_sent = 0;
  size_t chunks_acked = 0;
  size_t chunks_failed = 0;
  /// Enhancement chunks never sent because their layer was dropped.
  size_t enhancement_chunks_dropped = 0;
  /// (object, layer) pairs the scheduler chose to drop.
  size_t layers_dropped = 0;
  size_t bytes_sent = 0;
  double estimated_rate_bytes_per_sec = 0;
  bool aborted = false;   ///< a base chunk exhausted its retry budget
  bool finished = false;  ///< every chunk resolved and every object played
  PlayoutStats playout;
};

/// Portable position of a live stream, for carrying it across
/// interaction nodes (room migration, src/federation/). The export is
/// cut at an object boundary: the first object with an unsent chunk and
/// everything after it moves, re-streamed in full by the importing node
/// (a partially shipped object restarts from its base layer rather than
/// resuming mid-layer — the playout buffer on the far side is rebuilt
/// from scratch). Already-played objects never move.
struct StreamCarryover {
  StreamId id = 0;
  net::NodeId client = 0;
  StreamOptions options;
  /// Chunks of the remaining objects: seqs re-based to 0 (the scheduler
  /// indexes chunks by seq), object indices re-based to 0, deadlines
  /// still absolute (ImportStream applies the shift).
  std::vector<Chunk> chunks;
  /// Per remaining object: absolute playout deadline and layer count.
  std::vector<MicrosT> object_deadlines;
  std::vector<int> layer_counts;
  /// Cumulative counters from the exporting node; playout restarts.
  StreamStats stats;
};

/// Per-room earliest-deadline-first delivery scheduler for layered media
/// streams over the reliable transport.
///
/// Admission (Pump) walks each client's streams and repeatedly sends the
/// pending chunk with the earliest deadline, paced by a per-client token
/// bucket whose rate follows an EWMA of observed ack timings. Before an
/// *enhancement* chunk is sent, its estimated completion time (queued
/// bytes / estimated rate) is checked against its deadline — and against
/// the earliest pending base chunk's deadline, so refinements never
/// starve the next object's base. A doomed enhancement layer is dropped
/// for that object (together with the layers above it, which would be
/// undecodable anyway) instead of blowing the deadline; base layers are
/// never dropped, they are late at worst (a stall, counted by the
/// playout buffer).
class StreamScheduler {
 public:
  /// `transport` must outlive the scheduler; `server_node` is the
  /// sending side of every stream.
  StreamScheduler(net::ReliableTransport* transport, net::NodeId server_node);

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  /// Opens a stream of encoded layered objects (each a complete
  /// compress::LayeredCodec bitstream) toward `client`. The caller
  /// supplies the server-wide unique id.
  Result<StreamId> Open(StreamId id, net::NodeId client,
                        const std::vector<Bytes>& objects,
                        const StreamOptions& options);

  Status Close(StreamId id);
  bool Owns(StreamId id) const { return streams_.count(id) > 0; }
  size_t num_streams() const { return streams_.size(); }

  /// Snapshots the stream's position for migration (see StreamCarryover).
  /// FailedPrecondition while chunks are in flight — drain the transport
  /// and ObserveAcks first. The stream stays open; Close it once the
  /// importing side has adopted the carryover.
  Result<StreamCarryover> ExportStream(StreamId id) const;

  /// Re-creates a migrated stream from a carryover. Every deadline is
  /// shifted by `deadline_shift` (>= 0): the importing node rebases
  /// deadlines the migration outage has already blown rather than
  /// stalling the whole tail. AlreadyExists if the id is taken here.
  Status ImportStream(const StreamCarryover& carry, MicrosT deadline_shift);

  /// Folds acked/failed chunk messages into rate estimates and stream
  /// accounting. Call before Pump once the transport has been advanced.
  void ObserveAcks();

  /// Plays due objects and admits due chunks (EDF); returns chunks sent.
  size_t Pump(MicrosT now);

  /// Routes one application-level delivery from the transport; true when
  /// it was consumed as a chunk of one of this scheduler's streams.
  bool OnDelivery(const net::Delivery& delivery);

  /// Earliest strictly-future time this scheduler wants to act (token
  /// refill or a playout event); -1 when only wire arrivals can unblock
  /// it (or it is idle).
  MicrosT NextActionAt(MicrosT now) const;

  /// True when every stream has finished (or aborted).
  bool Idle() const;

  Result<StreamStats> StatsFor(StreamId id) const;
  std::vector<StreamStats> AllStats() const;
  Result<const PlayoutBuffer*> Playout(StreamId id) const;

  /// Publishes delivery decisions into the obs layer: `stream.*`
  /// counters (chunks sent/acked/failed, shed layers), the token-bucket
  /// wait and stall histograms, per-stream trace lanes (tid
  /// "stream:<id>" under the server pid) with drop-layer instants and
  /// stall spans. Attaches to streams already open as well as streams
  /// opened later. Either pointer may be null; both must outlive the
  /// scheduler.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  struct StreamState {
    StreamId id = 0;
    net::NodeId client = 0;
    int tid = 0;  ///< trace lane under the server pid; 0 = untraced
    StreamOptions options;
    std::vector<Chunk> chunks;  ///< chunk index == chunk seq
    size_t next_chunk = 0;
    /// Per object: first dropped layer, -1 = none.
    std::vector<int> dropped_from;
    /// Per object: total layer count (for drop accounting).
    std::vector<int> layer_counts;
    size_t outstanding = 0;  ///< chunks sent, not yet acked or failed
    std::unique_ptr<PlayoutBuffer> playout;
    StreamStats stats;
  };

  struct SentChunk {
    StreamId stream = 0;
    uint32_t seq = 0;
    size_t bytes = 0;
    bool base = false;
    MicrosT sent_at = 0;
  };

  struct ClientState {
    TokenBucket bucket{1e6, 16 << 10};
    AckRateEstimator estimator{1e6};
    size_t inflight_bytes = 0;
    MicrosT latency_micros = 0;  ///< one-way link latency, from the spec
    std::map<net::MsgId, SentChunk> outstanding;
    size_t streams = 0;  ///< open streams toward this client
  };

  /// Skips chunks of dropped layers; returns the head pending chunk
  /// index or SIZE_MAX when the stream has nothing left to send.
  size_t HeadChunk(StreamState& stream);
  /// True when queueing `extra_bytes` ahead of the client's pending base
  /// chunks still lets every one of them meet its deadline at `rate`
  /// (EDF feasibility of the bases — the invariant the enhancement
  /// admission gate must preserve).
  bool BasesStillFeasible(net::NodeId client, const ClientState& state,
                          size_t extra_bytes, MicrosT now, double rate,
                          MicrosT slack) const;
  /// Drops `chunk`'s layer (and the layers above it) for its object.
  void DropLayer(StreamState& stream, const Chunk& chunk);
  void AbortStream(StreamState& stream);
  void RefreshFinished(StreamState& stream);
  double RateFor(const ClientState& client) const;
  /// Gives `stream` its trace lane and stall-span callback (no-op
  /// without a tracer).
  void AttachStreamObs(StreamState& stream);

  net::ReliableTransport* transport_;
  net::NodeId server_node_;
  std::map<StreamId, StreamState> streams_;
  std::map<net::NodeId, ClientState> clients_;
  /// Observability (null = not instrumented); handles cached by
  /// SetObserver so Pump/ObserveAcks pay plain increments only.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_chunks_sent_ = nullptr;
  obs::Counter* m_chunks_acked_ = nullptr;
  obs::Counter* m_chunks_failed_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_enh_dropped_ = nullptr;
  obs::Counter* m_layers_dropped_ = nullptr;
  obs::Counter* m_stalls_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Histogram* m_token_wait_ = nullptr;
  obs::Histogram* m_stall_micros_ = nullptr;
};

}  // namespace mmconf::stream

#endif  // MMCONF_STREAM_SCHEDULER_H_
