#include "stream/chunk.h"

namespace mmconf::stream {

namespace {
constexpr char kPrefix[] = "sc:";
}  // namespace

std::string ChunkTag(StreamId stream, uint32_t seq) {
  return kPrefix + std::to_string(stream) + ":" + std::to_string(seq);
}

bool ParseChunkTag(const std::string& tag, StreamId* stream, uint32_t* seq) {
  if (tag.rfind(kPrefix, 0) != 0) return false;
  size_t offset = sizeof(kPrefix) - 1;
  size_t colon = tag.find(':', offset);
  if (colon == std::string::npos || colon == offset ||
      colon + 1 >= tag.size()) {
    return false;
  }
  uint64_t stream_value = 0;
  for (size_t i = offset; i < colon; ++i) {
    char c = tag[i];
    if (c < '0' || c > '9') return false;
    stream_value = stream_value * 10 + static_cast<uint64_t>(c - '0');
  }
  uint64_t seq_value = 0;
  for (size_t i = colon + 1; i < tag.size(); ++i) {
    char c = tag[i];
    if (c < '0' || c > '9') return false;
    seq_value = seq_value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (seq_value > 0xffffffffull) return false;
  *stream = stream_value;
  *seq = static_cast<uint32_t>(seq_value);
  return true;
}

}  // namespace mmconf::stream
