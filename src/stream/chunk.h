#ifndef MMCONF_STREAM_CHUNK_H_
#define MMCONF_STREAM_CHUNK_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace mmconf::stream {

/// Identifier of a media stream opened on the interaction server. Ids
/// are issued from one counter per server so tags stay unambiguous even
/// when several rooms stream concurrently over the same transport.
using StreamId = uint64_t;

/// One deadline-tagged slice of an encoded layered object. Chunks are
/// cut on layer boundaries (a chunk never spans two layers), so dropping
/// a chunk under congestion discards exactly one layer's refinement —
/// never a byte the base approximation needs.
struct Chunk {
  StreamId stream = 0;
  uint32_t seq = 0;          ///< per-stream sequence, monotone send order
  uint32_t object_index = 0; ///< which object of the stream this refines
  int layer = 0;             ///< layer the bytes belong to (0 = base)
  size_t offset = 0;         ///< byte offset within the encoded object
  size_t bytes = 0;          ///< wire size of this slice
  bool last_of_layer = false;
  MicrosT deadline = 0;      ///< playout deadline of the object
  /// Base chunks carry the stream header + main approximation; the
  /// scheduler may delay but never drop them.
  bool base = false;
};

/// Wire tag of a chunk message: "sc:<stream>:<seq>". The reliable
/// transport prepends its own framing; this is the application tag that
/// comes back out of ReliableTransport::AdvanceTo.
std::string ChunkTag(StreamId stream, uint32_t seq);

/// Parses a chunk tag; returns false for any other traffic.
bool ParseChunkTag(const std::string& tag, StreamId* stream, uint32_t* seq);

}  // namespace mmconf::stream

#endif  // MMCONF_STREAM_CHUNK_H_
