#include "stream/scheduler.h"

#include <algorithm>
#include <set>

namespace mmconf::stream {

namespace {
constexpr size_t kNoChunk = static_cast<size_t>(-1);
}  // namespace

StreamScheduler::StreamScheduler(net::ReliableTransport* transport,
                                 net::NodeId server_node)
    : transport_(transport), server_node_(server_node) {}

void StreamScheduler::SetObserver(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    m_chunks_sent_ = metrics->GetCounter("stream.chunks.sent");
    m_chunks_acked_ = metrics->GetCounter("stream.chunks.acked");
    m_chunks_failed_ = metrics->GetCounter("stream.chunks.failed");
    m_bytes_sent_ = metrics->GetCounter("stream.bytes.sent");
    m_enh_dropped_ = metrics->GetCounter("stream.chunks.enhancement_dropped");
    m_layers_dropped_ = metrics->GetCounter("stream.layers.dropped");
    m_stalls_ = metrics->GetCounter("stream.stalls");
    m_aborts_ = metrics->GetCounter("stream.aborts");
    m_token_wait_ = metrics->GetHistogram(
        "stream.token_wait_micros",
        {1000, 5000, 10000, 50000, 100000, 500000});
    m_stall_micros_ = metrics->GetHistogram(
        "stream.stall_micros",
        {10000, 50000, 100000, 250000, 500000, 1000000, 5000000});
  } else {
    m_chunks_sent_ = nullptr;
    m_chunks_acked_ = nullptr;
    m_chunks_failed_ = nullptr;
    m_bytes_sent_ = nullptr;
    m_enh_dropped_ = nullptr;
    m_layers_dropped_ = nullptr;
    m_stalls_ = nullptr;
    m_aborts_ = nullptr;
    m_token_wait_ = nullptr;
    m_stall_micros_ = nullptr;
  }
  for (auto& [id, stream] : streams_) AttachStreamObs(stream);
}

void StreamScheduler::AttachStreamObs(StreamState& stream) {
  if (tracer_ != nullptr) {
    stream.tid = tracer_->Tid(server_node_,
                              "stream:" + std::to_string(stream.id));
  }
  // The callback re-reads this scheduler's observer pointers at stall
  // time, so attaching it unconditionally keeps later SetObserver calls
  // effective for already-open streams.
  StreamScheduler* self = this;
  int tid = stream.tid;
  stream.playout->SetStallCallback(
      [self, tid](MicrosT deadline, MicrosT played_at) {
        if (self->m_stalls_ != nullptr) {
          self->m_stalls_->Add();
          self->m_stall_micros_->Observe(played_at - deadline);
        }
        if (self->tracer_ != nullptr) {
          self->tracer_->Span(self->server_node_, tid, "stall", "stream",
                              deadline, played_at, "stall_micros",
                              played_at - deadline);
        }
      });
}

Result<StreamId> StreamScheduler::Open(StreamId id, net::NodeId client,
                                       const std::vector<Bytes>& objects,
                                       const StreamOptions& options) {
  if (objects.empty()) {
    return Status::InvalidArgument("a stream needs at least one object");
  }
  if (options.interval_micros <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (streams_.count(id) > 0) {
    return Status::AlreadyExists("stream " + std::to_string(id) +
                                 " already open");
  }
  double initial_rate = options.initial_rate_bytes_per_sec;
  MicrosT latency = 0;
  Result<net::LinkSpec> link =
      transport_->network()->GetLink(server_node_, client);
  if (link.ok()) latency = link->latency_micros;
  if (initial_rate <= 0) {
    MMCONF_RETURN_IF_ERROR(link.status());
    initial_rate = link->bandwidth_bytes_per_sec;
  }
  MicrosT start = options.start_deadline_micros;
  if (start <= 0) {
    start = transport_->network()->clock()->NowMicros() +
            options.interval_micros;
  }

  StreamState state;
  state.id = id;
  state.client = client;
  state.options = options;
  state.options.start_deadline_micros = start;
  state.playout =
      std::make_unique<PlayoutBuffer>(options.playout_buffer_bytes);
  Chunker chunker(options.chunk_bytes);
  uint32_t seq = 0;
  for (size_t k = 0; k < objects.size(); ++k) {
    MicrosT deadline =
        start + static_cast<MicrosT>(k) * options.interval_micros;
    MMCONF_ASSIGN_OR_RETURN(
        ObjectPlan plan,
        chunker.Plan(objects[k], id, static_cast<uint32_t>(k), seq,
                     deadline));
    MMCONF_RETURN_IF_ERROR(state.playout->ExpectObject(
        static_cast<uint32_t>(k), deadline, plan.layer_bytes));
    seq += static_cast<uint32_t>(plan.chunks.size());
    state.chunks.insert(state.chunks.end(), plan.chunks.begin(),
                        plan.chunks.end());
    state.layer_counts.push_back(plan.num_layers);
  }
  state.dropped_from.assign(objects.size(), -1);
  state.stats.id = id;
  state.stats.client = client;
  state.stats.chunks_total = state.chunks.size();

  ClientState& client_state = clients_[client];
  if (client_state.streams == 0 && client_state.outstanding.empty()) {
    size_t burst = std::max<size_t>(2 * options.chunk_bytes, 16 << 10);
    client_state.bucket = TokenBucket(initial_rate, burst);
    client_state.estimator = AckRateEstimator(initial_rate);
  }
  client_state.latency_micros = latency;
  ++client_state.streams;
  auto emplaced = streams_.emplace(id, std::move(state));
  AttachStreamObs(emplaced.first->second);
  return id;
}

Status StreamScheduler::Close(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  auto client_it = clients_.find(it->second.client);
  if (client_it != clients_.end()) {
    --client_it->second.streams;
    if (client_it->second.streams == 0 &&
        client_it->second.outstanding.empty()) {
      clients_.erase(client_it);
    }
  }
  streams_.erase(it);
  return Status::OK();
}

Result<StreamCarryover> StreamScheduler::ExportStream(StreamId id) const {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  const StreamState& stream = it->second;
  if (stream.outstanding > 0) {
    return Status::FailedPrecondition(
        "stream " + std::to_string(id) + " has " +
        std::to_string(stream.outstanding) +
        " chunks in flight; drain the transport and ObserveAcks first");
  }
  StreamCarryover carry;
  carry.id = stream.id;
  carry.client = stream.client;
  carry.options = stream.options;
  carry.stats = stream.stats;
  carry.stats.playout = stream.playout->stats();
  if (stream.stats.aborted || stream.next_chunk >= stream.chunks.size()) {
    return carry;  // nothing left to send: counters only
  }
  // Cut at the object boundary of the first unsent chunk; that object
  // restarts from its base on the importing node.
  const uint32_t resume = stream.chunks[stream.next_chunk].object_index;
  uint32_t seq = 0;
  for (const Chunk& chunk : stream.chunks) {
    if (chunk.object_index < resume) continue;
    Chunk moved = chunk;
    moved.seq = seq++;
    moved.object_index = chunk.object_index - resume;
    carry.chunks.push_back(moved);
  }
  for (size_t k = resume; k < stream.layer_counts.size(); ++k) {
    carry.layer_counts.push_back(stream.layer_counts[k]);
    carry.object_deadlines.push_back(
        stream.options.start_deadline_micros +
        static_cast<MicrosT>(k) * stream.options.interval_micros);
  }
  return carry;
}

Status StreamScheduler::ImportStream(const StreamCarryover& carry,
                                     MicrosT deadline_shift) {
  if (streams_.count(carry.id) > 0) {
    return Status::AlreadyExists("stream " + std::to_string(carry.id) +
                                 " already open here");
  }
  if (deadline_shift < 0) {
    return Status::InvalidArgument("deadline shift must be >= 0");
  }
  if (carry.object_deadlines.size() != carry.layer_counts.size()) {
    return Status::InvalidArgument("malformed carryover: deadline/layer "
                                   "vectors disagree");
  }
  StreamState state;
  state.id = carry.id;
  state.client = carry.client;
  state.options = carry.options;
  state.options.start_deadline_micros += deadline_shift;
  state.chunks = carry.chunks;
  // Rebuild the playout expectations from chunk metadata: the per-layer
  // byte totals are exactly the sums the Chunker cut them from.
  std::vector<std::vector<size_t>> layer_bytes(carry.layer_counts.size());
  for (size_t k = 0; k < carry.layer_counts.size(); ++k) {
    layer_bytes[k].assign(
        static_cast<size_t>(std::max(carry.layer_counts[k], 1)), 0);
  }
  for (Chunk& chunk : state.chunks) {
    chunk.stream = carry.id;
    chunk.deadline += deadline_shift;
    if (chunk.object_index >= layer_bytes.size() ||
        static_cast<size_t>(chunk.layer) >=
            layer_bytes[chunk.object_index].size()) {
      return Status::InvalidArgument("malformed carryover: chunk outside "
                                     "its object's layer plan");
    }
    layer_bytes[chunk.object_index][static_cast<size_t>(chunk.layer)] +=
        chunk.bytes;
  }
  state.playout =
      std::make_unique<PlayoutBuffer>(carry.options.playout_buffer_bytes);
  for (size_t k = 0; k < carry.object_deadlines.size(); ++k) {
    MMCONF_RETURN_IF_ERROR(state.playout->ExpectObject(
        static_cast<uint32_t>(k), carry.object_deadlines[k] + deadline_shift,
        layer_bytes[k]));
  }
  state.layer_counts = carry.layer_counts;
  state.dropped_from.assign(carry.layer_counts.size(), -1);
  state.stats = carry.stats;
  state.stats.playout = PlayoutStats{};  // playout restarts here
  state.stats.finished = false;
  state.stats.client = carry.client;

  ClientState& client_state = clients_[carry.client];
  if (client_state.streams == 0 && client_state.outstanding.empty()) {
    double rate = carry.stats.estimated_rate_bytes_per_sec;
    if (rate <= 0) {
      Result<net::LinkSpec> link =
          transport_->network()->GetLink(server_node_, carry.client);
      rate = link.ok() ? link->bandwidth_bytes_per_sec : 1e6;
    }
    size_t burst =
        std::max<size_t>(2 * carry.options.chunk_bytes, 16 << 10);
    client_state.bucket = TokenBucket(rate, burst);
    client_state.estimator = AckRateEstimator(rate);
  }
  Result<net::LinkSpec> link =
      transport_->network()->GetLink(server_node_, carry.client);
  if (link.ok()) client_state.latency_micros = link->latency_micros;
  ++client_state.streams;
  auto emplaced = streams_.emplace(carry.id, std::move(state));
  AttachStreamObs(emplaced.first->second);
  return Status::OK();
}

double StreamScheduler::RateFor(const ClientState& client) const {
  return std::max(client.estimator.BytesPerSec(), 1.0);
}

size_t StreamScheduler::HeadChunk(StreamState& stream) {
  while (stream.next_chunk < stream.chunks.size()) {
    const Chunk& chunk = stream.chunks[stream.next_chunk];
    int dropped = stream.dropped_from[chunk.object_index];
    if (!chunk.base && dropped >= 0 && chunk.layer >= dropped) {
      ++stream.stats.enhancement_chunks_dropped;
      if (m_enh_dropped_ != nullptr) m_enh_dropped_->Add();
      ++stream.next_chunk;
      continue;
    }
    return stream.next_chunk;
  }
  return kNoChunk;
}

bool StreamScheduler::BasesStillFeasible(net::NodeId client,
                                         const ClientState& state,
                                         size_t extra_bytes, MicrosT now,
                                         double rate, MicrosT slack) const {
  // All pending base chunks toward this client, in deadline order (per
  // stream they already are; merge across streams).
  std::vector<const Chunk*> bases;
  for (const auto& [id, stream] : streams_) {
    if (stream.client != client || stream.stats.aborted) continue;
    for (size_t i = stream.next_chunk; i < stream.chunks.size(); ++i) {
      if (stream.chunks[i].base) bases.push_back(&stream.chunks[i]);
    }
  }
  std::sort(bases.begin(), bases.end(),
            [](const Chunk* a, const Chunk* b) {
              return a->deadline < b->deadline;
            });
  // EDF feasibility: with `extra_bytes` queued ahead, every base must
  // still drain through the estimated rate before its own deadline.
  double queued = static_cast<double>(state.inflight_bytes + extra_bytes);
  for (const Chunk* base : bases) {
    queued += static_cast<double>(base->bytes);
    MicrosT eta = now + static_cast<MicrosT>((queued / rate) * 1e6) +
                  state.latency_micros;
    if (eta + slack > base->deadline) return false;
  }
  return true;
}

void StreamScheduler::DropLayer(StreamState& stream, const Chunk& chunk) {
  int previous = stream.dropped_from[chunk.object_index];
  int ceiling = previous >= 0
                    ? previous
                    : stream.layer_counts[chunk.object_index];
  if (chunk.layer < ceiling) {
    stream.stats.layers_dropped +=
        static_cast<size_t>(ceiling - chunk.layer);
    stream.dropped_from[chunk.object_index] = chunk.layer;
    stream.playout->MarkLayerDropped(chunk.object_index, chunk.layer).ok();
    if (m_layers_dropped_ != nullptr) {
      m_layers_dropped_->Add(static_cast<int64_t>(ceiling - chunk.layer));
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(server_node_, stream.tid, "drop-layer", "stream",
                       "layer", chunk.layer);
    }
  }
}

void StreamScheduler::AbortStream(StreamState& stream) {
  stream.stats.aborted = true;
  stream.next_chunk = stream.chunks.size();
  if (m_aborts_ != nullptr) m_aborts_->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(server_node_, stream.tid, "abort-stream", "stream");
  }
}

void StreamScheduler::RefreshFinished(StreamState& stream) {
  stream.stats.finished =
      stream.next_chunk >= stream.chunks.size() &&
      stream.outstanding == 0 &&
      (stream.stats.aborted || stream.playout->AllPlayed());
}

void StreamScheduler::ObserveAcks() {
  for (auto& [node, client] : clients_) {
    for (auto it = client.outstanding.begin();
         it != client.outstanding.end();) {
      Result<net::SendState> state = transport_->StateOf(it->first);
      if (state.ok() && *state == net::SendState::kInFlight) {
        ++it;
        continue;
      }
      SentChunk sent = it->second;
      if (!state.ok()) {
        // The transport's completed record was already evicted (retention
        // window): the outcome is unknowable. Release the bookkeeping —
        // counting it failed but not aborting keeps the stream moving
        // instead of wedging on a chunk that will never resolve.
        client.inflight_bytes -= std::min(client.inflight_bytes, sent.bytes);
        auto orphan_it = streams_.find(sent.stream);
        if (orphan_it != streams_.end()) {
          if (orphan_it->second.outstanding > 0) {
            --orphan_it->second.outstanding;
          }
          ++orphan_it->second.stats.chunks_failed;
        }
        if (m_chunks_failed_ != nullptr) m_chunks_failed_->Add();
        it = client.outstanding.erase(it);
        continue;
      }
      client.inflight_bytes -= std::min(client.inflight_bytes, sent.bytes);
      auto stream_it = streams_.find(sent.stream);
      StreamState* stream =
          stream_it == streams_.end() ? nullptr : &stream_it->second;
      if (stream != nullptr && stream->outstanding > 0) {
        --stream->outstanding;
      }
      if (*state == net::SendState::kAcked) {
        MicrosT acked =
            transport_->AckedAt(it->first).value_or(sent.sent_at + 1);
        client.estimator.OnAck(sent.bytes, sent.sent_at, acked);
        if (stream != nullptr) ++stream->stats.chunks_acked;
        if (m_chunks_acked_ != nullptr) m_chunks_acked_->Add();
      } else if (stream != nullptr) {
        ++stream->stats.chunks_failed;
        if (m_chunks_failed_ != nullptr) m_chunks_failed_->Add();
        // A lost base layer can never play: stop pouring bytes at a dead
        // member and let the room's eviction machinery handle the node.
        if (sent.base) AbortStream(*stream);
      }
      // Folded into stream accounting — free the transport's record.
      transport_->Forget(it->first);
      it = client.outstanding.erase(it);
    }
    client.bucket.SetRate(client.estimator.BytesPerSec());
  }
}

size_t StreamScheduler::Pump(MicrosT now) {
  size_t sent_count = 0;
  for (auto& [id, stream] : streams_) {
    stream.playout->AdvanceTo(now);
  }
  for (auto& [node, client] : clients_) {
    client.bucket.Refill(now);
    std::set<StreamId> deferred;
    while (true) {
      // EDF: the pending chunk with the earliest deadline across this
      // client's streams; base beats enhancement on ties.
      StreamState* best_stream = nullptr;
      size_t best_index = kNoChunk;
      for (auto& [id, stream] : streams_) {
        if (stream.client != node || stream.stats.aborted ||
            deferred.count(id) > 0) {
          continue;
        }
        size_t index = HeadChunk(stream);
        if (index == kNoChunk) continue;
        const Chunk& chunk = stream.chunks[index];
        if (best_stream == nullptr) {
          best_stream = &stream;
          best_index = index;
          continue;
        }
        const Chunk& best = best_stream->chunks[best_index];
        if (chunk.deadline < best.deadline ||
            (chunk.deadline == best.deadline && chunk.base && !best.base)) {
          best_stream = &stream;
          best_index = index;
        }
      }
      if (best_stream == nullptr) break;
      StreamState& stream = *best_stream;
      const Chunk chunk = stream.chunks[best_index];
      double rate = RateFor(client);
      MicrosT queue_micros = static_cast<MicrosT>(
          (static_cast<double>(client.inflight_bytes + chunk.bytes) / rate) *
          1e6);
      MicrosT eta = now + queue_micros + client.latency_micros;
      if (!chunk.base) {
        // Quality adaptation: a refinement that would land past its own
        // deadline — or push any pending base layer past its own — is
        // dropped.
        if (eta + stream.options.drop_slack_micros > chunk.deadline) {
          DropLayer(stream, chunk);
          continue;
        }
        if (!BasesStillFeasible(node, client, chunk.bytes, now, rate,
                                stream.options.drop_slack_micros)) {
          DropLayer(stream, chunk);
          continue;
        }
        // Playout-buffer budget: refinements wait for space (base chunks
        // bypass the gate — continuity cannot deadlock on a full buffer).
        if (stream.playout->fill_bytes() + chunk.bytes >
            stream.playout->capacity_bytes()) {
          deferred.insert(stream.id);
          continue;
        }
      }
      if (!client.bucket.CanSend(chunk.bytes)) {
        if (m_token_wait_ != nullptr) {
          m_token_wait_->Observe(
              client.bucket.WhenAvailable(chunk.bytes, now) - now);
        }
        break;
      }
      Result<net::SendHandle> handle = transport_->Send(
          server_node_, node, chunk.bytes, ChunkTag(stream.id, chunk.seq));
      if (!handle.ok()) {
        AbortStream(stream);
        continue;
      }
      client.bucket.Consume(chunk.bytes);
      client.outstanding[handle->id] =
          SentChunk{stream.id, chunk.seq, chunk.bytes, chunk.base, now};
      client.inflight_bytes += chunk.bytes;
      ++stream.outstanding;
      ++stream.next_chunk;
      ++stream.stats.chunks_sent;
      stream.stats.bytes_sent += chunk.bytes;
      if (m_chunks_sent_ != nullptr) {
        m_chunks_sent_->Add();
        m_bytes_sent_->Add(static_cast<int64_t>(chunk.bytes));
      }
      ++sent_count;
    }
  }
  for (auto& [id, stream] : streams_) {
    stream.stats.estimated_rate_bytes_per_sec =
        RateFor(clients_[stream.client]);
    RefreshFinished(stream);
  }
  return sent_count;
}

bool StreamScheduler::OnDelivery(const net::Delivery& delivery) {
  StreamId id = 0;
  uint32_t seq = 0;
  if (!ParseChunkTag(delivery.tag, &id, &seq)) return false;
  auto it = streams_.find(id);
  if (it == streams_.end()) return false;
  StreamState& stream = it->second;
  if (seq >= stream.chunks.size()) return true;  // malformed: swallow
  stream.playout->OnChunk(stream.chunks[seq], delivery.delivered_at).ok();
  return true;
}

MicrosT StreamScheduler::NextActionAt(MicrosT now) const {
  MicrosT next = -1;
  auto consider = [&](MicrosT t) {
    if (t > now && (next < 0 || t < next)) next = t;
  };
  for (const auto& [id, stream] : streams_) {
    if (stream.stats.finished || stream.stats.aborted) continue;
    MicrosT play = stream.playout->NextPlayAt();
    if (play >= 0) consider(play);
    // Head pending chunk vs this client's token bucket.
    size_t index = stream.next_chunk;
    while (index < stream.chunks.size()) {
      const Chunk& chunk = stream.chunks[index];
      int dropped = stream.dropped_from[chunk.object_index];
      if (!chunk.base && dropped >= 0 && chunk.layer >= dropped) {
        ++index;
        continue;
      }
      auto client_it = clients_.find(stream.client);
      if (client_it != clients_.end() &&
          !client_it->second.bucket.CanSend(chunk.bytes)) {
        consider(client_it->second.bucket.WhenAvailable(chunk.bytes, now));
      }
      break;
    }
  }
  return next;
}

bool StreamScheduler::Idle() const {
  for (const auto& [id, stream] : streams_) {
    if (!stream.stats.finished) return false;
  }
  return true;
}

Result<StreamStats> StreamScheduler::StatsFor(StreamId id) const {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  StreamStats stats = it->second.stats;
  stats.playout = it->second.playout->stats();
  return stats;
}

std::vector<StreamStats> StreamScheduler::AllStats() const {
  std::vector<StreamStats> all;
  all.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) {
    StreamStats stats = stream.stats;
    stats.playout = stream.playout->stats();
    all.push_back(stats);
  }
  return all;
}

Result<const PlayoutBuffer*> StreamScheduler::Playout(StreamId id) const {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no stream " + std::to_string(id));
  }
  return static_cast<const PlayoutBuffer*>(it->second.playout.get());
}

}  // namespace mmconf::stream
