#ifndef MMCONF_STREAM_RATE_H_
#define MMCONF_STREAM_RATE_H_

#include <cstddef>

#include "common/clock.h"

namespace mmconf::stream {

/// Token bucket pacing one client's downlink. Tokens are bytes; they
/// accrue at the estimated link rate up to a burst cap, and every chunk
/// admission consumes its wire size. All time is virtual, so refills are
/// computed lazily from the elapsed simulated time.
class TokenBucket {
 public:
  TokenBucket(double rate_bytes_per_sec, size_t burst_bytes);

  /// Accrues tokens for the time elapsed since the last refill.
  void Refill(MicrosT now);

  /// Re-targets the accrual rate (the estimator moved). Existing tokens
  /// are kept; rates below 1 B/s are clamped up to keep WhenAvailable
  /// finite.
  void SetRate(double rate_bytes_per_sec);

  bool CanSend(size_t bytes) const {
    return tokens_ >= static_cast<double>(bytes);
  }
  void Consume(size_t bytes) { tokens_ -= static_cast<double>(bytes); }

  /// Earliest time at which `bytes` tokens will be available (== `now`
  /// when they already are). Requests beyond the burst cap saturate at
  /// the cap so oversized chunks still eventually clear.
  MicrosT WhenAvailable(size_t bytes, MicrosT now) const;

  double rate_bytes_per_sec() const { return rate_; }
  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  MicrosT last_refill_ = 0;
};

/// Exponentially-weighted throughput estimate fed by observed ack
/// timings. Per-chunk RTT is latency-dominated (a clean slow ack says
/// nothing about bandwidth), so the estimator measures ack *spacing*:
/// bytes acknowledged between consecutive ack arrivals over the time
/// between them — with a pipelined sender that converges on the wire's
/// serialization rate. Acks sharing a timestamp accumulate into the
/// next interval. Retransmissions widen the spacing, steering the token
/// bucket down exactly when the link degrades; the sender never needs
/// to see the loss itself.
class AckRateEstimator {
 public:
  /// `initial` seeds the estimate until two ack arrivals exist.
  explicit AckRateEstimator(double initial_bytes_per_sec, double alpha = 0.3);

  void OnAck(size_t bytes, MicrosT sent_at, MicrosT acked_at);

  double BytesPerSec() const { return estimate_; }
  size_t samples() const { return samples_; }

 private:
  double estimate_;
  double alpha_;
  size_t samples_ = 0;
  bool has_last_ = false;
  MicrosT last_ack_at_ = 0;
  size_t pending_bytes_ = 0;  ///< acked at exactly last_ack_at_
};

}  // namespace mmconf::stream

#endif  // MMCONF_STREAM_RATE_H_
