#include "stream/playout.h"

#include <algorithm>

namespace mmconf::stream {

PlayoutBuffer::PlayoutBuffer(size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

Status PlayoutBuffer::ExpectObject(uint32_t index, MicrosT deadline,
                                   const std::vector<size_t>& layer_bytes) {
  if (index != objects_.size()) {
    return Status::InvalidArgument(
        "objects must be registered in order: expected index " +
        std::to_string(objects_.size()) + ", got " + std::to_string(index));
  }
  if (layer_bytes.empty()) {
    return Status::InvalidArgument("an object needs at least a base layer");
  }
  if (!objects_.empty() && deadline < objects_.back().deadline) {
    return Status::InvalidArgument(
        "deadlines must be monotone per stream: " + std::to_string(deadline) +
        " < " + std::to_string(objects_.back().deadline));
  }
  ObjectState object;
  object.deadline = deadline;
  object.layer_bytes = layer_bytes;
  object.layer_received.assign(layer_bytes.size(), 0);
  object.layer_complete_at.assign(layer_bytes.size(), -1);
  objects_.push_back(std::move(object));
  ++stats_.objects_expected;
  return Status::OK();
}

Status PlayoutBuffer::MarkLayerDropped(uint32_t index, int layer) {
  if (index >= objects_.size()) {
    return Status::OutOfRange("no object " + std::to_string(index));
  }
  if (layer <= 0) {
    return Status::InvalidArgument("the base layer is never dropped");
  }
  ObjectState& object = objects_[index];
  if (layer >= static_cast<int>(object.layer_bytes.size())) {
    return Status::OutOfRange("object has no layer " + std::to_string(layer));
  }
  if (object.dropped_from < 0 || layer < object.dropped_from) {
    object.dropped_from = layer;
  }
  return Status::OK();
}

Status PlayoutBuffer::OnChunk(const Chunk& chunk, MicrosT arrival) {
  if (chunk.object_index >= objects_.size()) {
    return Status::OutOfRange("chunk for unregistered object " +
                              std::to_string(chunk.object_index));
  }
  ObjectState& object = objects_[chunk.object_index];
  if (chunk.layer < 0 ||
      chunk.layer >= static_cast<int>(object.layer_bytes.size())) {
    return Status::OutOfRange("chunk for unknown layer " +
                              std::to_string(chunk.layer));
  }
  stats_.bytes_received += chunk.bytes;
  if (object.played) {
    // Arrived after the object left the buffer: pure overhead.
    stats_.wasted_bytes += chunk.bytes;
    return Status::OK();
  }
  size_t layer = static_cast<size_t>(chunk.layer);
  object.layer_received[layer] += chunk.bytes;
  object.buffered_bytes += chunk.bytes;
  fill_ += chunk.bytes;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, fill_);
  if (object.layer_received[layer] >= object.layer_bytes[layer] &&
      object.layer_complete_at[layer] < 0) {
    object.layer_complete_at[layer] = arrival;
  }
  return Status::OK();
}

void PlayoutBuffer::AdvanceTo(MicrosT t) {
  while (next_to_play_ < objects_.size()) {
    ObjectState& object = objects_[next_to_play_];
    if (object.layer_complete_at[0] < 0) break;  // base still in flight
    MicrosT play_at = std::max(
        {object.deadline, object.layer_complete_at[0], last_played_at_});
    if (play_at > t) break;
    object.played = true;
    object.played_at = play_at;
    last_played_at_ = play_at;
    int layers = 0;
    for (size_t k = 0; k < object.layer_complete_at.size(); ++k) {
      if (object.layer_complete_at[k] < 0 ||
          object.layer_complete_at[k] > play_at) {
        break;
      }
      ++layers;
    }
    object.delivered_layers = layers;
    MicrosT stall = play_at - object.deadline;
    if (stall > 0) {
      ++stats_.stalls;
      stats_.total_stall_micros += stall;
      stats_.max_stall_micros = std::max(stats_.max_stall_micros, stall);
      if (on_stall_) on_stall_(object.deadline, play_at);
    }
    ++stats_.objects_played;
    stats_.layers_delivered_total += static_cast<size_t>(layers);
    stats_.min_layers = stats_.objects_played == 1
                            ? layers
                            : std::min(stats_.min_layers, layers);
    stats_.bytes_played += object.buffered_bytes;
    fill_ -= object.buffered_bytes;
    object.buffered_bytes = 0;
    ++next_to_play_;
  }
}

MicrosT PlayoutBuffer::NextPlayAt() const {
  if (next_to_play_ >= objects_.size()) return -1;
  const ObjectState& object = objects_[next_to_play_];
  if (object.layer_complete_at[0] >= 0) {
    return std::max(
        {object.deadline, object.layer_complete_at[0], last_played_at_});
  }
  return object.deadline;
}

Result<int> PlayoutBuffer::DeliveredLayers(uint32_t index) const {
  if (index >= objects_.size()) {
    return Status::OutOfRange("no object " + std::to_string(index));
  }
  if (!objects_[index].played) {
    return Status::FailedPrecondition("object " + std::to_string(index) +
                                      " has not played yet");
  }
  return objects_[index].delivered_layers;
}

}  // namespace mmconf::stream
