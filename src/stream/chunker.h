#ifndef MMCONF_STREAM_CHUNKER_H_
#define MMCONF_STREAM_CHUNKER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "stream/chunk.h"

namespace mmconf::stream {

/// Transfer plan for one encoded layered object: its chunks in send
/// order plus the per-layer byte accounting the scheduler and the
/// playout buffer need to reason about quality adaptation.
struct ObjectPlan {
  std::vector<Chunk> chunks;       ///< base chunks first, then layer 1, 2, …
  std::vector<size_t> layer_bytes; ///< wire bytes per layer (header in [0])
  int num_layers = 0;
  size_t total_bytes = 0;
};

/// Splits `compress::LayeredCodec` bitstreams on their layer boundaries
/// (`StreamInfo::layer_end`) into deadline-tagged chunks. The stream
/// header rides with the base layer: `layer_end[k]` bytes suffice to
/// decode layers 0..k, so a chunk prefix of the plan is always a
/// decodable prefix of the object.
class Chunker {
 public:
  /// `max_chunk_bytes` caps the wire size of one chunk (the unit of
  /// scheduling, retransmission, and loss).
  explicit Chunker(size_t max_chunk_bytes = 8 << 10);

  /// Plans the transfer of one encoded object. `first_seq` numbers the
  /// produced chunks consecutively within the stream; every chunk
  /// carries `deadline` (the object's playout time). InvalidArgument
  /// when the stream is not a complete LayeredCodec bitstream.
  Result<ObjectPlan> Plan(const Bytes& encoded, StreamId stream,
                          uint32_t object_index, uint32_t first_seq,
                          MicrosT deadline) const;

  size_t max_chunk_bytes() const { return max_chunk_bytes_; }

 private:
  size_t max_chunk_bytes_;
};

}  // namespace mmconf::stream

#endif  // MMCONF_STREAM_CHUNKER_H_
