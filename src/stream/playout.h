#ifndef MMCONF_STREAM_PLAYOUT_H_
#define MMCONF_STREAM_PLAYOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "stream/chunk.h"

namespace mmconf::stream {

/// Client-side delivery quality of one stream: stall/rebuffer events and
/// the decodable layer depth of every played object (the paper's §4.4
/// trade-off — when bandwidth runs short the system degrades quality,
/// not continuity).
struct PlayoutStats {
  size_t objects_expected = 0;
  size_t objects_played = 0;
  size_t stalls = 0;                ///< objects whose base missed the deadline
  MicrosT total_stall_micros = 0;   ///< accumulated rebuffer time
  MicrosT max_stall_micros = 0;
  size_t layers_delivered_total = 0;  ///< sum of decodable layers when played
  int min_layers = 0;                 ///< worst played object (0 until played)
  size_t bytes_received = 0;
  size_t bytes_played = 0;
  size_t wasted_bytes = 0;     ///< arrived only after the object played
  size_t high_water_bytes = 0; ///< peak buffer fill
  /// Mean decodable layers across played objects.
  double MeanLayers() const {
    return objects_played > 0
               ? static_cast<double>(layers_delivered_total) /
                     static_cast<double>(objects_played)
               : 0;
  }
};

/// Client-side playout buffer of one stream: tracks per-object,
/// per-layer arrival, plays objects in order at their deadlines, and
/// accounts fill level so the scheduler can keep streaming inside the
/// client's buffer budget (shared with prefetch::ClientCache).
///
/// Play model (rebuffering, not frame-skip): object k plays at
/// max(deadline_k, time its base layer completed, play time of k-1); a
/// play after the deadline is a stall of that duration. The decodable
/// quality of a played object is its contiguous prefix of layers fully
/// arrived by play time — late enhancements are wasted bytes.
///
/// Invariants: deadlines are monotone non-decreasing per stream
/// (ExpectObject enforces this), and the base layer is never marked
/// dropped (MarkLayerDropped rejects layer 0).
class PlayoutBuffer {
 public:
  explicit PlayoutBuffer(size_t capacity_bytes);

  /// Registers the next object before its chunks arrive. Objects must be
  /// registered in index order with monotone deadlines; `layer_bytes`
  /// comes from the Chunker's ObjectPlan.
  Status ExpectObject(uint32_t index, MicrosT deadline,
                      const std::vector<size_t>& layer_bytes);

  /// Records the scheduler's decision that `layer` (and every layer
  /// above it — decode needs a contiguous prefix) will not be sent.
  /// InvalidArgument for the base layer: it is never dropped.
  Status MarkLayerDropped(uint32_t index, int layer);

  /// A chunk of this stream arrived at virtual time `arrival`.
  Status OnChunk(const Chunk& chunk, MicrosT arrival);

  /// Plays every object whose play condition is met at time `t`.
  void AdvanceTo(MicrosT t);

  /// Earliest known future play event: the next unplayed object's play
  /// time when its base is already complete, else its deadline (the
  /// earliest it could possibly play); -1 when nothing is pending.
  MicrosT NextPlayAt() const;

  size_t fill_bytes() const { return fill_; }
  size_t capacity_bytes() const { return capacity_; }
  bool AllPlayed() const { return next_to_play_ >= objects_.size(); }
  const PlayoutStats& stats() const { return stats_; }

  /// Decodable layers of an already-played object.
  Result<int> DeliveredLayers(uint32_t index) const;

  /// Invoked (during AdvanceTo) whenever an object plays late, with its
  /// deadline and actual play time — the [deadline, played_at) interval
  /// is the stall. Lets the owner emit a trace span without the buffer
  /// knowing about tracing.
  using StallCallback = std::function<void(MicrosT deadline,
                                           MicrosT played_at)>;
  void SetStallCallback(StallCallback callback) {
    on_stall_ = std::move(callback);
  }

 private:
  struct ObjectState {
    MicrosT deadline = 0;
    std::vector<size_t> layer_bytes;
    std::vector<size_t> layer_received;
    /// When each layer finished arriving; -1 while incomplete.
    std::vector<MicrosT> layer_complete_at;
    int dropped_from = -1;  ///< first dropped layer, -1 = none
    size_t buffered_bytes = 0;
    bool played = false;
    MicrosT played_at = 0;
    int delivered_layers = 0;
  };

  size_t capacity_;
  size_t fill_ = 0;
  std::vector<ObjectState> objects_;
  size_t next_to_play_ = 0;
  MicrosT last_played_at_ = 0;
  PlayoutStats stats_;
  StallCallback on_stall_;
};

}  // namespace mmconf::stream

#endif  // MMCONF_STREAM_PLAYOUT_H_
