#include "obs/trace.h"

#include <cstdio>

namespace mmconf::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void Tracer::SetProcessName(int pid, const std::string& name) {
  Event event;
  event.phase = 'M';
  event.name = "process_name";
  event.pid = pid + pid_offset_;
  event.tid = 0;
  event.meta_name = name;
  events_.push_back(std::move(event));
}

int Tracer::Tid(int pid, const std::string& label) {
  const int offset_pid = pid + pid_offset_;
  auto key = std::make_pair(offset_pid, label);
  auto it = tids_.find(key);
  if (it != tids_.end()) return it->second;
  int& next = next_tid_[offset_pid];
  if (next == 0) next = 1;
  int tid = next++;
  tids_.emplace(std::move(key), tid);
  Event event;
  event.phase = 'M';
  event.name = "thread_name";
  event.pid = offset_pid;
  event.tid = tid;
  event.meta_name = label;
  events_.push_back(std::move(event));
  return tid;
}

void Tracer::Instant(int pid, int tid, const char* name,
                     const char* category, const char* value_name,
                     int64_t value) {
  Event event;
  event.phase = 'i';
  event.name = name;
  event.category = category;
  event.pid = pid + pid_offset_;
  event.tid = tid;
  event.ts = Now();
  event.value_name = value_name;
  event.value = value;
  events_.push_back(std::move(event));
}

void Tracer::Span(int pid, int tid, const char* name, const char* category,
                  MicrosT start, MicrosT end, const char* value_name,
                  int64_t value) {
  Event event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.pid = pid + pid_offset_;
  event.tid = tid;
  event.ts = start;
  event.dur = end > start ? end - start : 0;
  event.value_name = value_name;
  event.value = value;
  events_.push_back(std::move(event));
}

size_t Tracer::BeginSpan(int pid, int tid, const char* name,
                         const char* category) {
  Event event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.pid = pid + pid_offset_;
  event.tid = tid;
  event.ts = Now();
  event.dur = -1;
  events_.push_back(std::move(event));
  return events_.size() - 1;
}

size_t Tracer::open_spans() const {
  size_t open = 0;
  for (const Event& event : events_) {
    if (event.phase == 'X' && event.dur < 0) ++open;
  }
  return open;
}

void Tracer::EndSpan(size_t handle) {
  if (handle >= events_.size()) return;
  Event& event = events_[handle];
  if (event.phase != 'X' || event.dur >= 0) return;
  MicrosT now = Now();
  event.dur = now > event.ts ? now - event.ts : 0;
}

void Tracer::CounterSample(int pid, const char* name, int64_t value) {
  Event event;
  event.phase = 'C';
  event.name = name;
  event.pid = pid + pid_offset_;
  event.tid = 0;
  event.ts = Now();
  event.value_name = "value";
  event.value = value;
  events_.push_back(std::move(event));
}

void Tracer::Clear() {
  events_.clear();
  tids_.clear();
  next_tid_.clear();
}

std::string Tracer::ToJson() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(&out, event.name);
    out += "\", \"ph\": \"";
    out += event.phase;
    out += "\"";
    if (event.phase == 'M') {
      out += ", \"pid\": " + std::to_string(event.pid);
      out += ", \"tid\": " + std::to_string(event.tid);
      out += ", \"args\": {\"name\": \"";
      AppendEscaped(&out, event.meta_name);
      out += "\"}}";
      continue;
    }
    out += ", \"cat\": \"";
    AppendEscaped(&out, event.category);
    out += "\", \"pid\": " + std::to_string(event.pid);
    out += ", \"tid\": " + std::to_string(event.tid);
    out += ", \"ts\": " + std::to_string(event.ts);
    if (event.phase == 'X') {
      out += ", \"dur\": " + std::to_string(event.dur >= 0 ? event.dur : 0);
    }
    if (event.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    if (event.value_name != nullptr) {
      out += ", \"args\": {\"";
      AppendEscaped(&out, event.value_name);
      out += "\": " + std::to_string(event.value) + "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::NotFound("cannot open trace output \"" + path + "\"");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), out);
  bool ok = written == json.size() && std::ferror(out) == 0;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    return Status::Internal("short write to trace output \"" + path + "\"");
  }
  return Status::OK();
}

}  // namespace mmconf::obs
