#ifndef MMCONF_OBS_TRACE_H_
#define MMCONF_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace mmconf::obs {

/// Timeline recorder over the *simulation* clock, exporting Chrome
/// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Conventions (DESIGN.md §10): one trace pid per simulated network node
/// (the sender side of an event), one tid per room/stream within that
/// node (interned via Tid; tid 0 is the node's default lane). Spans
/// ("X" complete events) cover intervals of virtual time — a propagation
/// round from first send to last ack, a playout stall from deadline to
/// play. Instants ("i") mark point decisions — a wire drop, a shed
/// enhancement layer.
///
/// Benches that simulate several independent fleets in one process give
/// each fleet its own pid namespace via set_pid_offset, so node 0 of
/// sweep point 3 does not collide with node 0 of sweep point 0.
class Tracer {
 public:
  /// `clock` must outlive the tracer (re-point with SetClock when a new
  /// simulation starts).
  explicit Tracer(const Clock* clock) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetClock(const Clock* clock) { clock_ = clock; }
  /// Added to every pid passed in from here on (see class comment).
  void set_pid_offset(int offset) { pid_offset_ = offset; }
  int pid_offset() const { return pid_offset_; }

  /// Names the process `pid` renders as ("process_name" metadata).
  void SetProcessName(int pid, const std::string& name);

  /// Interns `label` as a tid of `pid`, emitting "thread_name" metadata
  /// on first use. Stable across calls; tid 0 is never handed out.
  int Tid(int pid, const std::string& label);

  /// Point event at the current virtual time. `value_name` != nullptr
  /// attaches one numeric argument.
  void Instant(int pid, int tid, const char* name, const char* category,
               const char* value_name = nullptr, int64_t value = 0);

  /// Complete event covering [start, end] of virtual time (clamped to a
  /// non-negative duration).
  void Span(int pid, int tid, const char* name, const char* category,
            MicrosT start, MicrosT end, const char* value_name = nullptr,
            int64_t value = 0);

  /// Open span starting now; EndSpan stamps the duration. The returned
  /// handle is only valid until Clear().
  size_t BeginSpan(int pid, int tid, const char* name,
                   const char* category);
  void EndSpan(size_t handle);

  /// Counter track sample ("C" event) at the current virtual time.
  void CounterSample(int pid, const char* name, int64_t value);

  size_t num_events() const { return events_.size(); }
  /// Spans begun but never ended — a leaked guard (an early-error
  /// return that skipped EndSpan) shows up here; a healthy timeline
  /// reports 0 once the traced operations have returned.
  size_t open_spans() const;
  void Clear();

  /// Chrome trace JSON: {"traceEvents": [...]}. Events appear in record
  /// order (deterministic for a deterministic simulation).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    char phase = 'i';  ///< 'i' instant, 'X' complete, 'C' counter, 'M' meta
    std::string name;
    const char* category = "";
    int pid = 0;
    int tid = 0;
    MicrosT ts = 0;
    MicrosT dur = -1;  ///< 'X' only; -1 while a BeginSpan is open
    const char* value_name = nullptr;
    int64_t value = 0;
    std::string meta_name;  ///< 'M' only: the process/thread name
  };

  MicrosT Now() const { return clock_ != nullptr ? clock_->NowMicros() : 0; }

  const Clock* clock_;
  int pid_offset_ = 0;
  std::vector<Event> events_;
  std::map<std::pair<int, std::string>, int> tids_;
  std::map<int, int> next_tid_;  ///< per pid, starts at 1
};

/// RAII guard over BeginSpan/EndSpan: the span closes when the guard
/// leaves scope, so early-error returns cannot leak an open span (a
/// leaked span renders as dur -1 and poisons the timeline). A null
/// tracer makes the guard a no-op, matching the optional-observer
/// convention across the tiers.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, int pid, int tid, const char* name,
             const char* category)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      handle_ = tracer_->BeginSpan(pid, tid, name, category);
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), handle_(other.handle_) {
    other.tracer_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      handle_ = other.handle_;
      other.tracer_ = nullptr;
    }
    return *this;
  }

  /// Closes the span early (idempotent).
  void End() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(handle_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  size_t handle_ = 0;
};

}  // namespace mmconf::obs

#endif  // MMCONF_OBS_TRACE_H_
