#ifndef MMCONF_OBS_METRICS_H_
#define MMCONF_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mmconf::obs {

/// Monotone event count. Handles returned by MetricsRegistry::GetCounter
/// are stable for the registry's lifetime, so hot paths fetch them once
/// and increment a plain integer afterwards — no lookup, no allocation.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  uint64_t value_ = 0;
};

/// Point-in-time signed value (queue depth, buffer fill, last round's
/// convergence time). Same handle discipline as Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  int64_t value_ = 0;
};

/// Fixed-bucket histogram for latencies and sizes. Bucket edges are the
/// inclusive upper bounds handed to MetricsRegistry::GetHistogram:
/// bucket 0 counts values <= bounds[0] (everything below the first edge
/// included), bucket i counts bounds[i-1] < v <= bounds[i], and one
/// extra overflow bucket counts values above the last edge. Observe is a
/// binary search over the fixed edges plus integer bumps — no
/// allocation.
class Histogram {
 public:
  void Observe(int64_t value);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  /// 0 until the first observation.
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<int64_t> bounds);

  std::vector<int64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Value copy of one histogram, comparable across runs.
struct HistogramSnapshot {
  std::vector<int64_t> bounds;
  std::vector<uint64_t> counts;  ///< per bucket, overflow last
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Point-in-time copy of a whole registry. Keys iterate in sorted order
/// (std::map), so ToJson is byte-deterministic for identical contents —
/// the property the seed-for-seed determinism tests assert.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  /// Counters and histogram buckets/count/sum become this-minus-earlier;
  /// gauges and histogram min/max keep this snapshot's value (they are
  /// not accumulative). Metrics absent from `earlier` pass through.
  MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  /// Integer-only JSON (no float formatting), sorted keys.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
};

/// Process-wide registry of named metrics. Registration (Get*) may
/// allocate; the returned handles never move, so instrumented code keeps
/// raw pointers and pays only an integer bump per event. Reset zeroes
/// every value but keeps registrations (and thus handles) valid.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be non-empty and strictly ascending (falls back to a
  /// single bucket at 0 otherwise). A re-registration under an existing
  /// name keeps the first definition's bounds.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  MetricsSnapshot Snapshot() const;
  void Reset();
  size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// The process-wide default instance (benches and examples share it);
  /// tests build their own registries for isolation.
  static MetricsRegistry* Global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mmconf::obs

#endif  // MMCONF_OBS_METRICS_H_
