#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace mmconf::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)) {
  bool ascending = !bounds_.empty();
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      ascending = false;
      break;
    }
  }
  if (!ascending) bounds_.assign(1, 0);
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(int64_t value) {
  // First edge >= value; everything above the last edge overflows.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.counts = histogram->bucket_counts();
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) counter->value_ = 0;
  for (auto& [name, gauge] : gauges_) gauge->value_ = 0;
  for (auto& [name, histogram] : histograms_) {
    std::fill(histogram->counts_.begin(), histogram->counts_.end(), 0);
    histogram->count_ = 0;
    histogram->sum_ = 0;
    histogram->min_ = 0;
    histogram->max_ = 0;
  }
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff = *this;
  for (auto& [name, value] : diff.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= std::min(value, it->second);
  }
  for (auto& [name, histogram] : diff.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    const HistogramSnapshot& base = it->second;
    if (base.bounds != histogram.bounds) continue;  // re-bucketed: keep
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      histogram.counts[i] -= std::min(histogram.counts[i], base.counts[i]);
    }
    histogram.count -= std::min(histogram.count, base.count);
    histogram.sum -= base.sum;
  }
  return diff;
}

namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

template <typename Map, typename Emit>
void AppendObject(std::string* out, const char* key, const Map& map,
                  Emit emit, bool trailing_comma) {
  *out += "  \"";
  *out += key;
  *out += "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    *out += first ? "\n    \"" : ",\n    \"";
    first = false;
    AppendEscaped(out, name);
    *out += "\": ";
    emit(out, value);
  }
  *out += first ? "}" : "\n  }";
  if (trailing_comma) *out += ",";
  *out += "\n";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n";
  AppendObject(&out, "counters", counters,
               [](std::string* s, uint64_t v) { *s += std::to_string(v); },
               true);
  AppendObject(&out, "gauges", gauges,
               [](std::string* s, int64_t v) { *s += std::to_string(v); },
               true);
  AppendObject(
      &out, "histograms", histograms,
      [](std::string* s, const HistogramSnapshot& h) {
        *s += "{\"bounds\": [";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) *s += ", ";
          *s += std::to_string(h.bounds[i]);
        }
        *s += "], \"counts\": [";
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) *s += ", ";
          *s += std::to_string(h.counts[i]);
        }
        *s += "], \"count\": " + std::to_string(h.count);
        *s += ", \"sum\": " + std::to_string(h.sum);
        *s += ", \"min\": " + std::to_string(h.min);
        *s += ", \"max\": " + std::to_string(h.max) + "}";
      },
      false);
  out += "}\n";
  return out;
}

Status MetricsSnapshot::WriteJson(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::NotFound("cannot open metrics output \"" + path + "\"");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), out);
  bool ok = written == json.size() && std::ferror(out) == 0;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    return Status::Internal("short write to metrics output \"" + path +
                            "\"");
  }
  return Status::OK();
}

}  // namespace mmconf::obs
