#include "audio/features.h"

#include <cmath>

namespace mmconf::audio {

int FeatureDim(const FeatureOptions& options) {
  return options.num_bands + 2;
}

size_t FrameCenter(const FeatureOptions& options, size_t frame_index) {
  return frame_index * static_cast<size_t>(options.hop) +
         static_cast<size_t>(options.frame_length) / 2;
}

size_t FrameIndexForSample(const FeatureOptions& options, size_t sample) {
  return sample / static_cast<size_t>(options.hop);
}

void Fft(std::vector<double>& real, std::vector<double>& imag) {
  const size_t n = real.size();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(real[i], real[j]);
      std::swap(imag[i], imag[j]);
    }
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = -2.0 * M_PI / static_cast<double>(len);
    double wr = std::cos(angle), wi = std::sin(angle);
    for (size_t i = 0; i < n; i += len) {
      double cur_r = 1, cur_i = 0;
      for (size_t k = 0; k < len / 2; ++k) {
        size_t a = i + k, b = i + k + len / 2;
        double tr = real[b] * cur_r - imag[b] * cur_i;
        double ti = real[b] * cur_i + imag[b] * cur_r;
        real[b] = real[a] - tr;
        imag[b] = imag[a] - ti;
        real[a] += tr;
        imag[a] += ti;
        double next_r = cur_r * wr - cur_i * wi;
        cur_i = cur_r * wi + cur_i * wr;
        cur_r = next_r;
      }
    }
  }
}

Result<std::vector<FeatureVector>> ExtractFeatures(
    const media::AudioSignal& signal, const FeatureOptions& options) {
  if (options.frame_length <= 0 || options.hop <= 0 ||
      options.num_bands <= 0) {
    return Status::InvalidArgument("frame parameters must be positive");
  }
  if (options.min_hz <= 0 || options.max_hz <= options.min_hz ||
      options.max_hz > signal.sample_rate() / 2.0) {
    return Status::InvalidArgument("filter band range invalid for rate " +
                                   std::to_string(signal.sample_rate()));
  }
  // FFT size: next power of two >= frame_length.
  size_t fft_size = 1;
  while (fft_size < static_cast<size_t>(options.frame_length)) fft_size <<= 1;

  // Hamming window, computed once.
  std::vector<double> window(static_cast<size_t>(options.frame_length));
  for (size_t i = 0; i < window.size(); ++i) {
    window[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                                       (window.size() - 1));
  }

  // Triangular filter bank: band centers linearly spaced over
  // [min_hz, max_hz].
  const double bin_hz =
      static_cast<double>(signal.sample_rate()) / static_cast<double>(fft_size);
  const int num_bins = static_cast<int>(fft_size) / 2;
  std::vector<double> centers(static_cast<size_t>(options.num_bands) + 2);
  for (size_t b = 0; b < centers.size(); ++b) {
    centers[b] = options.min_hz + (options.max_hz - options.min_hz) *
                                      static_cast<double>(b) /
                                      (centers.size() - 1);
  }

  std::vector<FeatureVector> features;
  const std::vector<float>& samples = signal.samples();
  std::vector<double> real(fft_size), imag(fft_size);
  for (size_t start = 0;
       start + static_cast<size_t>(options.frame_length) <= samples.size();
       start += static_cast<size_t>(options.hop)) {
    // Window + zero-pad.
    double energy = 0;
    int zero_crossings = 0;
    for (size_t i = 0; i < fft_size; ++i) {
      if (i < window.size()) {
        double s = samples[start + i];
        real[i] = s * window[i];
        energy += s * s;
        if (i > 0 && (samples[start + i] >= 0) !=
                         (samples[start + i - 1] >= 0)) {
          ++zero_crossings;
        }
      } else {
        real[i] = 0;
      }
      imag[i] = 0;
    }
    Fft(real, imag);
    // Band energies.
    FeatureVector feature;
    feature.reserve(static_cast<size_t>(FeatureDim(options)));
    for (int b = 1; b <= options.num_bands; ++b) {
      double lo = centers[static_cast<size_t>(b - 1)];
      double mid = centers[static_cast<size_t>(b)];
      double hi = centers[static_cast<size_t>(b + 1)];
      double band_energy = 0;
      for (int bin = 0; bin < num_bins; ++bin) {
        double hz = bin * bin_hz;
        double weight = 0;
        if (hz > lo && hz <= mid) {
          weight = (hz - lo) / (mid - lo);
        } else if (hz > mid && hz < hi) {
          weight = (hi - hz) / (hi - mid);
        }
        if (weight > 0) {
          double mag2 = real[static_cast<size_t>(bin)] *
                            real[static_cast<size_t>(bin)] +
                        imag[static_cast<size_t>(bin)] *
                            imag[static_cast<size_t>(bin)];
          band_energy += weight * mag2;
        }
      }
      feature.push_back(std::log(band_energy + 1e-10));
    }
    feature.push_back(std::log(energy + 1e-10));
    feature.push_back(static_cast<double>(zero_crossings) /
                      static_cast<double>(options.frame_length));
    features.push_back(std::move(feature));
  }
  return features;
}

}  // namespace mmconf::audio
