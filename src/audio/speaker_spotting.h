#ifndef MMCONF_AUDIO_SPEAKER_SPOTTING_H_
#define MMCONF_AUDIO_SPEAKER_SPOTTING_H_

#include <map>
#include <vector>

#include "audio/features.h"
#include "audio/gmm.h"
#include "common/result.h"
#include "common/rng.h"
#include "media/audio.h"

namespace mmconf::audio {

/// A speaker attribution for a span of speech.
struct SpeakerDetection {
  size_t begin = 0;
  size_t end = 0;
  int speaker = -1;  ///< -1 = none of the key speakers
  double score = 0;  ///< per-frame LLR of the winning speaker vs background
};

/// Text-independent speaker spotting per the paper (Cohen & Lapidus):
/// "the algorithm is given a list of key speakers and is requested to
/// raise a flag when one of them is speaking... the algorithm has to
/// 'spot' the speaker independently of what she is saying."
///
/// Each key speaker gets a diagonal GMM trained on enrollment speech; a
/// pooled background GMM models "any speaker". A span is attributed to
/// the best-scoring key speaker when its likelihood ratio against the
/// background clears `threshold`.
class SpeakerSpotter {
 public:
  struct Options {
    /// Speaker models benefit from finer spectral resolution than the
    /// segmentation front end; the default constructor raises num_bands.
    FeatureOptions features;
    int mixtures_per_speaker = 8;
    int background_mixtures = 16;
    int em_iterations = 12;
    double threshold = 0.0;  ///< per-frame LLR acceptance threshold
  };

  /// Default configuration (24 filter bands, 8 mixtures per speaker —
  /// the most robust operating point in the calibration sweeps).
  SpeakerSpotter();
  explicit SpeakerSpotter(Options options);

  /// Trains speaker models from enrollment utterances and a background
  /// model from the pooled enrollment data plus `background` speech.
  Status Train(
      const std::map<int, std::vector<media::AudioSignal>>& enrollment,
      const std::vector<media::AudioSignal>& background, Rng& rng);

  /// Attributes one span. speaker = -1 when no key speaker clears the
  /// threshold.
  Result<SpeakerDetection> ScoreSpan(const media::AudioSignal& signal,
                                     size_t begin, size_t end) const;

  /// Attributes every speech segment.
  Result<std::vector<SpeakerDetection>> Spot(
      const media::AudioSignal& signal,
      const std::vector<media::AudioSegment>& segments) const;

  /// Distinct key speakers detected in the signal — the tele-consulting
  /// browsing question "How many speakers participate in a given
  /// conversation?".
  Result<int> CountSpeakers(
      const media::AudioSignal& signal,
      const std::vector<media::AudioSegment>& segments) const;

  bool trained() const { return !speaker_models_.empty(); }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::map<int, DiagGmm> speaker_models_;
  DiagGmm background_;
};

/// Fraction of truth speech segments attributed to the right speaker.
double SpeakerSpottingAccuracy(
    const std::vector<SpeakerDetection>& detections,
    const std::vector<media::AudioSegment>& truth);

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_SPEAKER_SPOTTING_H_
