#include "audio/browser.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace mmconf::audio {

using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;
using media::Conversation;

std::string BrowseReport::ToString() const {
  std::ostringstream out;
  out << "segments: " << segments.size() << " (speech " << speech_seconds
      << "s, music " << music_seconds << "s, artifacts "
      << artifact_seconds << "s, silence " << silence_seconds << "s)\n";
  out << "speakers: " << num_speakers << "\n";
  out << "keyword flags: " << keyword_flags.size();
  for (const auto& [keyword, count] : keyword_histogram) {
    out << "  kw" << keyword << " x" << count;
  }
  out << "\n";
  return out.str();
}

namespace {

AudioBrowser::Options DefaultBrowserOptions() {
  AudioBrowser::Options options;
  options.speakers.features.num_bands = 24;
  return options;
}

}  // namespace

AudioBrowser::AudioBrowser() : AudioBrowser(DefaultBrowserOptions()) {}

AudioBrowser::AudioBrowser(Options options)
    : options_(options),
      segmenter_(options.segmenter),
      speaker_spotter_(options.speakers),
      word_spotter_(options.words) {}

Status AudioBrowser::Train(const std::vector<Conversation>& corpus,
                           Rng& rng) {
  MMCONF_RETURN_IF_ERROR(segmenter_.TrainFromConversations(corpus, rng));
  std::map<int, std::vector<AudioSignal>> by_speaker;
  std::map<int, std::vector<AudioSignal>> by_keyword;
  std::vector<AudioSignal> garbage;
  std::set<int> watched(options_.watched_keywords.begin(),
                        options_.watched_keywords.end());
  for (const Conversation& conversation : corpus) {
    for (const AudioSegment& segment : conversation.segments) {
      if (segment.cls != AudioClass::kSpeech) continue;
      AudioSignal span =
          conversation.signal.Slice(segment.begin, segment.end);
      if (segment.speaker >= 0) by_speaker[segment.speaker].push_back(span);
      if (watched.count(segment.keyword) > 0) {
        by_keyword[segment.keyword].push_back(span);
      } else {
        garbage.push_back(span);
      }
    }
  }
  MMCONF_RETURN_IF_ERROR(speaker_spotter_.Train(by_speaker, {}, rng));
  MMCONF_RETURN_IF_ERROR(word_spotter_.Train(by_keyword, garbage, rng));
  trained_ = true;
  return Status::OK();
}

Result<BrowseReport> AudioBrowser::Browse(const AudioSignal& signal) const {
  if (!trained_) {
    return Status::FailedPrecondition("browser is not trained");
  }
  BrowseReport report;
  MMCONF_ASSIGN_OR_RETURN(report.segments, segmenter_.Segment(signal));
  const double rate = signal.sample_rate();
  for (const AudioSegment& segment : report.segments) {
    double seconds = static_cast<double>(segment.length()) / rate;
    switch (segment.cls) {
      case AudioClass::kSpeech:
        report.speech_seconds += seconds;
        break;
      case AudioClass::kMusic:
        report.music_seconds += seconds;
        break;
      case AudioClass::kArtifact:
        report.artifact_seconds += seconds;
        break;
      case AudioClass::kSilence:
        report.silence_seconds += seconds;
        break;
    }
  }
  MMCONF_ASSIGN_OR_RETURN(report.speaker_timeline,
                          speaker_spotter_.Spot(signal, report.segments));
  std::set<int> speakers;
  for (const SpeakerDetection& detection : report.speaker_timeline) {
    if (detection.speaker >= 0) speakers.insert(detection.speaker);
  }
  report.num_speakers = static_cast<int>(speakers.size());
  MMCONF_ASSIGN_OR_RETURN(report.keyword_flags,
                          word_spotter_.Spot(signal, report.segments));
  for (const WordDetection& detection : report.keyword_flags) {
    ++report.keyword_histogram[detection.keyword];
  }
  return report;
}

}  // namespace mmconf::audio
