#ifndef MMCONF_AUDIO_HMM_H_
#define MMCONF_AUDIO_HMM_H_

#include <vector>

#include "audio/gmm.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace mmconf::audio {

/// Result of Viterbi decoding.
struct ViterbiResult {
  std::vector<int> states;  ///< best state per frame
  double log_likelihood = 0;
};

/// Continuous-Density Hidden Markov Model with diagonal-GMM emissions —
/// the paper's core voice-processing tool ("The main tool by means of
/// which the above algorithms was implemented is the Continuous Density
/// Hidden Markov Model... It was used both for training and for matching
/// purposes").
///
/// Supports two topologies: left-to-right (keyword models: each state may
/// stay or advance one state) and ergodic (garbage / background models:
/// all transitions allowed). Transition zeros are structural — Baum-Welch
/// re-estimation preserves them.
class Hmm {
 public:
  Hmm() = default;

  /// Left-to-right model: state i transitions to i or i+1 only, entry in
  /// state 0.
  static Hmm LeftToRight(int num_states, int num_mixtures, int dim);

  /// Fully connected model with uniform initial distribution.
  static Hmm Ergodic(int num_states, int num_mixtures, int dim);

  int num_states() const { return static_cast<int>(emissions_.size()); }
  int dim() const { return dim_; }
  const DiagGmm& emission(int state) const {
    return emissions_[static_cast<size_t>(state)];
  }
  double log_transition(int from, int to) const {
    return log_trans_[static_cast<size_t>(from)][static_cast<size_t>(to)];
  }
  double log_initial(int state) const {
    return log_init_[static_cast<size_t>(state)];
  }

  /// log P(sequence | model), summed over all paths (forward algorithm).
  /// -inf for an empty sequence.
  Result<double> LogForward(const std::vector<FeatureVector>& seq) const;

  /// Per-frame normalized forward score, the standard length-invariant
  /// matching score for spotting.
  Result<double> AvgLogForward(const std::vector<FeatureVector>& seq) const;

  /// Most likely state path and its joint log-likelihood.
  Result<ViterbiResult> Viterbi(const std::vector<FeatureVector>& seq) const;

  /// Baum-Welch training over multiple observation sequences.
  /// Initialization: every sequence is segmented uniformly across states
  /// (left-to-right) or frames assigned round-robin (ergodic), each
  /// state's GMM is trained on its share, then `iterations` of EM refine
  /// transitions and emissions jointly. Sequences shorter than the state
  /// count are skipped; at least one usable sequence is required.
  Status Train(const std::vector<std::vector<FeatureVector>>& sequences,
               int iterations, Rng& rng);

 private:
  Hmm(int num_states, int num_mixtures, int dim, bool left_to_right);

  /// Forward/backward log-probability lattices.
  Result<std::vector<std::vector<double>>> ForwardLattice(
      const std::vector<FeatureVector>& seq) const;
  std::vector<std::vector<double>> BackwardLattice(
      const std::vector<FeatureVector>& seq) const;

  int dim_ = 0;
  bool left_to_right_ = false;
  std::vector<DiagGmm> emissions_;
  std::vector<double> log_init_;
  std::vector<std::vector<double>> log_trans_;
};

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_HMM_H_
