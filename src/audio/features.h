#ifndef MMCONF_AUDIO_FEATURES_H_
#define MMCONF_AUDIO_FEATURES_H_

#include <vector>

#include "common/result.h"
#include "media/audio.h"

namespace mmconf::audio {

/// One acoustic feature vector.
using FeatureVector = std::vector<double>;

/// Framing / analysis configuration.
struct FeatureOptions {
  int frame_length = 200;  ///< samples per frame (25 ms @ 8 kHz)
  int hop = 80;            ///< frame advance (10 ms @ 8 kHz)
  int num_bands = 12;      ///< triangular filter-bank channels
  double min_hz = 100;
  double max_hz = 3600;
};

/// Dimension of the vectors ExtractFeatures produces:
/// num_bands log filter-bank energies + log frame energy + zero-crossing
/// rate.
int FeatureDim(const FeatureOptions& options);

/// Short-time analysis front end shared by all CD-HMM users (the paper's
/// segmentation, word spotting and speaker spotting all consume the same
/// frame stream): Hamming-windowed frames -> magnitude spectrum (radix-2
/// FFT) -> triangular filter bank -> log energies, plus log total energy
/// and zero-crossing rate.
///
/// Returns one FeatureVector per complete frame; a signal shorter than
/// one frame yields an empty sequence.
Result<std::vector<FeatureVector>> ExtractFeatures(
    const media::AudioSignal& signal, const FeatureOptions& options);

/// Sample index of the center of frame `frame_index` under `options`.
size_t FrameCenter(const FeatureOptions& options, size_t frame_index);

/// Frame index whose window covers sample `sample` (by frame start).
size_t FrameIndexForSample(const FeatureOptions& options, size_t sample);

/// In-place radix-2 complex FFT; `real`/`imag` length must be a power of
/// two. Exposed for tests.
void Fft(std::vector<double>& real, std::vector<double>& imag);

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_FEATURES_H_
