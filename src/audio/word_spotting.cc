#include "audio/word_spotting.h"

#include <algorithm>

namespace mmconf::audio {

using media::AudioSegment;
using media::AudioSignal;

WordSpotter::WordSpotter() : WordSpotter(Options()) {}

WordSpotter::WordSpotter(Options options) : options_(std::move(options)) {}

Status WordSpotter::Train(
    const std::map<int, std::vector<AudioSignal>>& examples,
    const std::vector<AudioSignal>& garbage, Rng& rng) {
  keyword_models_.clear();
  const int dim = FeatureDim(options_.features);
  for (const auto& [keyword, utterances] : examples) {
    std::vector<std::vector<FeatureVector>> sequences;
    for (const AudioSignal& utterance : utterances) {
      MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                              ExtractFeatures(utterance, options_.features));
      if (!features.empty()) sequences.push_back(std::move(features));
    }
    Hmm model = Hmm::LeftToRight(options_.states_per_keyword,
                                 options_.mixtures, dim);
    Status trained = model.Train(sequences, options_.train_iterations, rng);
    if (!trained.ok()) {
      keyword_models_.clear();
      return Status::InvalidArgument("keyword " + std::to_string(keyword) +
                                     ": " + trained.message());
    }
    keyword_models_.emplace(keyword, std::move(model));
  }
  if (keyword_models_.empty()) {
    return Status::InvalidArgument("no keyword examples given");
  }
  std::vector<std::vector<FeatureVector>> garbage_sequences;
  for (const AudioSignal& signal : garbage) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                            ExtractFeatures(signal, options_.features));
    if (!features.empty()) garbage_sequences.push_back(std::move(features));
  }
  garbage_model_ = Hmm::Ergodic(options_.garbage_states, options_.mixtures,
                                dim);
  Status trained =
      garbage_model_.Train(garbage_sequences, options_.train_iterations, rng);
  if (!trained.ok()) {
    keyword_models_.clear();
    return Status::InvalidArgument("garbage model: " + trained.message());
  }
  return Status::OK();
}

Result<WordDetection> WordSpotter::ScoreSpan(const AudioSignal& signal,
                                             size_t begin, size_t end) const {
  if (keyword_models_.empty()) {
    return Status::FailedPrecondition("word spotter is not trained");
  }
  AudioSignal span = signal.Slice(begin, end);
  MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                          ExtractFeatures(span, options_.features));
  if (features.empty()) {
    return Status::InvalidArgument("span too short for one frame");
  }
  MMCONF_ASSIGN_OR_RETURN(double garbage_score,
                          garbage_model_.AvgLogForward(features));
  WordDetection detection;
  detection.begin = begin;
  detection.end = end;
  detection.keyword = -1;
  detection.score = -1e300;
  for (const auto& [keyword, model] : keyword_models_) {
    MMCONF_ASSIGN_OR_RETURN(double score, model.AvgLogForward(features));
    double llr = score - garbage_score;
    if (llr > detection.score) {
      detection.score = llr;
      detection.keyword = keyword;
    }
  }
  if (detection.score < options_.threshold) detection.keyword = -1;
  return detection;
}

Result<std::vector<WordDetection>> WordSpotter::Spot(
    const AudioSignal& signal,
    const std::vector<AudioSegment>& segments) const {
  std::vector<WordDetection> detections;
  for (const AudioSegment& segment : segments) {
    if (segment.cls != media::AudioClass::kSpeech) continue;
    Result<WordDetection> detection =
        ScoreSpan(signal, segment.begin, segment.end);
    if (!detection.ok()) continue;  // Span too short to score.
    if (detection->keyword >= 0) detections.push_back(*detection);
  }
  return detections;
}

Result<std::vector<WordDetection>> WordSpotter::SpotSliding(
    const AudioSignal& signal, double window_s, double hop_s) const {
  if (window_s <= 0 || hop_s <= 0) {
    return Status::InvalidArgument("window and hop must be positive");
  }
  const size_t window =
      static_cast<size_t>(window_s * signal.sample_rate());
  const size_t hop = static_cast<size_t>(hop_s * signal.sample_rate());
  if (window == 0 || hop == 0 || signal.size() < window) {
    return std::vector<WordDetection>{};
  }
  std::vector<WordDetection> flags;
  for (size_t begin = 0; begin + window <= signal.size(); begin += hop) {
    Result<WordDetection> detection =
        ScoreSpan(signal, begin, begin + window);
    if (!detection.ok()) continue;
    if (detection->keyword >= 0) flags.push_back(*detection);
  }
  // Merge runs of overlapping flags for the same keyword, keeping the
  // best-scoring window of each run.
  std::vector<WordDetection> merged;
  for (const WordDetection& flag : flags) {
    if (!merged.empty() && merged.back().keyword == flag.keyword &&
        flag.begin < merged.back().end) {
      if (flag.score > merged.back().score) {
        merged.back() = flag;
      } else {
        merged.back().end = std::max(merged.back().end, flag.end);
      }
    } else {
      merged.push_back(flag);
    }
  }
  return merged;
}

SpottingScore ScoreWordSpotting(const std::vector<WordDetection>& detections,
                                const std::vector<AudioSegment>& truth) {
  SpottingScore score;
  std::vector<bool> truth_matched(truth.size(), false);
  for (const WordDetection& detection : detections) {
    bool matched = false;
    for (size_t i = 0; i < truth.size(); ++i) {
      const AudioSegment& t = truth[i];
      if (t.keyword < 0 || t.keyword != detection.keyword) continue;
      size_t lo = std::max(detection.begin, t.begin);
      size_t hi = std::min(detection.end, t.end);
      size_t overlap = hi > lo ? hi - lo : 0;
      if (overlap * 2 > t.length()) {
        matched = true;
        if (!truth_matched[i]) {
          truth_matched[i] = true;
          ++score.true_detections;
        }
        break;
      }
    }
    if (!matched) ++score.false_alarms;
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].keyword >= 0 && !truth_matched[i]) ++score.misses;
  }
  return score;
}

}  // namespace mmconf::audio
