#include "audio/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmconf::audio {

double LogSumExp(const std::vector<double>& values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  double max_value = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(max_value)) return max_value;
  double sum = 0;
  for (double v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

DiagGmm::DiagGmm(int num_components, int dim)
    : dim_(dim),
      weights_(static_cast<size_t>(num_components),
               1.0 / std::max(1, num_components)),
      means_(static_cast<size_t>(num_components),
             FeatureVector(static_cast<size_t>(dim), 0.0)),
      variances_(static_cast<size_t>(num_components),
                 FeatureVector(static_cast<size_t>(dim), 1.0)) {}

namespace {

double LogGaussianDiag(const FeatureVector& x, const FeatureVector& mean,
                       const FeatureVector& variance) {
  double log_prob = -0.5 * static_cast<double>(x.size()) *
                    std::log(2.0 * M_PI);
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - mean[d];
    log_prob += -0.5 * std::log(variance[d]) -
                0.5 * diff * diff / variance[d];
  }
  return log_prob;
}

}  // namespace

std::vector<double> DiagGmm::ComponentLogJoint(const FeatureVector& x) const {
  std::vector<double> joint(weights_.size());
  for (size_t k = 0; k < weights_.size(); ++k) {
    joint[k] = std::log(weights_[k] + 1e-300) +
               LogGaussianDiag(x, means_[k], variances_[k]);
  }
  return joint;
}

double DiagGmm::LogLikelihood(const FeatureVector& x) const {
  return LogSumExp(ComponentLogJoint(x));
}

double DiagGmm::AvgLogLikelihood(
    const std::vector<FeatureVector>& xs) const {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double total = 0;
  for (const FeatureVector& x : xs) total += LogLikelihood(x);
  return total / static_cast<double>(xs.size());
}

Status DiagGmm::SetParameters(std::vector<double> weights,
                              std::vector<FeatureVector> means,
                              std::vector<FeatureVector> variances) {
  if (weights.size() != means.size() || weights.size() != variances.size() ||
      weights.empty()) {
    return Status::InvalidArgument("parameter arrays size mismatch");
  }
  size_t dim = means.front().size();
  for (size_t k = 0; k < means.size(); ++k) {
    if (means[k].size() != dim || variances[k].size() != dim) {
      return Status::InvalidArgument("inconsistent dimensions");
    }
    for (double& v : variances[k]) v = std::max(v, kVarianceFloor);
  }
  dim_ = static_cast<int>(dim);
  weights_ = std::move(weights);
  means_ = std::move(means);
  variances_ = std::move(variances);
  return Status::OK();
}

Status DiagGmm::Train(const std::vector<FeatureVector>& data, int iterations,
                      Rng& rng) {
  const size_t num_components = weights_.size();
  if (num_components == 0) {
    return Status::FailedPrecondition("model has no components");
  }
  if (data.size() < num_components) {
    return Status::InvalidArgument(
        "need at least " + std::to_string(num_components) +
        " training vectors, got " + std::to_string(data.size()));
  }
  for (const FeatureVector& x : data) {
    if (static_cast<int>(x.size()) != dim_) {
      return Status::InvalidArgument("training vector dimension mismatch");
    }
  }

  // K-means initialization from randomly chosen distinct points.
  std::vector<size_t> indices(data.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  for (size_t k = 0; k < num_components; ++k) means_[k] = data[indices[k]];
  std::vector<int> cluster(data.size(), 0);
  for (int pass = 0; pass < 10; ++pass) {
    bool changed = false;
    for (size_t i = 0; i < data.size(); ++i) {
      int best = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (size_t k = 0; k < num_components; ++k) {
        double distance = 0;
        for (size_t d = 0; d < data[i].size(); ++d) {
          double diff = data[i][d] - means_[k][d];
          distance += diff * diff;
        }
        if (distance < best_distance) {
          best_distance = distance;
          best = static_cast<int>(k);
        }
      }
      if (cluster[i] != best) {
        cluster[i] = best;
        changed = true;
      }
    }
    for (size_t k = 0; k < num_components; ++k) {
      FeatureVector sum(static_cast<size_t>(dim_), 0.0);
      size_t count = 0;
      for (size_t i = 0; i < data.size(); ++i) {
        if (cluster[i] == static_cast<int>(k)) {
          for (size_t d = 0; d < sum.size(); ++d) sum[d] += data[i][d];
          ++count;
        }
      }
      if (count > 0) {
        for (size_t d = 0; d < sum.size(); ++d) {
          means_[k][d] = sum[d] / static_cast<double>(count);
        }
      }
    }
    if (!changed) break;
  }
  // Initialize weights/variances from the clustering.
  for (size_t k = 0; k < num_components; ++k) {
    size_t count = 0;
    FeatureVector variance(static_cast<size_t>(dim_), 0.0);
    for (size_t i = 0; i < data.size(); ++i) {
      if (cluster[i] == static_cast<int>(k)) {
        ++count;
        for (size_t d = 0; d < variance.size(); ++d) {
          double diff = data[i][d] - means_[k][d];
          variance[d] += diff * diff;
        }
      }
    }
    weights_[k] = std::max(
        1e-6, static_cast<double>(count) / static_cast<double>(data.size()));
    for (size_t d = 0; d < variance.size(); ++d) {
      variances_[k][d] = std::max(
          kVarianceFloor,
          count > 1 ? variance[d] / static_cast<double>(count) : 1.0);
    }
  }

  // EM refinement.
  std::vector<std::vector<double>> responsibilities(
      data.size(), std::vector<double>(num_components));
  for (int iteration = 0; iteration < iterations; ++iteration) {
    // E step.
    for (size_t i = 0; i < data.size(); ++i) {
      std::vector<double> joint = ComponentLogJoint(data[i]);
      double norm = LogSumExp(joint);
      for (size_t k = 0; k < num_components; ++k) {
        responsibilities[i][k] = std::exp(joint[k] - norm);
      }
    }
    // M step.
    for (size_t k = 0; k < num_components; ++k) {
      double total = 0;
      FeatureVector mean(static_cast<size_t>(dim_), 0.0);
      for (size_t i = 0; i < data.size(); ++i) {
        total += responsibilities[i][k];
        for (size_t d = 0; d < mean.size(); ++d) {
          mean[d] += responsibilities[i][k] * data[i][d];
        }
      }
      if (total < 1e-8) continue;  // Dead component: keep old parameters.
      for (size_t d = 0; d < mean.size(); ++d) mean[d] /= total;
      FeatureVector variance(static_cast<size_t>(dim_), 0.0);
      for (size_t i = 0; i < data.size(); ++i) {
        for (size_t d = 0; d < variance.size(); ++d) {
          double diff = data[i][d] - mean[d];
          variance[d] += responsibilities[i][k] * diff * diff;
        }
      }
      for (size_t d = 0; d < variance.size(); ++d) {
        variance[d] = std::max(kVarianceFloor, variance[d] / total);
      }
      weights_[k] = total / static_cast<double>(data.size());
      means_[k] = std::move(mean);
      variances_[k] = std::move(variance);
    }
    // Renormalize weights.
    double weight_sum = 0;
    for (double w : weights_) weight_sum += w;
    for (double& w : weights_) w /= weight_sum;
  }
  return Status::OK();
}

}  // namespace mmconf::audio
