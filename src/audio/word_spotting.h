#ifndef MMCONF_AUDIO_WORD_SPOTTING_H_
#define MMCONF_AUDIO_WORD_SPOTTING_H_

#include <map>
#include <vector>

#include "audio/features.h"
#include "audio/hmm.h"
#include "common/result.h"
#include "common/rng.h"
#include "media/audio.h"

namespace mmconf::audio {

/// One word-spotting detection: keyword `keyword` claimed in samples
/// [begin, end) with log-likelihood-ratio `score` against the garbage
/// model.
struct WordDetection {
  size_t begin = 0;
  size_t end = 0;
  int keyword = -1;
  double score = 0;
};

/// Keyword ("word") spotting per the paper: "Word spotting algorithms
/// accept a list of keywords, and raise a flag when one of these words is
/// present in the continuous speech data. Word spotting systems are
/// usually based on keywords models and a 'garbage' model that models all
/// speech that is not a keyword... This algorithm works well when the
/// keywords list is a priori known and keyword models may be trained in
/// advance."
///
/// Each keyword gets a left-to-right CD-HMM trained on example
/// utterances; an ergodic CD-HMM trained on general speech is the garbage
/// model. A span is flagged for keyword k when the per-frame forward
/// score of model k beats the garbage model by at least `threshold`.
class WordSpotter {
 public:
  struct Options {
    FeatureOptions features;
    int states_per_keyword = 6;
    int mixtures = 2;
    int garbage_states = 4;
    int train_iterations = 4;
    double threshold = 0.0;  ///< LLR acceptance threshold (per frame)
  };

  WordSpotter();
  explicit WordSpotter(Options options);

  /// Trains keyword models (`examples[k]` = utterances of keyword k) and
  /// the garbage model (`garbage` = non-keyword speech).
  Status Train(const std::map<int, std::vector<media::AudioSignal>>& examples,
               const std::vector<media::AudioSignal>& garbage, Rng& rng);

  /// Scores one candidate span: best keyword and its LLR against garbage.
  /// A negative-LLR result means "no keyword" (keyword = -1).
  Result<WordDetection> ScoreSpan(const media::AudioSignal& signal,
                                  size_t begin, size_t end) const;

  /// Runs ScoreSpan over every speech segment in `segments` and returns
  /// the detections that clear the threshold.
  Result<std::vector<WordDetection>> Spot(
      const media::AudioSignal& signal,
      const std::vector<media::AudioSegment>& segments) const;

  /// Continuous spotting without prior segmentation ("raise a flag when
  /// one of these words is present in the continuous speech data"):
  /// slides a `window_s`-second window by `hop_s`, scores each window
  /// against the keyword and garbage models, and merges overlapping
  /// flags of the same keyword into one detection keeping the
  /// best-scoring span. `window_s` should approximate the keyword
  /// duration.
  Result<std::vector<WordDetection>> SpotSliding(
      const media::AudioSignal& signal, double window_s,
      double hop_s) const;

  bool trained() const { return !keyword_models_.empty(); }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::map<int, Hmm> keyword_models_;
  Hmm garbage_model_;
};

/// Spotting evaluation counters.
struct SpottingScore {
  int true_detections = 0;   ///< keyword present and correctly flagged
  int false_alarms = 0;      ///< flag raised on wrong keyword / non-keyword
  int misses = 0;            ///< keyword present but not flagged
  double DetectionRate() const {
    int total = true_detections + misses;
    return total > 0 ? static_cast<double>(true_detections) / total : 0;
  }
};

/// Scores detections against ground-truth segments (keyword >= 0 where a
/// keyword was uttered). A detection matches if its span overlaps a truth
/// span of the same keyword by more than half of the truth span.
SpottingScore ScoreWordSpotting(
    const std::vector<WordDetection>& detections,
    const std::vector<media::AudioSegment>& truth);

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_WORD_SPOTTING_H_
