#ifndef MMCONF_AUDIO_GMM_H_
#define MMCONF_AUDIO_GMM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "audio/features.h"

namespace mmconf::audio {

/// Numerically stable log(sum(exp(v))) over a vector.
double LogSumExp(const std::vector<double>& values);

/// Diagonal-covariance Gaussian mixture model — the emission density of
/// the CD-HMM ("Continuous Density Hidden Markov Model... the main tool
/// by means of which the above algorithms was implemented") and the
/// classifier behind speaker spotting.
class DiagGmm {
 public:
  DiagGmm() = default;
  /// Uninitialized model with `num_components` mixtures of dimension
  /// `dim`; call Train or set parameters before scoring.
  DiagGmm(int num_components, int dim);

  int num_components() const { return static_cast<int>(weights_.size()); }
  int dim() const { return dim_; }

  /// log p(x) under the mixture. `x` must have dimension dim().
  double LogLikelihood(const FeatureVector& x) const;

  /// Mean log-likelihood per frame over a sequence.
  double AvgLogLikelihood(const std::vector<FeatureVector>& xs) const;

  /// log of component-wise joint densities log(w_k p_k(x)) for all k.
  std::vector<double> ComponentLogJoint(const FeatureVector& x) const;

  /// Fits the model with `iterations` of EM after deterministic k-means
  /// initialization (seeded by `rng`). Variances are floored to keep the
  /// model proper on degenerate data. InvalidArgument when `data` has
  /// fewer vectors than components or inconsistent dimensions.
  Status Train(const std::vector<FeatureVector>& data, int iterations,
               Rng& rng);

  /// Direct parameter access (used by HMM Baum-Welch updates and tests).
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<FeatureVector>& means() const { return means_; }
  const std::vector<FeatureVector>& variances() const { return variances_; }
  Status SetParameters(std::vector<double> weights,
                       std::vector<FeatureVector> means,
                       std::vector<FeatureVector> variances);

  static constexpr double kVarianceFloor = 1e-3;

 private:
  int dim_ = 0;
  std::vector<double> weights_;
  std::vector<FeatureVector> means_;
  std::vector<FeatureVector> variances_;
};

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_GMM_H_
