#include "audio/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmconf::audio {

namespace {

constexpr double kLogZero = -1e30;

double SafeLog(double p) { return p > 0 ? std::log(p) : kLogZero; }

}  // namespace

Hmm::Hmm(int num_states, int num_mixtures, int dim, bool left_to_right)
    : dim_(dim),
      left_to_right_(left_to_right),
      emissions_(static_cast<size_t>(num_states),
                 DiagGmm(num_mixtures, dim)),
      log_init_(static_cast<size_t>(num_states), kLogZero),
      log_trans_(static_cast<size_t>(num_states),
                 std::vector<double>(static_cast<size_t>(num_states),
                                     kLogZero)) {
  if (left_to_right) {
    log_init_[0] = 0.0;
    for (int i = 0; i < num_states; ++i) {
      if (i + 1 < num_states) {
        log_trans_[static_cast<size_t>(i)][static_cast<size_t>(i)] =
            std::log(0.5);
        log_trans_[static_cast<size_t>(i)][static_cast<size_t>(i + 1)] =
            std::log(0.5);
      } else {
        log_trans_[static_cast<size_t>(i)][static_cast<size_t>(i)] = 0.0;
      }
    }
  } else {
    double log_uniform = -std::log(static_cast<double>(num_states));
    for (int i = 0; i < num_states; ++i) {
      log_init_[static_cast<size_t>(i)] = log_uniform;
      for (int j = 0; j < num_states; ++j) {
        log_trans_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            log_uniform;
      }
    }
  }
}

Hmm Hmm::LeftToRight(int num_states, int num_mixtures, int dim) {
  return Hmm(num_states, num_mixtures, dim, /*left_to_right=*/true);
}

Hmm Hmm::Ergodic(int num_states, int num_mixtures, int dim) {
  return Hmm(num_states, num_mixtures, dim, /*left_to_right=*/false);
}

Result<std::vector<std::vector<double>>> Hmm::ForwardLattice(
    const std::vector<FeatureVector>& seq) const {
  const size_t T = seq.size();
  const size_t N = emissions_.size();
  if (T == 0) return Status::InvalidArgument("empty observation sequence");
  std::vector<std::vector<double>> alpha(T, std::vector<double>(N));
  for (size_t j = 0; j < N; ++j) {
    alpha[0][j] = log_init_[j] + emissions_[j].LogLikelihood(seq[0]);
  }
  std::vector<double> terms(N);
  for (size_t t = 1; t < T; ++t) {
    for (size_t j = 0; j < N; ++j) {
      for (size_t i = 0; i < N; ++i) {
        terms[i] = alpha[t - 1][i] + log_trans_[i][j];
      }
      alpha[t][j] = LogSumExp(terms) + emissions_[j].LogLikelihood(seq[t]);
    }
  }
  return alpha;
}

std::vector<std::vector<double>> Hmm::BackwardLattice(
    const std::vector<FeatureVector>& seq) const {
  const size_t T = seq.size();
  const size_t N = emissions_.size();
  std::vector<std::vector<double>> beta(T, std::vector<double>(N, 0.0));
  std::vector<double> terms(N);
  for (size_t t = T - 1; t-- > 0;) {
    for (size_t i = 0; i < N; ++i) {
      for (size_t j = 0; j < N; ++j) {
        terms[j] = log_trans_[i][j] +
                   emissions_[j].LogLikelihood(seq[t + 1]) + beta[t + 1][j];
      }
      beta[t][i] = LogSumExp(terms);
    }
  }
  return beta;
}

Result<double> Hmm::LogForward(const std::vector<FeatureVector>& seq) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<std::vector<double>> alpha,
                          ForwardLattice(seq));
  return LogSumExp(alpha.back());
}

Result<double> Hmm::AvgLogForward(
    const std::vector<FeatureVector>& seq) const {
  MMCONF_ASSIGN_OR_RETURN(double total, LogForward(seq));
  return total / static_cast<double>(seq.size());
}

Result<ViterbiResult> Hmm::Viterbi(
    const std::vector<FeatureVector>& seq) const {
  const size_t T = seq.size();
  const size_t N = emissions_.size();
  if (T == 0) return Status::InvalidArgument("empty observation sequence");
  std::vector<std::vector<double>> delta(T, std::vector<double>(N));
  std::vector<std::vector<int>> backpointer(T, std::vector<int>(N, 0));
  for (size_t j = 0; j < N; ++j) {
    delta[0][j] = log_init_[j] + emissions_[j].LogLikelihood(seq[0]);
  }
  for (size_t t = 1; t < T; ++t) {
    for (size_t j = 0; j < N; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      int best_state = 0;
      for (size_t i = 0; i < N; ++i) {
        double score = delta[t - 1][i] + log_trans_[i][j];
        if (score > best) {
          best = score;
          best_state = static_cast<int>(i);
        }
      }
      delta[t][j] = best + emissions_[j].LogLikelihood(seq[t]);
      backpointer[t][j] = best_state;
    }
  }
  ViterbiResult result;
  result.states.resize(T);
  size_t last = 0;
  for (size_t j = 1; j < N; ++j) {
    if (delta[T - 1][j] > delta[T - 1][last]) last = j;
  }
  result.log_likelihood = delta[T - 1][last];
  result.states[T - 1] = static_cast<int>(last);
  for (size_t t = T - 1; t-- > 0;) {
    result.states[t] =
        backpointer[t + 1][static_cast<size_t>(result.states[t + 1])];
  }
  return result;
}

Status Hmm::Train(const std::vector<std::vector<FeatureVector>>& sequences,
                  int iterations, Rng& rng) {
  const size_t N = emissions_.size();
  if (N == 0) return Status::FailedPrecondition("model has no states");
  // Collect usable sequences and initialize emissions from a hard
  // segmentation.
  std::vector<const std::vector<FeatureVector>*> usable;
  for (const auto& seq : sequences) {
    if (seq.size() >= N) usable.push_back(&seq);
  }
  if (usable.empty()) {
    return Status::InvalidArgument(
        "no training sequence is at least as long as the state count");
  }
  std::vector<std::vector<FeatureVector>> state_data(N);
  for (const auto* seq : usable) {
    for (size_t t = 0; t < seq->size(); ++t) {
      size_t state =
          left_to_right_ ? t * N / seq->size() : t % N;  // uniform / RR
      state_data[state].push_back((*seq)[t]);
    }
  }
  for (size_t j = 0; j < N; ++j) {
    MMCONF_RETURN_IF_ERROR(emissions_[j].Train(state_data[j], 5, rng));
  }

  // Baum-Welch.
  const double kMinLogTrans = kLogZero;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    // Accumulators.
    std::vector<double> init_acc(N, 0.0);
    std::vector<std::vector<double>> trans_acc(
        N, std::vector<double>(N, 0.0));
    std::vector<double> state_occ(N, 0.0);
    // Per state, per mixture accumulators for emission re-estimation.
    const int M = emissions_[0].num_components();
    std::vector<std::vector<double>> mix_occ(
        N, std::vector<double>(static_cast<size_t>(M), 0.0));
    std::vector<std::vector<FeatureVector>> mix_mean_acc(
        N, std::vector<FeatureVector>(
               static_cast<size_t>(M),
               FeatureVector(static_cast<size_t>(dim_), 0.0)));
    std::vector<std::vector<FeatureVector>> mix_sq_acc = mix_mean_acc;

    for (const auto* seq_ptr : usable) {
      const std::vector<FeatureVector>& seq = *seq_ptr;
      const size_t T = seq.size();
      MMCONF_ASSIGN_OR_RETURN(std::vector<std::vector<double>> alpha,
                              ForwardLattice(seq));
      std::vector<std::vector<double>> beta = BackwardLattice(seq);
      double log_prob = LogSumExp(alpha.back());
      if (!std::isfinite(log_prob) || log_prob < kMinLogTrans / 2) {
        continue;  // Sequence unexplainable under current parameters.
      }
      // State occupancies (gamma) and transition counts (xi).
      for (size_t t = 0; t < T; ++t) {
        for (size_t j = 0; j < N; ++j) {
          double gamma = std::exp(alpha[t][j] + beta[t][j] - log_prob);
          if (t == 0) init_acc[j] += gamma;
          state_occ[j] += gamma;
          // Mixture responsibilities within the state.
          std::vector<double> joint = emissions_[j].ComponentLogJoint(seq[t]);
          double norm = LogSumExp(joint);
          for (int m = 0; m < M; ++m) {
            double r = gamma * std::exp(joint[static_cast<size_t>(m)] - norm);
            mix_occ[j][static_cast<size_t>(m)] += r;
            for (size_t d = 0; d < seq[t].size(); ++d) {
              mix_mean_acc[j][static_cast<size_t>(m)][d] += r * seq[t][d];
              mix_sq_acc[j][static_cast<size_t>(m)][d] +=
                  r * seq[t][d] * seq[t][d];
            }
          }
        }
        if (t + 1 < T) {
          for (size_t i = 0; i < N; ++i) {
            for (size_t j = 0; j < N; ++j) {
              if (log_trans_[i][j] <= kMinLogTrans) continue;  // structural 0
              double xi = std::exp(alpha[t][i] + log_trans_[i][j] +
                                   emissions_[j].LogLikelihood(seq[t + 1]) +
                                   beta[t + 1][j] - log_prob);
              trans_acc[i][j] += xi;
            }
          }
        }
      }
    }

    // Re-estimate initial probabilities.
    double init_total = 0;
    for (double v : init_acc) init_total += v;
    if (init_total > 0) {
      for (size_t j = 0; j < N; ++j) {
        if (log_init_[j] <= kMinLogTrans && left_to_right_) continue;
        log_init_[j] = SafeLog(init_acc[j] / init_total);
      }
    }
    // Re-estimate transitions (row-normalized, preserving structural
    // zeros).
    for (size_t i = 0; i < N; ++i) {
      double row_total = 0;
      for (size_t j = 0; j < N; ++j) row_total += trans_acc[i][j];
      if (row_total <= 0) continue;
      for (size_t j = 0; j < N; ++j) {
        if (log_trans_[i][j] <= kMinLogTrans) continue;
        log_trans_[i][j] = SafeLog(trans_acc[i][j] / row_total + 1e-10);
      }
    }
    // Re-estimate emissions.
    for (size_t j = 0; j < N; ++j) {
      if (state_occ[j] < 1e-6) continue;
      std::vector<double> weights(static_cast<size_t>(M));
      std::vector<FeatureVector> means(
          static_cast<size_t>(M), FeatureVector(static_cast<size_t>(dim_)));
      std::vector<FeatureVector> variances = means;
      double occ_total = 0;
      for (int m = 0; m < M; ++m) occ_total += mix_occ[j][static_cast<size_t>(m)];
      bool usable_state = occ_total > 1e-6;
      if (!usable_state) continue;
      for (int m = 0; m < M; ++m) {
        double occ = mix_occ[j][static_cast<size_t>(m)];
        if (occ < 1e-8) {
          // Dead mixture: keep previous parameters.
          weights[static_cast<size_t>(m)] =
              emissions_[j].weights()[static_cast<size_t>(m)];
          means[static_cast<size_t>(m)] =
              emissions_[j].means()[static_cast<size_t>(m)];
          variances[static_cast<size_t>(m)] =
              emissions_[j].variances()[static_cast<size_t>(m)];
          continue;
        }
        weights[static_cast<size_t>(m)] = occ / occ_total;
        for (size_t d = 0; d < static_cast<size_t>(dim_); ++d) {
          double mean = mix_mean_acc[j][static_cast<size_t>(m)][d] / occ;
          double variance =
              mix_sq_acc[j][static_cast<size_t>(m)][d] / occ - mean * mean;
          means[static_cast<size_t>(m)][d] = mean;
          variances[static_cast<size_t>(m)][d] =
              std::max(DiagGmm::kVarianceFloor, variance);
        }
      }
      // Renormalize weights (dead mixtures kept their stale weight).
      double weight_sum = 0;
      for (double w : weights) weight_sum += w;
      for (double& w : weights) w /= weight_sum;
      MMCONF_RETURN_IF_ERROR(emissions_[j].SetParameters(
          std::move(weights), std::move(means), std::move(variances)));
    }
  }
  return Status::OK();
}

}  // namespace mmconf::audio
