#ifndef MMCONF_AUDIO_SEGMENTATION_H_
#define MMCONF_AUDIO_SEGMENTATION_H_

#include <map>
#include <vector>

#include "audio/features.h"
#include "audio/gmm.h"
#include "common/result.h"
#include "common/rng.h"
#include "media/audio.h"
#include "media/synthetic.h"

namespace mmconf::audio {

/// Automatic segmentation of audio signals — the first function of the
/// paper's voice module: "The segmentation algorithm is able to
/// distinguish among signal and background noise and among the various
/// types of signals present in the audio information. The audio data may
/// contain speech, music, or audio artifacts, which are automatically
/// segmented."
///
/// Implementation: one diagonal GMM per AudioClass over the shared
/// front-end features, frame-wise maximum-likelihood classification,
/// median smoothing, then run-length merging into segments.
class AudioSegmenter {
 public:
  struct Options {
    FeatureOptions features;
    int mixtures_per_class = 4;
    int em_iterations = 8;
    int smoothing_radius = 5;  ///< frames of median smoothing each side
  };

  AudioSegmenter();
  explicit AudioSegmenter(Options options);

  /// Trains the per-class models from labeled signals. Every class that
  /// appears in `examples` must have enough frames for its GMM.
  Status Train(
      const std::map<media::AudioClass, std::vector<media::AudioSignal>>&
          examples,
      Rng& rng);

  /// Convenience: train from labeled conversations (uses their
  /// ground-truth segments as supervision).
  Status TrainFromConversations(
      const std::vector<media::Conversation>& conversations, Rng& rng);

  /// Segments a signal into class-labeled spans (speaker/keyword fields
  /// are left at -1; they are filled by the spotting modules).
  Result<std::vector<media::AudioSegment>> Segment(
      const media::AudioSignal& signal) const;

  /// Per-frame class decisions before merging (exposed for evaluation).
  Result<std::vector<media::AudioClass>> ClassifyFrames(
      const media::AudioSignal& signal) const;

  const Options& options() const { return options_; }
  bool trained() const { return !models_.empty(); }

 private:
  Options options_;
  std::map<media::AudioClass, DiagGmm> models_;
};

/// Fraction of samples whose hypothesized class matches the ground truth
/// (both segment lists must cover [0, total_samples)).
double SegmentationFrameAccuracy(
    const std::vector<media::AudioSegment>& hypothesis,
    const std::vector<media::AudioSegment>& truth, size_t total_samples);

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_SEGMENTATION_H_
