#include "audio/speaker_spotting.h"

#include <algorithm>
#include <set>

namespace mmconf::audio {

using media::AudioSegment;
using media::AudioSignal;

namespace {

SpeakerSpotter::Options DefaultSpeakerOptions() {
  SpeakerSpotter::Options options;
  options.features.num_bands = 24;
  return options;
}

}  // namespace

SpeakerSpotter::SpeakerSpotter() : SpeakerSpotter(DefaultSpeakerOptions()) {}

SpeakerSpotter::SpeakerSpotter(Options options)
    : options_(std::move(options)) {}

namespace {

/// Makes features loudness-invariant: band energies become spectral
/// *shape* (band minus total log-energy). Speaker identity lives in the
/// vocal-tract spectrum, not in how loudly the utterance was recorded —
/// text-independent spotting must not key on level.
void NormalizeSpectralShape(std::vector<FeatureVector>& features,
                            int num_bands) {
  for (FeatureVector& f : features) {
    double total = f[static_cast<size_t>(num_bands)];
    for (int b = 0; b < num_bands; ++b) {
      f[static_cast<size_t>(b)] -= total;
    }
  }
}

}  // namespace

Status SpeakerSpotter::Train(
    const std::map<int, std::vector<AudioSignal>>& enrollment,
    const std::vector<AudioSignal>& background, Rng& rng) {
  speaker_models_.clear();
  std::vector<FeatureVector> pooled;
  for (const auto& [speaker, utterances] : enrollment) {
    std::vector<FeatureVector> data;
    for (const AudioSignal& utterance : utterances) {
      MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                              ExtractFeatures(utterance, options_.features));
      NormalizeSpectralShape(features, options_.features.num_bands);
      data.insert(data.end(), features.begin(), features.end());
    }
    pooled.insert(pooled.end(), data.begin(), data.end());
    DiagGmm model(options_.mixtures_per_speaker,
                  FeatureDim(options_.features));
    Status trained = model.Train(data, options_.em_iterations, rng);
    if (!trained.ok()) {
      speaker_models_.clear();
      return Status::InvalidArgument("speaker " + std::to_string(speaker) +
                                     ": " + trained.message());
    }
    speaker_models_.emplace(speaker, std::move(model));
  }
  if (speaker_models_.empty()) {
    return Status::InvalidArgument("no enrollment data given");
  }
  for (const AudioSignal& signal : background) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                            ExtractFeatures(signal, options_.features));
    NormalizeSpectralShape(features, options_.features.num_bands);
    pooled.insert(pooled.end(), features.begin(), features.end());
  }
  background_ = DiagGmm(options_.background_mixtures,
                        FeatureDim(options_.features));
  Status trained = background_.Train(pooled, options_.em_iterations, rng);
  if (!trained.ok()) {
    speaker_models_.clear();
    return Status::InvalidArgument("background model: " + trained.message());
  }
  return Status::OK();
}

Result<SpeakerDetection> SpeakerSpotter::ScoreSpan(const AudioSignal& signal,
                                                   size_t begin,
                                                   size_t end) const {
  if (speaker_models_.empty()) {
    return Status::FailedPrecondition("speaker spotter is not trained");
  }
  AudioSignal span = signal.Slice(begin, end);
  MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                          ExtractFeatures(span, options_.features));
  if (features.empty()) {
    return Status::InvalidArgument("span too short for one frame");
  }
  NormalizeSpectralShape(features, options_.features.num_bands);
  double background_score = background_.AvgLogLikelihood(features);
  SpeakerDetection detection;
  detection.begin = begin;
  detection.end = end;
  detection.speaker = -1;
  detection.score = -1e300;
  for (const auto& [speaker, model] : speaker_models_) {
    double llr = model.AvgLogLikelihood(features) - background_score;
    if (llr > detection.score) {
      detection.score = llr;
      detection.speaker = speaker;
    }
  }
  if (detection.score < options_.threshold) detection.speaker = -1;
  return detection;
}

Result<std::vector<SpeakerDetection>> SpeakerSpotter::Spot(
    const AudioSignal& signal,
    const std::vector<AudioSegment>& segments) const {
  std::vector<SpeakerDetection> detections;
  for (const AudioSegment& segment : segments) {
    if (segment.cls != media::AudioClass::kSpeech) continue;
    Result<SpeakerDetection> detection =
        ScoreSpan(signal, segment.begin, segment.end);
    if (!detection.ok()) continue;  // Too short to score.
    detections.push_back(*detection);
  }
  return detections;
}

Result<int> SpeakerSpotter::CountSpeakers(
    const AudioSignal& signal,
    const std::vector<AudioSegment>& segments) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<SpeakerDetection> detections,
                          Spot(signal, segments));
  std::set<int> speakers;
  for (const SpeakerDetection& detection : detections) {
    if (detection.speaker >= 0) speakers.insert(detection.speaker);
  }
  return static_cast<int>(speakers.size());
}

double SpeakerSpottingAccuracy(const std::vector<SpeakerDetection>& detections,
                               const std::vector<AudioSegment>& truth) {
  int total = 0, correct = 0;
  for (const AudioSegment& t : truth) {
    if (t.cls != media::AudioClass::kSpeech || t.speaker < 0) continue;
    ++total;
    for (const SpeakerDetection& detection : detections) {
      size_t lo = std::max(detection.begin, t.begin);
      size_t hi = std::min(detection.end, t.end);
      size_t overlap = hi > lo ? hi - lo : 0;
      if (overlap * 2 > t.length()) {
        if (detection.speaker == t.speaker) ++correct;
        break;
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace mmconf::audio
