#ifndef MMCONF_AUDIO_BROWSER_H_
#define MMCONF_AUDIO_BROWSER_H_

#include <map>
#include <string>
#include <vector>

#include "audio/segmentation.h"
#include "audio/speaker_spotting.h"
#include "audio/word_spotting.h"
#include "common/result.h"
#include "common/rng.h"
#include "media/synthetic.h"

namespace mmconf::audio {

/// Everything the tele-consulting questions need, in one pass: "it is
/// often required to browse an audio file and answer questions such as:
/// How many speakers participate in a given conversation? Who are the
/// speakers? ... What is the subject of the talk?"
struct BrowseReport {
  /// Automatic segmentation of the recording.
  std::vector<media::AudioSegment> segments;
  /// Speech segments attributed to key speakers (speaker = -1 when no
  /// key speaker cleared the threshold).
  std::vector<SpeakerDetection> speaker_timeline;
  /// Distinct key speakers heard.
  int num_speakers = 0;
  /// Watched-keyword flags.
  std::vector<WordDetection> keyword_flags;
  /// keyword id -> occurrences: the crude "subject of the talk" signal
  /// (which watched topics dominate).
  std::map<int, int> keyword_histogram;
  /// Seconds of speech / music / artifacts / silence.
  double speech_seconds = 0;
  double music_seconds = 0;
  double artifact_seconds = 0;
  double silence_seconds = 0;

  std::string ToString() const;
};

/// Facade over the voice module: one Train() from a labeled corpus, one
/// Browse() per recording. Owns an AudioSegmenter, a SpeakerSpotter, and
/// a WordSpotter configured consistently.
class AudioBrowser {
 public:
  struct Options {
    AudioSegmenter::Options segmenter;
    SpeakerSpotter::Options speakers;
    WordSpotter::Options words;
    /// Keyword ids from the corpus ground truth to watch; everything
    /// else trains the garbage model.
    std::vector<int> watched_keywords = {0, 1};
  };

  AudioBrowser();
  explicit AudioBrowser(Options options);

  /// Trains all three tools from ground-truth-labeled conversations
  /// (enrollment by speaker and keyword is cut from the labels).
  Status Train(const std::vector<media::Conversation>& corpus, Rng& rng);

  /// Full browse of a recording: segment, attribute speakers, spot the
  /// watched keywords. FailedPrecondition before Train.
  Result<BrowseReport> Browse(const media::AudioSignal& signal) const;

  bool trained() const { return trained_; }
  const AudioSegmenter& segmenter() const { return segmenter_; }
  const SpeakerSpotter& speaker_spotter() const { return speaker_spotter_; }
  const WordSpotter& word_spotter() const { return word_spotter_; }

 private:
  Options options_;
  AudioSegmenter segmenter_;
  SpeakerSpotter speaker_spotter_;
  WordSpotter word_spotter_;
  bool trained_ = false;
};

}  // namespace mmconf::audio

#endif  // MMCONF_AUDIO_BROWSER_H_
