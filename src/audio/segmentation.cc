#include "audio/segmentation.h"

#include <algorithm>

namespace mmconf::audio {

using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;

AudioSegmenter::AudioSegmenter() : AudioSegmenter(Options()) {}

AudioSegmenter::AudioSegmenter(Options options)
    : options_(std::move(options)) {}

Status AudioSegmenter::Train(
    const std::map<AudioClass, std::vector<AudioSignal>>& examples,
    Rng& rng) {
  models_.clear();
  for (const auto& [cls, signals] : examples) {
    std::vector<FeatureVector> data;
    for (const AudioSignal& signal : signals) {
      MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                              ExtractFeatures(signal, options_.features));
      data.insert(data.end(), features.begin(), features.end());
    }
    DiagGmm model(options_.mixtures_per_class,
                  FeatureDim(options_.features));
    Status trained = model.Train(data, options_.em_iterations, rng);
    if (!trained.ok()) {
      models_.clear();
      return Status::InvalidArgument(
          std::string("training class ") + AudioClassToString(cls) +
          " failed: " + trained.message());
    }
    models_.emplace(cls, std::move(model));
  }
  if (models_.empty()) {
    return Status::InvalidArgument("no training classes given");
  }
  return Status::OK();
}

Status AudioSegmenter::TrainFromConversations(
    const std::vector<media::Conversation>& conversations, Rng& rng) {
  std::map<AudioClass, std::vector<AudioSignal>> examples;
  for (const media::Conversation& conv : conversations) {
    for (const AudioSegment& segment : conv.segments) {
      examples[segment.cls].push_back(
          conv.signal.Slice(segment.begin, segment.end));
    }
  }
  return Train(examples, rng);
}

Result<std::vector<AudioClass>> AudioSegmenter::ClassifyFrames(
    const AudioSignal& signal) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("segmenter is not trained");
  }
  MMCONF_ASSIGN_OR_RETURN(std::vector<FeatureVector> features,
                          ExtractFeatures(signal, options_.features));
  std::vector<AudioClass> labels;
  labels.reserve(features.size());
  for (const FeatureVector& x : features) {
    AudioClass best = models_.begin()->first;
    double best_score = -1e300;
    for (const auto& [cls, model] : models_) {
      double score = model.LogLikelihood(x);
      if (score > best_score) {
        best_score = score;
        best = cls;
      }
    }
    labels.push_back(best);
  }
  // Median smoothing (mode filter over a window, since labels are
  // categorical).
  if (options_.smoothing_radius > 0 && !labels.empty()) {
    std::vector<AudioClass> smoothed(labels.size());
    const int radius = options_.smoothing_radius;
    for (size_t i = 0; i < labels.size(); ++i) {
      int counts[4] = {0, 0, 0, 0};
      for (int d = -radius; d <= radius; ++d) {
        long j = static_cast<long>(i) + d;
        if (j < 0 || j >= static_cast<long>(labels.size())) continue;
        ++counts[static_cast<int>(labels[static_cast<size_t>(j)])];
      }
      int best = 0;
      for (int c = 1; c < 4; ++c) {
        if (counts[c] > counts[best]) best = c;
      }
      smoothed[i] = static_cast<AudioClass>(best);
    }
    labels = std::move(smoothed);
  }
  return labels;
}

Result<std::vector<AudioSegment>> AudioSegmenter::Segment(
    const AudioSignal& signal) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<AudioClass> labels,
                          ClassifyFrames(signal));
  std::vector<AudioSegment> segments;
  if (labels.empty()) return segments;
  const size_t hop = static_cast<size_t>(options_.features.hop);
  size_t begin = 0;
  for (size_t i = 1; i <= labels.size(); ++i) {
    if (i == labels.size() || labels[i] != labels[begin]) {
      AudioSegment segment;
      segment.begin = begin * hop;
      segment.end = i == labels.size() ? signal.size() : i * hop;
      segment.cls = labels[begin];
      segments.push_back(segment);
      begin = i;
    }
  }
  return segments;
}

namespace {

AudioClass ClassAtSample(const std::vector<AudioSegment>& segments,
                         size_t sample) {
  for (const AudioSegment& segment : segments) {
    if (sample >= segment.begin && sample < segment.end) return segment.cls;
  }
  return AudioClass::kSilence;
}

}  // namespace

double SegmentationFrameAccuracy(const std::vector<AudioSegment>& hypothesis,
                                 const std::vector<AudioSegment>& truth,
                                 size_t total_samples) {
  if (total_samples == 0) return 0;
  // Sample every 40th point for speed; boundaries dominate error anyway.
  size_t step = std::max<size_t>(1, total_samples / 20000);
  size_t checked = 0, correct = 0;
  for (size_t s = 0; s < total_samples; s += step) {
    ++checked;
    if (ClassAtSample(hypothesis, s) == ClassAtSample(truth, s)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(checked);
}

}  // namespace mmconf::audio
