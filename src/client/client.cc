#include "client/client.h"

#include <algorithm>

namespace mmconf::client {

void ClientModule::HandleDeliveries(
    const std::vector<net::Delivery>& deliveries) {
  for (const net::Delivery& delivery : deliveries) {
    if (delivery.to != node_) continue;
    bytes_received_ += delivery.bytes;
    ++deliveries_received_;
    last_delivery_at_ = std::max(last_delivery_at_, delivery.delivered_at);
  }
}

namespace {

Status RenderNode(const doc::MultimediaDocument& document,
                  const cpnet::Assignment& configuration,
                  const doc::MultimediaComponent* node, int depth,
                  std::string& out) {
  MMCONF_ASSIGN_OR_RETURN(bool visible,
                          document.IsVisible(configuration, node->name()));
  MMCONF_ASSIGN_OR_RETURN(
      doc::MMPresentation presentation,
      document.PresentationFor(configuration, node->name()));
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += node->IsComposite() ? "+ " : "- ";
  out += node->name();
  out += "  [";
  out += presentation.name;
  out += visible ? "]" : "] (hidden)";
  out += '\n';
  if (const doc::CompositeMultimediaComponent* composite =
          node->AsComposite()) {
    for (const auto& child : composite->children()) {
      MMCONF_RETURN_IF_ERROR(RenderNode(document, configuration,
                                        child.get(), depth + 1, out));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> RenderDocumentView(
    const doc::MultimediaDocument& document,
    const cpnet::Assignment& configuration) {
  std::string out;
  MMCONF_RETURN_IF_ERROR(
      RenderNode(document, configuration, &document.Content(), 0, out));
  return out;
}

}  // namespace mmconf::client
