#ifndef MMCONF_CLIENT_CLIENT_H_
#define MMCONF_CLIENT_CLIENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cpnet/assignment.h"
#include "doc/document.h"
#include "net/network.h"

namespace mmconf::client {

/// The client-module tier of Fig. 1: "responsible for displaying the
/// multi-media documents as requested by the server" and for forwarding
/// the viewer's interactions. In this reproduction the client renders a
/// text-mode version of the paper's Fig. 5 GUI (document tree on the
/// left, chosen presentation per component on the right) and keeps
/// delivery statistics.
class ClientModule {
 public:
  ClientModule(std::string viewer, net::NodeId node)
      : viewer_(std::move(viewer)), node_(node) {}

  const std::string& viewer() const { return viewer_; }
  net::NodeId node() const { return node_; }

  /// Ingests network deliveries addressed to this client.
  void HandleDeliveries(const std::vector<net::Delivery>& deliveries);

  size_t bytes_received() const { return bytes_received_; }
  size_t deliveries_received() const { return deliveries_received_; }
  MicrosT last_delivery_at() const { return last_delivery_at_; }

 private:
  std::string viewer_;
  net::NodeId node_;
  size_t bytes_received_ = 0;
  size_t deliveries_received_ = 0;
  MicrosT last_delivery_at_ = 0;
};

/// Renders the Fig. 5 client view as text: the hierarchical structure of
/// the whole document (left side) with each component's current
/// presentation form and visibility (right side).
Result<std::string> RenderDocumentView(const doc::MultimediaDocument& document,
                                       const cpnet::Assignment& configuration);

}  // namespace mmconf::client

#endif  // MMCONF_CLIENT_CLIENT_H_
