#ifndef MMCONF_CLIENT_LAYOUT_H_
#define MMCONF_CLIENT_LAYOUT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cpnet/assignment.h"
#include "doc/document.h"
#include "media/image.h"

namespace mmconf::client {

/// Where one visible component lands in the client window.
struct Placement {
  std::string component;
  doc::MMPresentation presentation;
  media::Rect rect;   ///< position and final (possibly scaled) size
  double scale = 1.0; ///< 1.0 = natural size, < 1 when shrunk to fit
};

/// Result of laying out a configuration.
struct Layout {
  std::vector<Placement> placements;
  int viewport_width = 0;
  int viewport_height = 0;
  /// False when even fully shrunk content exceeded the viewport and
  /// trailing components were dropped (reported, never silently).
  bool everything_fits = true;
  std::vector<std::string> dropped_components;
};

/// Natural on-screen size of a presentation form (the layout engine's
/// sizing policy; roughly the paper's GUI proportions — images dominate,
/// icons are glyphs, text gets a reading column).
media::Rect NaturalSize(const doc::MMPresentation& presentation);

/// Shelf-packs the visible content of `configuration` into a
/// viewport_width x viewport_height window, in document (pre-order)
/// order — the right-hand pane of the paper's Fig. 5 GUI under layout
/// constraints (its cited ZyX line of work). Components are placed at
/// natural size while they fit a shelf; when a shelf row overflows the
/// viewport height, remaining content is scaled down stepwise (x0.5)
/// and, if still overflowing at quarter size, dropped and reported.
///
/// Guarantees (tested): placements never overlap, never exceed the
/// viewport, and contain exactly the visible non-hidden components
/// unless dropped.
Result<Layout> LayoutView(const doc::MultimediaDocument& document,
                          const cpnet::Assignment& configuration,
                          int viewport_width, int viewport_height);

/// Renders a layout as a text sketch (one line per placement).
std::string LayoutToString(const Layout& layout);

}  // namespace mmconf::client

#endif  // MMCONF_CLIENT_LAYOUT_H_
