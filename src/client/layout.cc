#include "client/layout.h"

#include <algorithm>
#include <sstream>

namespace mmconf::client {

using doc::MMPresentation;
using doc::PresentationKind;
using media::Rect;

Rect NaturalSize(const MMPresentation& presentation) {
  switch (presentation.kind) {
    case PresentationKind::kHidden:
      return {0, 0, 0, 0};
    case PresentationKind::kImage:
      return {0, 0, 256, 256};
    case PresentationKind::kSegmentedImage:
      return {0, 0, 256, 256};
    case PresentationKind::kThumbnail: {
      int drop = std::max(1, presentation.resolution_drop);
      int side = std::max(16, 256 >> drop);
      return {0, 0, side, side};
    }
    case PresentationKind::kIcon:
      return {0, 0, 24, 24};
    case PresentationKind::kText:
      return {0, 0, 240, 120};
    case PresentationKind::kAudio:
      return {0, 0, 240, 48};
    case PresentationKind::kAudioSummary:
      return {0, 0, 240, 24};
  }
  return {0, 0, 0, 0};
}

Result<Layout> LayoutView(const doc::MultimediaDocument& document,
                          const cpnet::Assignment& configuration,
                          int viewport_width, int viewport_height) {
  if (viewport_width <= 0 || viewport_height <= 0) {
    return Status::InvalidArgument("viewport must be positive");
  }
  Layout layout;
  layout.viewport_width = viewport_width;
  layout.viewport_height = viewport_height;

  // Collect the visible primitive content in document order.
  struct Item {
    std::string name;
    MMPresentation presentation;
    Rect natural;
  };
  std::vector<Item> items;
  for (size_t i = 0; i < document.num_components(); ++i) {
    const doc::MultimediaComponent* component = document.components()[i];
    if (component->IsComposite()) continue;
    MMCONF_ASSIGN_OR_RETURN(
        bool visible, document.IsVisible(configuration, component->name()));
    if (!visible) continue;
    MMCONF_ASSIGN_OR_RETURN(
        MMPresentation presentation,
        document.PresentationFor(configuration, component->name()));
    if (presentation.kind == PresentationKind::kHidden) continue;
    items.push_back(
        {component->name(), presentation, NaturalSize(presentation)});
  }

  // Shelf packing with stepwise shrink on overflow.
  const int kGap = 8;
  double scale = 1.0;
  int x = kGap, y = kGap, shelf_height = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    const Item& item = items[i];
    int w = std::max(1, static_cast<int>(item.natural.width * scale));
    int h = std::max(1, static_cast<int>(item.natural.height * scale));
    // New shelf if the item does not fit horizontally.
    if (x + w + kGap > viewport_width && x > kGap) {
      x = kGap;
      y += shelf_height + kGap;
      shelf_height = 0;
    }
    // Vertical overflow: shrink everything placed so far and retry from
    // scratch at the smaller scale (up to quarter size), else drop.
    if (y + h + kGap > viewport_height ||
        x + w + kGap > viewport_width) {
      if (scale > 0.26) {
        scale *= 0.5;
        layout.placements.clear();
        x = kGap;
        y = kGap;
        shelf_height = 0;
        i = static_cast<size_t>(-1);  // restart loop
        continue;
      }
      layout.everything_fits = false;
      layout.dropped_components.push_back(item.name);
      continue;
    }
    Placement placement;
    placement.component = item.name;
    placement.presentation = item.presentation;
    placement.rect = {x, y, w, h};
    placement.scale = scale;
    layout.placements.push_back(std::move(placement));
    x += w + kGap;
    shelf_height = std::max(shelf_height, h);
  }
  return layout;
}

std::string LayoutToString(const Layout& layout) {
  std::ostringstream out;
  out << layout.viewport_width << "x" << layout.viewport_height
      << " viewport, " << layout.placements.size() << " placements";
  if (!layout.everything_fits) {
    out << " (" << layout.dropped_components.size() << " dropped)";
  }
  out << "\n";
  for (const Placement& placement : layout.placements) {
    out << "  " << placement.component << " ["
        << doc::PresentationKindToString(placement.presentation.kind)
        << "] at (" << placement.rect.x << "," << placement.rect.y << ") "
        << placement.rect.width << "x" << placement.rect.height;
    if (placement.scale < 1.0) out << " @" << placement.scale;
    out << "\n";
  }
  return out.str();
}

}  // namespace mmconf::client
