#include "cpnet/serialize.h"

#include <sstream>

namespace mmconf::cpnet {

std::string ToText(const CpNet& net) {
  std::ostringstream out;
  out << "cpnet 1\n";
  for (size_t v = 0; v < net.num_variables(); ++v) {
    VarId var = static_cast<VarId>(v);
    out << "var " << net.VariableName(var) << ' ' << net.DomainSize(var);
    for (const std::string& name : net.ValueNames(var)) out << ' ' << name;
    out << '\n';
  }
  for (size_t v = 0; v < net.num_variables(); ++v) {
    VarId var = static_cast<VarId>(v);
    if (net.Parents(var).empty()) continue;
    out << "parents " << net.VariableName(var);
    for (VarId p : net.Parents(var)) out << ' ' << net.VariableName(p);
    out << '\n';
  }
  for (size_t v = 0; v < net.num_variables(); ++v) {
    VarId var = static_cast<VarId>(v);
    const Cpt& cpt = net.CptOf(var);
    const std::vector<VarId>& parents = net.Parents(var);
    for (size_t row = 0; row < cpt.num_rows(); ++row) {
      Result<PreferenceRanking> ranking = cpt.Ranking(row);
      if (!ranking.ok()) continue;  // Unset rows are omitted.
      out << "pref " << net.VariableName(var) << " [";
      std::vector<ValueId> parent_values = cpt.RowValues(row);
      for (size_t i = 0; i < parent_values.size(); ++i) {
        if (i > 0) out << ' ';
        out << net.ValueNames(parents[i])[static_cast<size_t>(
            parent_values[i])];
      }
      out << "] :";
      for (ValueId value : *ranking) {
        out << ' ' << net.ValueNames(var)[static_cast<size_t>(value)];
      }
      out << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

namespace {

Result<ValueId> LookupValue(const CpNet& net, VarId var,
                            const std::string& value_name) {
  const std::vector<std::string>& names = net.ValueNames(var);
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == value_name) return static_cast<ValueId>(i);
  }
  return Status::InvalidArgument("variable \"" + net.VariableName(var) +
                                 "\" has no value \"" + value_name + "\"");
}

}  // namespace

Result<CpNet> FromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CpNet net;
  bool saw_header = false;
  bool saw_end = false;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword) || keyword.empty() || keyword[0] == '#') {
      continue;
    }
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + msg);
    };
    if (keyword == "cpnet") {
      int version = 0;
      if (!(tokens >> version) || version != 1) {
        return error("unsupported cpnet version");
      }
      saw_header = true;
    } else if (keyword == "var") {
      if (!saw_header) return error("var before header");
      std::string name;
      int k = 0;
      if (!(tokens >> name >> k) || k < 1) return error("malformed var");
      std::vector<std::string> value_names;
      std::string value;
      while (tokens >> value) value_names.push_back(value);
      if (static_cast<int>(value_names.size()) != k) {
        return error("var declares " + std::to_string(k) + " values, lists " +
                     std::to_string(value_names.size()));
      }
      if (net.FindVariable(name).ok()) {
        return error("duplicate variable \"" + name + "\"");
      }
      net.AddVariable(name, std::move(value_names));
    } else if (keyword == "parents") {
      std::string name;
      if (!(tokens >> name)) return error("malformed parents");
      Result<VarId> var = net.FindVariable(name);
      if (!var.ok()) return error("unknown variable \"" + name + "\"");
      std::vector<VarId> parents;
      std::string parent_name;
      while (tokens >> parent_name) {
        Result<VarId> parent = net.FindVariable(parent_name);
        if (!parent.ok()) {
          return error("unknown parent \"" + parent_name + "\"");
        }
        parents.push_back(*parent);
      }
      Status st = net.SetParents(*var, std::move(parents));
      if (!st.ok()) return error(st.message());
    } else if (keyword == "pref") {
      std::string name;
      if (!(tokens >> name)) return error("malformed pref");
      Result<VarId> var = net.FindVariable(name);
      if (!var.ok()) return error("unknown variable \"" + name + "\"");
      std::string token;
      if (!(tokens >> token) || token.empty() || token[0] != '[') {
        return error("expected [parent values]");
      }
      // Collect tokens until the one ending with ']'.
      std::vector<std::string> parent_tokens;
      if (token != "[") {
        token.erase(0, 1);  // strip '['
        if (!token.empty() && token.back() == ']') {
          token.pop_back();
          if (!token.empty()) parent_tokens.push_back(token);
          token = "]";
        } else if (!token.empty()) {
          parent_tokens.push_back(token);
        }
      }
      while (token != "]" &&
             !(token.size() > 1 && token.back() == ']')) {
        if (!(tokens >> token)) return error("unterminated parent list");
        if (token == "]") break;
        if (token.back() == ']') {
          token.pop_back();
          if (!token.empty()) parent_tokens.push_back(token);
          break;
        }
        parent_tokens.push_back(token);
      }
      const std::vector<VarId>& parents = net.Parents(*var);
      if (parent_tokens.size() != parents.size()) {
        return error("pref lists " + std::to_string(parent_tokens.size()) +
                     " parent values, variable has " +
                     std::to_string(parents.size()) + " parents");
      }
      std::vector<ValueId> parent_values;
      for (size_t i = 0; i < parent_tokens.size(); ++i) {
        Result<ValueId> value = LookupValue(net, parents[i],
                                            parent_tokens[i]);
        if (!value.ok()) return error(value.status().message());
        parent_values.push_back(*value);
      }
      std::string colon;
      if (!(tokens >> colon) || colon != ":") return error("expected ':'");
      PreferenceRanking ranking;
      std::string value_name;
      while (tokens >> value_name) {
        Result<ValueId> value = LookupValue(net, *var, value_name);
        if (!value.ok()) return error(value.status().message());
        ranking.push_back(*value);
      }
      Status st = net.SetPreference(*var, parent_values, std::move(ranking));
      if (!st.ok()) return error(st.message());
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return error("unknown keyword \"" + keyword + "\"");
    }
  }
  if (!saw_header) return Status::InvalidArgument("missing cpnet header");
  if (!saw_end) return Status::InvalidArgument("missing end marker");
  MMCONF_RETURN_IF_ERROR(net.Validate());
  return net;
}

}  // namespace mmconf::cpnet
