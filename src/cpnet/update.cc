#include "cpnet/update.h"

#include <algorithm>

namespace mmconf::cpnet {

Result<VarId> CpNetEditor::AddComponent(CpNet& net, std::string name,
                                        std::vector<std::string> value_names,
                                        PreferenceRanking ranking) {
  if (value_names.empty()) {
    return Status::InvalidArgument("component needs a non-empty domain");
  }
  VarId v = net.AddVariable(std::move(name), std::move(value_names));
  MMCONF_RETURN_IF_ERROR(net.SetUnconditionalPreference(v, ranking));
  MMCONF_RETURN_IF_ERROR(net.Validate());
  return v;
}

Result<CpNetEditor::RemovalResult> CpNetEditor::RemoveComponent(
    const CpNet& net, VarId v, ValueId restriction_value) {
  if (v < 0 || static_cast<size_t>(v) >= net.num_variables()) {
    return Status::OutOfRange("no variable with id " + std::to_string(v));
  }
  if (restriction_value < 0 || restriction_value >= net.DomainSize(v)) {
    return Status::OutOfRange("restriction value outside domain of \"" +
                              net.VariableName(v) + "\"");
  }

  RemovalResult result;
  result.old_to_new.assign(net.num_variables(), kUnassigned);
  // Rebuild all surviving variables with compacted ids.
  for (size_t old_v = 0; old_v < net.num_variables(); ++old_v) {
    if (static_cast<VarId>(old_v) == v) continue;
    result.old_to_new[old_v] = result.net.AddVariable(
        net.VariableName(static_cast<VarId>(old_v)),
        net.ValueNames(static_cast<VarId>(old_v)));
  }
  for (size_t old_v = 0; old_v < net.num_variables(); ++old_v) {
    if (static_cast<VarId>(old_v) == v) continue;
    VarId new_v = result.old_to_new[old_v];
    const std::vector<VarId>& old_parents =
        net.Parents(static_cast<VarId>(old_v));
    // Position of `v` within this variable's parent list, if present.
    int removed_pos = -1;
    std::vector<VarId> new_parents;
    for (size_t i = 0; i < old_parents.size(); ++i) {
      if (old_parents[i] == v) {
        removed_pos = static_cast<int>(i);
      } else {
        new_parents.push_back(result.old_to_new[old_parents[i]]);
      }
    }
    MMCONF_RETURN_IF_ERROR(result.net.SetParents(new_v, new_parents));

    // Copy CPT rows. When `v` was a parent, keep only the rows where
    // v == restriction_value.
    const Cpt& old_cpt = net.CptOf(static_cast<VarId>(old_v));
    for (size_t row = 0; row < old_cpt.num_rows(); ++row) {
      std::vector<ValueId> old_values = old_cpt.RowValues(row);
      std::vector<ValueId> new_values;
      bool keep = true;
      for (size_t i = 0; i < old_values.size(); ++i) {
        if (static_cast<int>(i) == removed_pos) {
          if (old_values[i] != restriction_value) keep = false;
        } else {
          new_values.push_back(old_values[i]);
        }
      }
      if (!keep) continue;
      MMCONF_ASSIGN_OR_RETURN(PreferenceRanking ranking,
                              old_cpt.Ranking(row));
      MMCONF_RETURN_IF_ERROR(
          result.net.SetPreference(new_v, new_values, std::move(ranking)));
    }
  }
  MMCONF_RETURN_IF_ERROR(result.net.Validate());
  return result;
}

Result<VarId> CpNetEditor::AddOperationVariable(CpNet& net, VarId target,
                                                ValueId trigger_value,
                                                std::string op_name,
                                                std::string applied_name,
                                                std::string plain_name) {
  if (target < 0 || static_cast<size_t>(target) >= net.num_variables()) {
    return Status::OutOfRange("no variable with id " +
                              std::to_string(target));
  }
  if (trigger_value < 0 || trigger_value >= net.DomainSize(target)) {
    return Status::OutOfRange("trigger value outside domain of \"" +
                              net.VariableName(target) + "\"");
  }
  VarId op = net.AddVariable(std::move(op_name),
                             {std::move(applied_name), std::move(plain_name)});
  MMCONF_RETURN_IF_ERROR(net.SetParents(op, {target}));
  // Value 0 = applied (e.g. segmented), value 1 = plain (e.g. flat).
  // Applied is preferred exactly when the parent presents at the value it
  // had when the viewer performed the operation.
  for (ValueId pv = 0; pv < net.DomainSize(target); ++pv) {
    PreferenceRanking ranking =
        (pv == trigger_value) ? PreferenceRanking{0, 1}
                              : PreferenceRanking{1, 0};
    MMCONF_RETURN_IF_ERROR(net.SetPreference(op, {pv}, std::move(ranking)));
  }
  MMCONF_RETURN_IF_ERROR(net.Validate());
  return op;
}

Result<VarId> ViewerOverlay::AddVariable(
    std::string name, std::vector<std::string> value_names,
    std::vector<ParentRef> parents,
    std::vector<PreferenceRanking> rankings) {
  if (value_names.empty()) {
    return Status::InvalidArgument("overlay variable needs a domain");
  }
  std::vector<int> parent_domains;
  for (const ParentRef& ref : parents) {
    if (ref.in_overlay) {
      if (ref.id < 0 || static_cast<size_t>(ref.id) >= variables_.size()) {
        return Status::InvalidArgument(
            "overlay parent must be an earlier overlay variable");
      }
      parent_domains.push_back(
          static_cast<int>(variables_[static_cast<size_t>(ref.id)]
                               .value_names.size()));
    } else {
      if (ref.id < 0 ||
          static_cast<size_t>(ref.id) >= base_->num_variables()) {
        return Status::OutOfRange("no base variable with id " +
                                  std::to_string(ref.id));
      }
      parent_domains.push_back(base_->DomainSize(ref.id));
    }
  }
  OverlayVariable var;
  var.name = std::move(name);
  var.value_names = std::move(value_names);
  var.parents = std::move(parents);
  var.cpt = Cpt(parent_domains, static_cast<int>(var.value_names.size()));
  if (rankings.size() != var.cpt.num_rows()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(var.cpt.num_rows()) +
        " rankings, got " + std::to_string(rankings.size()));
  }
  for (size_t row = 0; row < rankings.size(); ++row) {
    MMCONF_RETURN_IF_ERROR(var.cpt.SetRanking(row, std::move(rankings[row])));
  }
  variables_.push_back(std::move(var));
  return static_cast<VarId>(variables_.size() - 1);
}

Result<VarId> ViewerOverlay::AddOperationVariable(VarId base_target,
                                                  ValueId trigger_value,
                                                  std::string op_name,
                                                  std::string applied_name,
                                                  std::string plain_name) {
  if (base_target < 0 ||
      static_cast<size_t>(base_target) >= base_->num_variables()) {
    return Status::OutOfRange("no base variable with id " +
                              std::to_string(base_target));
  }
  int parent_domain = base_->DomainSize(base_target);
  if (trigger_value < 0 || trigger_value >= parent_domain) {
    return Status::OutOfRange("trigger value outside parent domain");
  }
  std::vector<PreferenceRanking> rankings;
  for (ValueId pv = 0; pv < parent_domain; ++pv) {
    rankings.push_back(pv == trigger_value ? PreferenceRanking{0, 1}
                                           : PreferenceRanking{1, 0});
  }
  return AddVariable(std::move(op_name),
                     {std::move(applied_name), std::move(plain_name)},
                     {{false, base_target}}, std::move(rankings));
}

Result<Assignment> ViewerOverlay::OptimalCompletion(
    const Assignment& base_outcome, const Assignment& evidence) const {
  if (base_outcome.size() != base_->num_variables() ||
      !base_outcome.IsComplete()) {
    return Status::InvalidArgument(
        "base outcome must be a full assignment over the base network");
  }
  if (evidence.size() != variables_.size()) {
    return Status::InvalidArgument("overlay evidence size mismatch");
  }
  Assignment outcome = evidence;
  // Overlay variables were added parents-first, so index order is a
  // topological order.
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (outcome.IsAssigned(static_cast<VarId>(v))) {
      if (outcome.Get(static_cast<VarId>(v)) >=
          static_cast<ValueId>(variables_[v].value_names.size())) {
        return Status::OutOfRange("overlay evidence value out of domain");
      }
      continue;
    }
    std::vector<ValueId> parent_values;
    for (const ParentRef& ref : variables_[v].parents) {
      parent_values.push_back(ref.in_overlay ? outcome.Get(ref.id)
                                             : base_outcome.Get(ref.id));
    }
    MMCONF_ASSIGN_OR_RETURN(size_t row,
                            variables_[v].cpt.RowIndex(parent_values));
    MMCONF_ASSIGN_OR_RETURN(ValueId best, variables_[v].cpt.BestValue(row));
    outcome.Set(static_cast<VarId>(v), best);
  }
  return outcome;
}

Result<Assignment> ViewerOverlay::OptimalCompletion(
    const Assignment& base_outcome) const {
  return OptimalCompletion(base_outcome, Assignment(variables_.size()));
}

}  // namespace mmconf::cpnet
