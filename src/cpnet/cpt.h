#ifndef MMCONF_CPNET_CPT_H_
#define MMCONF_CPNET_CPT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cpnet/assignment.h"

namespace mmconf::cpnet {

/// A total preference order over one variable's domain: value ids listed
/// from most preferred to least preferred. Must be a permutation of the
/// domain.
using PreferenceRanking = std::vector<ValueId>;

/// Conditional preference table of one CP-net variable (the paper's
/// CPT(v)): for each assignment to the variable's parents Pi(v), a total
/// preference ranking over the variable's own domain, interpreted ceteris
/// paribus.
///
/// Parent assignments are indexed in mixed-radix order: the first parent
/// is the most significant digit.
class Cpt {
 public:
  Cpt() = default;

  /// `parent_domain_sizes[i]` is the domain size of the i-th parent;
  /// `domain_size` is the owning variable's domain size.
  Cpt(std::vector<int> parent_domain_sizes, int domain_size);

  int domain_size() const { return domain_size_; }
  size_t num_rows() const { return rankings_.size(); }
  const std::vector<int>& parent_domain_sizes() const {
    return parent_domain_sizes_;
  }

  /// Converts explicit parent values to a row index. Values must be in
  /// range and the count must match the parent list.
  Result<size_t> RowIndex(const std::vector<ValueId>& parent_values) const;

  /// Inverse of RowIndex.
  std::vector<ValueId> RowValues(size_t row) const;

  /// Sets the ranking for one row. InvalidArgument unless `ranking` is a
  /// permutation of the domain.
  Status SetRanking(size_t row, PreferenceRanking ranking);
  Status SetRanking(const std::vector<ValueId>& parent_values,
                    PreferenceRanking ranking);

  /// Sets every row to the same ranking (unconditional preference).
  Status SetAllRankings(const PreferenceRanking& ranking);

  /// Ranking for a row; FailedPrecondition if that row was never set.
  Result<PreferenceRanking> Ranking(size_t row) const;

  /// The row's ranking without copying it, or nullptr when the row is out
  /// of range or was never set — the hot-path counterpart of Ranking().
  const PreferenceRanking* RankingOrNull(size_t row) const {
    if (row >= rankings_.size() || rankings_[row].empty()) return nullptr;
    return &rankings_[row];
  }

  /// Most preferred value for a row.
  Result<ValueId> BestValue(size_t row) const;

  /// Position of `value` in the row's ranking (0 = most preferred).
  Result<int> RankOf(size_t row, ValueId value) const;

  /// True when every row has a ranking.
  bool IsComplete() const;
  /// Rows that still lack a ranking.
  std::vector<size_t> MissingRows() const;

 private:
  /// Error for a row RankingOrNull rejected (cold path: the message is
  /// only built once a query has already failed).
  Status RowError(size_t row) const;

  std::vector<int> parent_domain_sizes_;
  int domain_size_ = 0;
  /// rankings_[row] is empty until set.
  std::vector<PreferenceRanking> rankings_;
};

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_CPT_H_
