#include "cpnet/assignment.h"

#include <algorithm>

namespace mmconf::cpnet {

bool Assignment::IsComplete() const {
  return std::none_of(values_.begin(), values_.end(),
                      [](ValueId v) { return v == kUnassigned; });
}

size_t Assignment::AssignedCount() const {
  return static_cast<size_t>(
      std::count_if(values_.begin(), values_.end(),
                    [](ValueId v) { return v != kUnassigned; }));
}

bool Assignment::Extends(const Assignment& other) const {
  if (other.size() != size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (other.values_[i] != kUnassigned &&
        other.values_[i] != values_[i]) {
      return false;
    }
  }
  return true;
}

std::string Assignment::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ' ';
    if (values_[i] == kUnassigned) {
      out += '*';
    } else {
      out += std::to_string(values_[i]);
    }
  }
  out += ']';
  return out;
}

bool operator==(const Assignment& a, const Assignment& b) {
  return a.values() == b.values();
}

bool operator!=(const Assignment& a, const Assignment& b) {
  return !(a == b);
}

bool operator<(const Assignment& a, const Assignment& b) {
  return a.values() < b.values();
}

}  // namespace mmconf::cpnet
