#ifndef MMCONF_CPNET_UPDATE_H_
#define MMCONF_CPNET_UPDATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cpnet/assignment.h"
#include "cpnet/cpnet.h"

namespace mmconf::cpnet {

/// Online update operations of the paper's Section 4.2. A multimedia
/// document "may be updated online by any of the current viewers": adding
/// a component, removing a component, and performing an operation on a
/// component — each with a policy for updating the document's CP-network
/// without asking the viewer to edit preference tables.
class CpNetEditor {
 public:
  /// Adds a component variable with an unconditional preference ranking —
  /// the "simple yet reasonable" policy for viewer-added components (the
  /// author never ranked them, so the new component depends on nothing
  /// and nothing depends on it). Revalidates the network.
  static Result<VarId> AddComponent(CpNet& net, std::string name,
                                    std::vector<std::string> value_names,
                                    PreferenceRanking ranking);

  /// Result of removing a component: the rebuilt network plus the mapping
  /// from old variable ids to new ones (removed variable maps to
  /// kUnassigned).
  struct RemovalResult {
    CpNet net;
    std::vector<VarId> old_to_new;
  };

  /// Removes component `v`. Children of `v` keep only the CPT rows where
  /// `v` took `restriction_value` — the removed component is absent, so
  /// conditional preferences are restricted to that context (the paper's
  /// removal policy, with the natural restriction being the component's
  /// "hidden" value). Revalidates the returned network.
  static Result<RemovalResult> RemoveComponent(const CpNet& net, VarId v,
                                               ValueId restriction_value);

  /// The paper's operation-variable construction (Section 4.2, worked for
  /// segmentation of an X-ray): after a viewer performs an operation on
  /// component `target` while it is presented at `trigger_value`, add a
  /// variable named `op_name` with domain {`applied_name`, `plain_name`},
  /// whose single parent is `target`, preferring the applied form iff the
  /// parent presents at `trigger_value`. "The domain of the variable ci
  /// remains unchanged, and thus we should not revisit the CP-tables" —
  /// no existing table is touched. Revalidates the network.
  static Result<VarId> AddOperationVariable(CpNet& net, VarId target,
                                            ValueId trigger_value,
                                            std::string op_name,
                                            std::string applied_name,
                                            std::string plain_name);
};

/// A per-viewer extension of a shared CP-network (Section 4.2: if the
/// viewer decides her operation matters only to herself, "this change
/// will be saved as an extension of the CP-network for this particular
/// viewer. Note that the original CP-network should not be duplicated,
/// and only the new variables with the corresponding CP-tables should be
/// saved separately").
///
/// The overlay holds only the viewer's private variables; their parents
/// may be base-network variables or earlier overlay variables. Optimal
/// completion of an overlay variable is computed against the base outcome
/// already configured by the shared network.
class ViewerOverlay {
 public:
  /// `base` must remain alive and unmodified (structurally) while the
  /// overlay is in use; it must be validated.
  explicit ViewerOverlay(const CpNet* base) : base_(base) {}

  /// Reference to a parent of an overlay variable.
  struct ParentRef {
    bool in_overlay = false;  ///< false: base variable, true: overlay var
    VarId id = 0;
  };

  /// Adds a private variable. Overlay parents must already exist (id <
  /// current overlay size) — this keeps the overlay acyclic by
  /// construction. Rankings are supplied per parent-assignment row in
  /// mixed-radix order over the parents as given.
  Result<VarId> AddVariable(std::string name,
                            std::vector<std::string> value_names,
                            std::vector<ParentRef> parents,
                            std::vector<PreferenceRanking> rankings);

  /// The paper's operation-variable construction scoped to this viewer.
  Result<VarId> AddOperationVariable(VarId base_target,
                                     ValueId trigger_value,
                                     std::string op_name,
                                     std::string applied_name,
                                     std::string plain_name);

  size_t size() const { return variables_.size(); }
  const std::string& VariableName(VarId v) const {
    return variables_[static_cast<size_t>(v)].name;
  }
  const std::vector<std::string>& ValueNames(VarId v) const {
    return variables_[static_cast<size_t>(v)].value_names;
  }

  /// Computes the preferred values of all overlay variables given the
  /// configured base outcome (full assignment over the base net) and
  /// `evidence` over overlay variables (may be empty / partial).
  Result<Assignment> OptimalCompletion(const Assignment& base_outcome,
                                       const Assignment& evidence) const;
  Result<Assignment> OptimalCompletion(const Assignment& base_outcome) const;

 private:
  struct OverlayVariable {
    std::string name;
    std::vector<std::string> value_names;
    std::vector<ParentRef> parents;
    Cpt cpt;
  };

  const CpNet* base_;
  std::vector<OverlayVariable> variables_;
};

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_UPDATE_H_
