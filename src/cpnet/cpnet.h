#ifndef MMCONF_CPNET_CPNET_H_
#define MMCONF_CPNET_CPNET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cpnet/assignment.h"
#include "cpnet/cpt.h"

namespace mmconf::obs {
class Counter;
class MetricsRegistry;
}  // namespace mmconf::obs

namespace mmconf::cpnet {

/// An improving flip: changing `var` from its current value to `better`
/// yields a strictly preferred outcome, all else equal.
struct Flip {
  VarId var;
  ValueId better;
};

/// A CP-network (Boutilier et al. [6], as used by the paper's presentation
/// module): a DAG over variables where each node carries a table of
/// conditional preference rankings over its own domain given its parents'
/// values, interpreted ceteris paribus.
///
/// Build protocol: AddVariable for every variable, SetParents + CPT
/// rankings, then Validate() once; the query methods require a validated
/// (acyclic, CPT-complete) network and return FailedPrecondition
/// otherwise.
///
/// Validate() compiles the pointer-free *flat arena* the query methods
/// run on: one index-addressed `VarRec` per variable whose
/// variable-length payloads — parent arcs (parent id, domain, mixed-radix
/// stride), children, descendant cone, and every CPT row's ranking — are
/// contiguous slices into shared pools. A full sweep is then a linear
/// walk over a handful of flat arrays instead of a pointer chase through
/// per-variable heap vectors.
class CpNet {
 public:
  CpNet() = default;

  CpNet(const CpNet&) = default;
  CpNet& operator=(const CpNet&) = default;
  CpNet(CpNet&&) = default;
  CpNet& operator=(CpNet&&) = default;

  /// Adds a variable with the given domain value names (domain size =
  /// value_names.size(), which must be >= 1). Returns its id. Invalidates
  /// any previous Validate().
  VarId AddVariable(std::string name, std::vector<std::string> value_names);

  /// Sets the parents Pi(v) and resets v's CPT to an empty table over the
  /// new parent list. Parents must be distinct existing variables != v.
  Status SetParents(VarId v, std::vector<VarId> parents);

  /// Sets one CPT row of `v`: given the parent values (in SetParents
  /// order), `ranking` lists v's domain from most to least preferred.
  Status SetPreference(VarId v, const std::vector<ValueId>& parent_values,
                       PreferenceRanking ranking);

  /// Sets every CPT row of `v` to `ranking` (unconditional preference).
  Status SetUnconditionalPreference(VarId v,
                                    const PreferenceRanking& ranking);

  /// Checks the network is well formed: parent references valid, graph
  /// acyclic, every CPT row ranked. On success compiles the flat arena
  /// (topological order, parent arcs, children, descendant cones, CPT row
  /// pool) used by the query methods.
  Status Validate();
  bool validated() const { return validated_; }

  size_t num_variables() const { return variables_.size(); }
  const std::string& VariableName(VarId v) const;
  /// NotFound if no variable carries `name`.
  Result<VarId> FindVariable(const std::string& name) const;
  int DomainSize(VarId v) const;
  const std::vector<std::string>& ValueNames(VarId v) const;
  const std::vector<VarId>& Parents(VarId v) const;
  /// Variables that list `v` as a parent.
  std::vector<VarId> Children(VarId v) const;
  const Cpt& CptOf(VarId v) const;

  /// Size of the full configuration space (product of domain sizes),
  /// saturating at SIZE_MAX.
  size_t ConfigurationSpaceSize() const;

  /// Topological order over variables (parents before children).
  /// Requires Validate().
  Result<std::vector<VarId>> TopologicalOrder() const;

  /// The unique preferentially optimal outcome: sweep variables in
  /// topological order setting each to its most preferred value given its
  /// parents (the paper's Section 4.1 "forward sweep"). Requires
  /// Validate().
  Result<Assignment> OptimalOutcome() const;

  /// Best completion of the partial assignment `evidence`: assigned
  /// variables are frozen (the viewers' choices), all others are swept as
  /// in OptimalOutcome. This is the constrained-optimization primitive
  /// behind reconfigPresentation. Requires Validate().
  Result<Assignment> OptimalCompletion(const Assignment& evidence) const;

  /// Incremental re-optimization: given `base_outcome` — a completion
  /// produced by OptimalCompletion for evidence that assigns no variable
  /// in `pinned`'s descendant cone (other than possibly `pinned` itself)
  /// — returns the optimal completion of that same evidence with
  /// `pinned` additionally frozen at `value`. Only the topological
  /// suffix reachable from `pinned` (its descendant cone) is re-swept;
  /// every other variable keeps its cached base value, which the sweep
  /// would have reproduced anyway since `pinned` cannot influence it.
  /// Requires Validate().
  Result<Assignment> RecompleteFrom(const Assignment& base_outcome,
                                    VarId pinned, ValueId value) const;

  /// Allocation-free variant of RecompleteFrom: writes the result into
  /// `*out`, reusing its storage when already sized to the network.
  ///
  /// Propagation is watched-style incremental: a cone variable's CPT row
  /// is only fetched when at least one of its parents actually changed
  /// relative to `base_outcome` (the parent assignment it watches). A pin
  /// whose effect dies out — the re-ranked best equals the cached value —
  /// stops the sweep from touching anything downstream, so the cost is
  /// proportional to the *changed* region, not the full descendant cone.
  Status RecompleteInto(const Assignment& base_outcome, VarId pinned,
                        ValueId value, Assignment* out) const;

  /// Variables reachable from `v` via child arcs (v included), in
  /// topological order — the suffix RecompleteFrom re-sweeps. The view
  /// aliases the arena's cone pool and is invalidated by the next
  /// Validate(). Requires Validate().
  std::span<const VarId> DescendantCone(VarId v) const;

  /// CPT row index of `v` under `outcome` (which must assign all parents
  /// of v). On a validated net this reads the flat parent arcs and
  /// performs no allocation.
  Result<size_t> RowFor(VarId v, const Assignment& outcome) const;

  /// Most preferred value of `v` given the parent values found in
  /// `outcome` (which must assign all parents of v).
  Result<ValueId> PreferredValue(VarId v, const Assignment& outcome) const;

  /// All improving flips available from `outcome` (a full assignment).
  /// Empty iff `outcome` is the optimum consistent with itself; for a
  /// validated acyclic net the unique global optimum is the only
  /// flip-free outcome.
  Result<std::vector<Flip>> ImprovingFlips(const Assignment& outcome) const;

  /// True when no improving flip exists from `outcome`.
  Result<bool> IsOptimal(const Assignment& outcome) const;

  /// Wires the per-phase profiling counters (cpnet.sweep.*,
  /// cpnet.recomplete.*) into `metrics`; pass nullptr to detach. Const
  /// because observability is not logical state: the counters record how
  /// much work the queries did, they never influence a result.
  void SetObserver(obs::MetricsRegistry* metrics) const;

  /// Human-readable dump (variable list, parents, CPT rows).
  std::string DebugString() const;

 private:
  struct Variable {
    std::string name;
    std::vector<std::string> value_names;
    std::vector<VarId> parents;
    Cpt cpt;
  };

  /// One parent arc of the flat arena: the parent's id, its domain size
  /// (so value range checks stay on the same cache line), and the
  /// mixed-radix stride its value contributes to the CPT row index.
  struct ParentArc {
    VarId parent = 0;
    int32_t domain = 0;
    size_t stride = 0;
  };

  /// Index-addressed record of one variable in the flat arena. All
  /// variable-length payloads live in the shared pools as [off, off+len)
  /// slices; CPT row `r` of a variable is the `domain`-long ranking at
  /// rankings_pool_[rows_off + r * domain], best value first.
  struct VarRec {
    int32_t domain = 0;
    uint32_t parents_off = 0;
    uint32_t parents_len = 0;
    uint32_t children_off = 0;
    uint32_t children_len = 0;
    uint32_t cone_off = 0;
    uint32_t cone_len = 0;
    size_t rows_off = 0;
    size_t num_rows = 0;
  };

  Status CheckVar(VarId v) const;
  /// Cold-path error construction for RowFor (message strings are only
  /// built once a lookup has already failed).
  Status RowForError(VarId v, VarId parent, ValueId value) const;

  friend class CpNetEditor;  // online-update operations (update.h)

  std::vector<Variable> variables_;
  std::vector<VarId> topo_order_;
  /// Flat arena compiled by Validate(); see VarRec.
  std::vector<VarRec> recs_;
  std::vector<ParentArc> parent_pool_;
  std::vector<VarId> children_pool_;
  std::vector<VarId> cone_pool_;
  std::vector<ValueId> rankings_pool_;
  bool validated_ = false;

  /// Profiling handles (nullptr when no observer is attached). Mutable:
  /// see SetObserver.
  mutable obs::Counter* m_sweep_calls_ = nullptr;
  mutable obs::Counter* m_sweep_rows_ = nullptr;
  mutable obs::Counter* m_recomplete_calls_ = nullptr;
  mutable obs::Counter* m_recomplete_cone_ = nullptr;
  mutable obs::Counter* m_recomplete_rows_ = nullptr;
  mutable obs::Counter* m_recomplete_skipped_ = nullptr;
};

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_CPNET_H_
