#ifndef MMCONF_CPNET_CPNET_H_
#define MMCONF_CPNET_CPNET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cpnet/assignment.h"
#include "cpnet/cpt.h"

namespace mmconf::cpnet {

/// An improving flip: changing `var` from its current value to `better`
/// yields a strictly preferred outcome, all else equal.
struct Flip {
  VarId var;
  ValueId better;
};

/// A CP-network (Boutilier et al. [6], as used by the paper's presentation
/// module): a DAG over variables where each node carries a table of
/// conditional preference rankings over its own domain given its parents'
/// values, interpreted ceteris paribus.
///
/// Build protocol: AddVariable for every variable, SetParents + CPT
/// rankings, then Validate() once; the query methods require a validated
/// (acyclic, CPT-complete) network and return FailedPrecondition
/// otherwise.
class CpNet {
 public:
  CpNet() = default;

  CpNet(const CpNet&) = default;
  CpNet& operator=(const CpNet&) = default;
  CpNet(CpNet&&) = default;
  CpNet& operator=(CpNet&&) = default;

  /// Adds a variable with the given domain value names (domain size =
  /// value_names.size(), which must be >= 1). Returns its id. Invalidates
  /// any previous Validate().
  VarId AddVariable(std::string name, std::vector<std::string> value_names);

  /// Sets the parents Pi(v) and resets v's CPT to an empty table over the
  /// new parent list. Parents must be distinct existing variables != v.
  Status SetParents(VarId v, std::vector<VarId> parents);

  /// Sets one CPT row of `v`: given the parent values (in SetParents
  /// order), `ranking` lists v's domain from most to least preferred.
  Status SetPreference(VarId v, const std::vector<ValueId>& parent_values,
                       PreferenceRanking ranking);

  /// Sets every CPT row of `v` to `ranking` (unconditional preference).
  Status SetUnconditionalPreference(VarId v,
                                    const PreferenceRanking& ranking);

  /// Checks the network is well formed: parent references valid, graph
  /// acyclic, every CPT row ranked. On success caches the topological
  /// order used by the query methods.
  Status Validate();
  bool validated() const { return validated_; }

  size_t num_variables() const { return variables_.size(); }
  const std::string& VariableName(VarId v) const;
  /// NotFound if no variable carries `name`.
  Result<VarId> FindVariable(const std::string& name) const;
  int DomainSize(VarId v) const;
  const std::vector<std::string>& ValueNames(VarId v) const;
  const std::vector<VarId>& Parents(VarId v) const;
  /// Variables that list `v` as a parent.
  std::vector<VarId> Children(VarId v) const;
  const Cpt& CptOf(VarId v) const;

  /// Size of the full configuration space (product of domain sizes),
  /// saturating at SIZE_MAX.
  size_t ConfigurationSpaceSize() const;

  /// Topological order over variables (parents before children).
  /// Requires Validate().
  Result<std::vector<VarId>> TopologicalOrder() const;

  /// The unique preferentially optimal outcome: sweep variables in
  /// topological order setting each to its most preferred value given its
  /// parents (the paper's Section 4.1 "forward sweep"). Requires
  /// Validate().
  Result<Assignment> OptimalOutcome() const;

  /// Best completion of the partial assignment `evidence`: assigned
  /// variables are frozen (the viewers' choices), all others are swept as
  /// in OptimalOutcome. This is the constrained-optimization primitive
  /// behind reconfigPresentation. Requires Validate().
  Result<Assignment> OptimalCompletion(const Assignment& evidence) const;

  /// Incremental re-optimization: given `base_outcome` — a completion
  /// produced by OptimalCompletion for evidence that assigns no variable
  /// in `pinned`'s descendant cone (other than possibly `pinned` itself)
  /// — returns the optimal completion of that same evidence with
  /// `pinned` additionally frozen at `value`. Only the topological
  /// suffix reachable from `pinned` (its descendant cone) is re-swept;
  /// every other variable keeps its cached base value, which the sweep
  /// would have reproduced anyway since `pinned` cannot influence it.
  /// Requires Validate().
  Result<Assignment> RecompleteFrom(const Assignment& base_outcome,
                                    VarId pinned, ValueId value) const;

  /// Allocation-free variant of RecompleteFrom: writes the result into
  /// `*out`, reusing its storage when already sized to the network.
  Status RecompleteInto(const Assignment& base_outcome, VarId pinned,
                        ValueId value, Assignment* out) const;

  /// Variables reachable from `v` via child arcs (v included), in
  /// topological order — the suffix RecompleteFrom re-sweeps. Requires
  /// Validate().
  const std::vector<VarId>& DescendantCone(VarId v) const;

  /// CPT row index of `v` under `outcome` (which must assign all parents
  /// of v). On a validated net this reads the cached mixed-radix parent
  /// strides and performs no allocation.
  Result<size_t> RowFor(VarId v, const Assignment& outcome) const;

  /// Most preferred value of `v` given the parent values found in
  /// `outcome` (which must assign all parents of v).
  Result<ValueId> PreferredValue(VarId v, const Assignment& outcome) const;

  /// All improving flips available from `outcome` (a full assignment).
  /// Empty iff `outcome` is the optimum consistent with itself; for a
  /// validated acyclic net the unique global optimum is the only
  /// flip-free outcome.
  Result<std::vector<Flip>> ImprovingFlips(const Assignment& outcome) const;

  /// True when no improving flip exists from `outcome`.
  Result<bool> IsOptimal(const Assignment& outcome) const;

  /// Human-readable dump (variable list, parents, CPT rows).
  std::string DebugString() const;

 private:
  struct Variable {
    std::string name;
    std::vector<std::string> value_names;
    std::vector<VarId> parents;
    Cpt cpt;
  };

  Status CheckVar(VarId v) const;
  /// Cold-path error construction for RowFor (message strings are only
  /// built once a lookup has already failed).
  Status RowForError(VarId v, VarId parent, ValueId value) const;

  friend class CpNetEditor;  // online-update operations (update.h)

  std::vector<Variable> variables_;
  std::vector<VarId> topo_order_;
  /// Query-time caches rebuilt by Validate(): children adjacency,
  /// per-variable mixed-radix parent strides (row = sum strides[i] *
  /// parent_value[i]), and per-variable descendant cones in topological
  /// order.
  std::vector<std::vector<VarId>> children_;
  std::vector<std::vector<size_t>> parent_strides_;
  std::vector<std::vector<VarId>> descendant_cone_;
  bool validated_ = false;
};

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_CPNET_H_
