#ifndef MMCONF_CPNET_BRUTE_FORCE_H_
#define MMCONF_CPNET_BRUTE_FORCE_H_

#include <vector>

#include "common/result.h"
#include "cpnet/assignment.h"
#include "cpnet/cpnet.h"

namespace mmconf::cpnet {

/// Reference implementations used as baselines and test oracles for the
/// topological-sweep optimizer. These are intentionally exhaustive: the
/// paper's argument for CP-nets is exactly that the sweep avoids this
/// enumeration ("support fast algorithms for optimal configuration
/// determination"); the ablation bench A1 measures the gap.

/// Enumerates every outcome consistent with `evidence` (every full
/// assignment extending it), in lexicographic order. The configuration
/// space must fit in memory — callers should check
/// ConfigurationSpaceSize() first.
Result<std::vector<Assignment>> EnumerateCompletions(
    const CpNet& net, const Assignment& evidence);

/// Finds the optimal completion of `evidence` by scanning every
/// consistent outcome for the one with no improving flip among
/// non-evidence variables. For a validated acyclic CP-net this outcome
/// exists and is unique, so the result always equals
/// CpNet::OptimalCompletion — the sweep's test oracle.
Result<Assignment> BruteForceOptimalCompletion(const CpNet& net,
                                               const Assignment& evidence);

/// Oracle for CpNet::RecompleteFrom: the brute-force optimal completion
/// of `evidence` with `pinned` additionally frozen at `value`. When
/// `evidence` assigns nothing inside pinned's descendant cone, this must
/// agree with RecompleteFrom(OptimalCompletion(evidence), pinned, value).
Result<Assignment> BruteForceRecompleteFrom(const CpNet& net,
                                            const Assignment& evidence,
                                            VarId pinned, ValueId value);

/// Result of a dominance query.
enum class Dominance {
  kDominates,     ///< `better` is reachable from `worse` by improving flips
  kNotDominates,  ///< exhaustive search found no flip path
  kAborted,       ///< node budget exhausted before an answer
};

/// Ceteris-paribus dominance: does the CP-net entail `better` > `worse`?
/// Performs breadth-first search over improving flips starting at `worse`,
/// looking for `better`. Worst case exponential (dominance testing in
/// CP-nets is hard, cf. Domshlak & Brafman 2002); `max_nodes` bounds the
/// search.
Result<Dominance> DominanceQuery(const CpNet& net, const Assignment& better,
                                 const Assignment& worse,
                                 size_t max_nodes = 1 << 20);

/// Relation between two outcomes under the CP-net's partial order.
enum class OutcomeRelation {
  kEqual,
  kFirstPreferred,   ///< a > b is entailed
  kSecondPreferred,  ///< b > a is entailed
  kIncomparable,     ///< neither dominance is entailed
  kUnknown,          ///< a search aborted on the node budget
};

/// Compares two full outcomes with two dominance searches. CP-nets induce
/// a *partial* order — incomparable pairs are common and meaningful (the
/// paper's author preferences deliberately leave most presentation pairs
/// unordered).
Result<OutcomeRelation> CompareOutcomes(const CpNet& net,
                                        const Assignment& a,
                                        const Assignment& b,
                                        size_t max_nodes = 1 << 20);

/// A dominance *proof*: the shortest improving-flip sequence from `worse`
/// to `better` (inclusive of both endpoints), or NotFound when `better`
/// does not dominate `worse`, or ResourceExhausted when the node budget
/// runs out first. Each adjacent pair differs in exactly one variable,
/// flipped to a value the CPT ranks higher given its parents — the
/// standard certificate that the preference order entails better > worse.
Result<std::vector<Assignment>> FindImprovingSequence(
    const CpNet& net, const Assignment& better, const Assignment& worse,
    size_t max_nodes = 1 << 20);

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_BRUTE_FORCE_H_
