#include "cpnet/cpnet.h"

#include <algorithm>
#include <limits>

namespace mmconf::cpnet {

VarId CpNet::AddVariable(std::string name,
                         std::vector<std::string> value_names) {
  Variable var;
  var.name = std::move(name);
  var.value_names = std::move(value_names);
  var.cpt = Cpt({}, static_cast<int>(var.value_names.size()));
  variables_.push_back(std::move(var));
  validated_ = false;
  return static_cast<VarId>(variables_.size() - 1);
}

Status CpNet::CheckVar(VarId v) const {
  if (v < 0 || static_cast<size_t>(v) >= variables_.size()) {
    return Status::OutOfRange("no variable with id " + std::to_string(v));
  }
  return Status::OK();
}

Status CpNet::SetParents(VarId v, std::vector<VarId> parents) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  std::vector<int> parent_domains;
  for (size_t i = 0; i < parents.size(); ++i) {
    MMCONF_RETURN_IF_ERROR(CheckVar(parents[i]));
    if (parents[i] == v) {
      return Status::InvalidArgument("variable cannot be its own parent");
    }
    for (size_t j = 0; j < i; ++j) {
      if (parents[j] == parents[i]) {
        return Status::InvalidArgument("duplicate parent " +
                                       std::to_string(parents[i]));
      }
    }
    parent_domains.push_back(DomainSize(parents[i]));
  }
  Variable& var = variables_[static_cast<size_t>(v)];
  var.parents = std::move(parents);
  var.cpt = Cpt(std::move(parent_domains),
                static_cast<int>(var.value_names.size()));
  validated_ = false;
  return Status::OK();
}

Status CpNet::SetPreference(VarId v,
                            const std::vector<ValueId>& parent_values,
                            PreferenceRanking ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetRanking(
      parent_values, std::move(ranking));
}

Status CpNet::SetUnconditionalPreference(VarId v,
                                         const PreferenceRanking& ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetAllRankings(ranking);
}

Status CpNet::Validate() {
  // Kahn's algorithm for a topological order; a leftover node means a
  // cycle.
  const size_t n = variables_.size();
  // in_degree counts parents (edges parent -> child).
  std::vector<int> in_degree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    in_degree[v] = static_cast<int>(variables_[v].parents.size());
  }
  std::vector<VarId> order;
  order.reserve(n);
  std::vector<VarId> frontier;
  for (size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) frontier.push_back(static_cast<VarId>(v));
  }
  // Children adjacency.
  std::vector<std::vector<VarId>> children(n);
  for (size_t v = 0; v < n; ++v) {
    for (VarId p : variables_[v].parents) {
      children[static_cast<size_t>(p)].push_back(static_cast<VarId>(v));
    }
  }
  while (!frontier.empty()) {
    VarId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (VarId c : children[static_cast<size_t>(v)]) {
      if (--in_degree[static_cast<size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  if (order.size() != n) {
    return Status::InvalidArgument(
        "CP-net has a dependency cycle among its variables");
  }
  for (size_t v = 0; v < n; ++v) {
    if (variables_[v].value_names.empty()) {
      return Status::InvalidArgument("variable \"" + variables_[v].name +
                                     "\" has an empty domain");
    }
    if (!variables_[v].cpt.IsComplete()) {
      return Status::InvalidArgument(
          "variable \"" + variables_[v].name + "\" is missing rankings for " +
          std::to_string(variables_[v].cpt.MissingRows().size()) +
          " CPT row(s)");
    }
  }
  topo_order_ = std::move(order);
  validated_ = true;
  return Status::OK();
}

const std::string& CpNet::VariableName(VarId v) const {
  return variables_[static_cast<size_t>(v)].name;
}

Result<VarId> CpNet::FindVariable(const std::string& name) const {
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].name == name) return static_cast<VarId>(v);
  }
  return Status::NotFound("no variable named \"" + name + "\"");
}

int CpNet::DomainSize(VarId v) const {
  return static_cast<int>(variables_[static_cast<size_t>(v)].value_names
                              .size());
}

const std::vector<std::string>& CpNet::ValueNames(VarId v) const {
  return variables_[static_cast<size_t>(v)].value_names;
}

const std::vector<VarId>& CpNet::Parents(VarId v) const {
  return variables_[static_cast<size_t>(v)].parents;
}

std::vector<VarId> CpNet::Children(VarId v) const {
  std::vector<VarId> children;
  for (size_t c = 0; c < variables_.size(); ++c) {
    const std::vector<VarId>& parents = variables_[c].parents;
    if (std::find(parents.begin(), parents.end(), v) != parents.end()) {
      children.push_back(static_cast<VarId>(c));
    }
  }
  return children;
}

const Cpt& CpNet::CptOf(VarId v) const {
  return variables_[static_cast<size_t>(v)].cpt;
}

size_t CpNet::ConfigurationSpaceSize() const {
  size_t total = 1;
  for (const Variable& var : variables_) {
    size_t d = var.value_names.size();
    if (d != 0 && total > std::numeric_limits<size_t>::max() / d) {
      return std::numeric_limits<size_t>::max();
    }
    total *= d;
  }
  return total;
}

Result<std::vector<VarId>> CpNet::TopologicalOrder() const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  return topo_order_;
}

Result<size_t> CpNet::RowFor(VarId v, const Assignment& outcome) const {
  const Variable& var = variables_[static_cast<size_t>(v)];
  std::vector<ValueId> parent_values;
  parent_values.reserve(var.parents.size());
  for (VarId p : var.parents) {
    if (!outcome.IsAssigned(p)) {
      return Status::FailedPrecondition(
          "parent \"" + VariableName(p) + "\" of \"" + var.name +
          "\" is unassigned");
    }
    parent_values.push_back(outcome.Get(p));
  }
  return var.cpt.RowIndex(parent_values);
}

Result<Assignment> CpNet::OptimalOutcome() const {
  return OptimalCompletion(Assignment(variables_.size()));
}

Result<Assignment> CpNet::OptimalCompletion(
    const Assignment& evidence) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (evidence.size() != variables_.size()) {
    return Status::InvalidArgument(
        "evidence covers " + std::to_string(evidence.size()) +
        " variables, network has " + std::to_string(variables_.size()));
  }
  Assignment outcome = evidence;
  for (VarId v : topo_order_) {
    ValueId fixed = evidence.Get(v);
    if (fixed != kUnassigned) {
      if (fixed < 0 || fixed >= DomainSize(v)) {
        return Status::OutOfRange("evidence value " + std::to_string(fixed) +
                                  " outside domain of \"" + VariableName(v) +
                                  "\"");
      }
      continue;  // Viewer's explicit choice is frozen.
    }
    MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, outcome));
    MMCONF_ASSIGN_OR_RETURN(
        ValueId best, variables_[static_cast<size_t>(v)].cpt.BestValue(row));
    outcome.Set(v, best);
  }
  return outcome;
}

Result<ValueId> CpNet::PreferredValue(VarId v,
                                      const Assignment& outcome) const {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, outcome));
  return variables_[static_cast<size_t>(v)].cpt.BestValue(row);
}

Result<std::vector<Flip>> CpNet::ImprovingFlips(
    const Assignment& outcome) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (!outcome.IsComplete() || outcome.size() != variables_.size()) {
    return Status::InvalidArgument("outcome must assign every variable");
  }
  std::vector<Flip> flips;
  for (size_t v = 0; v < variables_.size(); ++v) {
    MMCONF_ASSIGN_OR_RETURN(size_t row,
                            RowFor(static_cast<VarId>(v), outcome));
    const Cpt& cpt = variables_[v].cpt;
    MMCONF_ASSIGN_OR_RETURN(int current_rank,
                            cpt.RankOf(row, outcome.Get(static_cast<VarId>(v))));
    MMCONF_ASSIGN_OR_RETURN(PreferenceRanking ranking, cpt.Ranking(row));
    for (int r = 0; r < current_rank; ++r) {
      flips.push_back({static_cast<VarId>(v), ranking[static_cast<size_t>(r)]});
    }
  }
  return flips;
}

Result<bool> CpNet::IsOptimal(const Assignment& outcome) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips, ImprovingFlips(outcome));
  return flips.empty();
}

std::string CpNet::DebugString() const {
  std::string out;
  for (size_t v = 0; v < variables_.size(); ++v) {
    const Variable& var = variables_[v];
    out += var.name + " {";
    for (size_t i = 0; i < var.value_names.size(); ++i) {
      if (i > 0) out += ", ";
      out += var.value_names[i];
    }
    out += "}";
    if (!var.parents.empty()) {
      out += " <- ";
      for (size_t i = 0; i < var.parents.size(); ++i) {
        if (i > 0) out += ", ";
        out += VariableName(var.parents[i]);
      }
    }
    out += '\n';
    for (size_t row = 0; row < var.cpt.num_rows(); ++row) {
      Result<PreferenceRanking> ranking = var.cpt.Ranking(row);
      out += "  row " + std::to_string(row) + ": ";
      if (!ranking.ok()) {
        out += "(unset)\n";
        continue;
      }
      for (size_t i = 0; i < ranking->size(); ++i) {
        if (i > 0) out += " > ";
        out += var.value_names[static_cast<size_t>((*ranking)[i])];
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mmconf::cpnet
