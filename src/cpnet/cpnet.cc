#include "cpnet/cpnet.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace mmconf::cpnet {

VarId CpNet::AddVariable(std::string name,
                         std::vector<std::string> value_names) {
  Variable var;
  var.name = std::move(name);
  var.value_names = std::move(value_names);
  var.cpt = Cpt({}, static_cast<int>(var.value_names.size()));
  variables_.push_back(std::move(var));
  validated_ = false;
  return static_cast<VarId>(variables_.size() - 1);
}

Status CpNet::CheckVar(VarId v) const {
  if (v < 0 || static_cast<size_t>(v) >= variables_.size()) {
    return Status::OutOfRange("no variable with id " + std::to_string(v));
  }
  return Status::OK();
}

Status CpNet::SetParents(VarId v, std::vector<VarId> parents) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  std::vector<int> parent_domains;
  for (size_t i = 0; i < parents.size(); ++i) {
    MMCONF_RETURN_IF_ERROR(CheckVar(parents[i]));
    if (parents[i] == v) {
      return Status::InvalidArgument("variable cannot be its own parent");
    }
    for (size_t j = 0; j < i; ++j) {
      if (parents[j] == parents[i]) {
        return Status::InvalidArgument("duplicate parent " +
                                       std::to_string(parents[i]));
      }
    }
    parent_domains.push_back(DomainSize(parents[i]));
  }
  Variable& var = variables_[static_cast<size_t>(v)];
  var.parents = std::move(parents);
  var.cpt = Cpt(std::move(parent_domains),
                static_cast<int>(var.value_names.size()));
  validated_ = false;
  return Status::OK();
}

Status CpNet::SetPreference(VarId v,
                            const std::vector<ValueId>& parent_values,
                            PreferenceRanking ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetRanking(
      parent_values, std::move(ranking));
}

Status CpNet::SetUnconditionalPreference(VarId v,
                                         const PreferenceRanking& ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetAllRankings(ranking);
}

Status CpNet::Validate() {
  // Kahn's algorithm for a topological order; a leftover node means a
  // cycle.
  const size_t n = variables_.size();
  // in_degree counts parents (edges parent -> child).
  std::vector<int> in_degree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    in_degree[v] = static_cast<int>(variables_[v].parents.size());
  }
  std::vector<VarId> order;
  order.reserve(n);
  std::vector<VarId> frontier;
  for (size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) frontier.push_back(static_cast<VarId>(v));
  }
  // Children adjacency (build-side; flattened into the arena below).
  std::vector<std::vector<VarId>> children(n);
  for (size_t v = 0; v < n; ++v) {
    for (VarId p : variables_[v].parents) {
      children[static_cast<size_t>(p)].push_back(static_cast<VarId>(v));
    }
  }
  while (!frontier.empty()) {
    VarId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (VarId c : children[static_cast<size_t>(v)]) {
      if (--in_degree[static_cast<size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  if (order.size() != n) {
    return Status::InvalidArgument(
        "CP-net has a dependency cycle among its variables");
  }
  for (size_t v = 0; v < n; ++v) {
    if (variables_[v].value_names.empty()) {
      return Status::InvalidArgument("variable \"" + variables_[v].name +
                                     "\" has an empty domain");
    }
    if (!variables_[v].cpt.IsComplete()) {
      return Status::InvalidArgument(
          "variable \"" + variables_[v].name + "\" is missing rankings for " +
          std::to_string(variables_[v].cpt.MissingRows().size()) +
          " CPT row(s)");
    }
  }
  topo_order_ = std::move(order);

  // ---- Arena compilation ----------------------------------------------
  // From here on everything is known-good; build the index-addressed
  // records and the shared pools the query methods run on.
  recs_.assign(n, VarRec{});
  parent_pool_.clear();
  children_pool_.clear();
  cone_pool_.clear();
  rankings_pool_.clear();

  size_t total_parents = 0;
  size_t total_rankings = 0;
  for (size_t v = 0; v < n; ++v) {
    total_parents += variables_[v].parents.size();
    total_rankings += variables_[v].cpt.num_rows() *
                      static_cast<size_t>(variables_[v].cpt.domain_size());
  }
  parent_pool_.reserve(total_parents);
  children_pool_.reserve(total_parents);  // one child slot per arc
  rankings_pool_.reserve(total_rankings);

  for (size_t v = 0; v < n; ++v) {
    const Variable& var = variables_[v];
    VarRec& rec = recs_[v];
    rec.domain = static_cast<int32_t>(var.value_names.size());

    // Parent arcs with mixed-radix strides: the CPT row of v under an
    // outcome is sum_i stride[i] * outcome[parents[i]], matching
    // Cpt::RowIndex (first parent most significant). The parent's domain
    // rides along so value range checks never leave this cache line.
    rec.parents_off = static_cast<uint32_t>(parent_pool_.size());
    rec.parents_len = static_cast<uint32_t>(var.parents.size());
    size_t stride = 1;
    const size_t first_arc = parent_pool_.size();
    for (VarId p : var.parents) {
      ParentArc arc;
      arc.parent = p;
      arc.domain = static_cast<int32_t>(DomainSize(p));
      parent_pool_.push_back(arc);
    }
    for (size_t i = var.parents.size(); i-- > 0;) {
      parent_pool_[first_arc + i].stride = stride;
      stride *= static_cast<size_t>(parent_pool_[first_arc + i].domain);
    }

    rec.children_off = static_cast<uint32_t>(children_pool_.size());
    rec.children_len = static_cast<uint32_t>(children[v].size());
    children_pool_.insert(children_pool_.end(), children[v].begin(),
                          children[v].end());

    // CPT rows, best value first: row r of v is the domain-long slice at
    // rankings_pool_[rows_off + r * domain].
    rec.rows_off = rankings_pool_.size();
    rec.num_rows = var.cpt.num_rows();
    for (size_t row = 0; row < rec.num_rows; ++row) {
      const PreferenceRanking* ranking = var.cpt.RankingOrNull(row);
      rankings_pool_.insert(rankings_pool_.end(), ranking->begin(),
                            ranking->end());
    }
  }

  // Descendant cones (v plus everything reachable via child arcs), each
  // in topological order — the re-sweep schedule of RecompleteFrom.
  std::vector<size_t> topo_pos(n, 0);
  for (size_t i = 0; i < n; ++i) {
    topo_pos[static_cast<size_t>(topo_order_[i])] = i;
  }
  std::vector<char> reached(n);
  std::vector<VarId> stack;
  std::vector<VarId> cone;
  for (size_t v = 0; v < n; ++v) {
    std::fill(reached.begin(), reached.end(), 0);
    stack.assign(1, static_cast<VarId>(v));
    reached[v] = 1;
    while (!stack.empty()) {
      VarId at = stack.back();
      stack.pop_back();
      const VarRec& at_rec = recs_[static_cast<size_t>(at)];
      for (uint32_t i = 0; i < at_rec.children_len; ++i) {
        VarId c = children_pool_[at_rec.children_off + i];
        if (!reached[static_cast<size_t>(c)]) {
          reached[static_cast<size_t>(c)] = 1;
          stack.push_back(c);
        }
      }
    }
    cone.clear();
    for (size_t c = 0; c < n; ++c) {
      if (reached[c]) cone.push_back(static_cast<VarId>(c));
    }
    std::sort(cone.begin(), cone.end(), [&](VarId a, VarId b) {
      return topo_pos[static_cast<size_t>(a)] <
             topo_pos[static_cast<size_t>(b)];
    });
    recs_[v].cone_off = static_cast<uint32_t>(cone_pool_.size());
    recs_[v].cone_len = static_cast<uint32_t>(cone.size());
    cone_pool_.insert(cone_pool_.end(), cone.begin(), cone.end());
  }

  validated_ = true;
  return Status::OK();
}

const std::string& CpNet::VariableName(VarId v) const {
  return variables_[static_cast<size_t>(v)].name;
}

Result<VarId> CpNet::FindVariable(const std::string& name) const {
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].name == name) return static_cast<VarId>(v);
  }
  return Status::NotFound("no variable named \"" + name + "\"");
}

int CpNet::DomainSize(VarId v) const {
  return static_cast<int>(variables_[static_cast<size_t>(v)].value_names
                              .size());
}

const std::vector<std::string>& CpNet::ValueNames(VarId v) const {
  return variables_[static_cast<size_t>(v)].value_names;
}

const std::vector<VarId>& CpNet::Parents(VarId v) const {
  return variables_[static_cast<size_t>(v)].parents;
}

std::vector<VarId> CpNet::Children(VarId v) const {
  if (validated_) {
    const VarRec& rec = recs_[static_cast<size_t>(v)];
    return std::vector<VarId>(
        children_pool_.begin() + rec.children_off,
        children_pool_.begin() + rec.children_off + rec.children_len);
  }
  std::vector<VarId> children;
  for (size_t c = 0; c < variables_.size(); ++c) {
    const std::vector<VarId>& parents = variables_[c].parents;
    if (std::find(parents.begin(), parents.end(), v) != parents.end()) {
      children.push_back(static_cast<VarId>(c));
    }
  }
  return children;
}

std::span<const VarId> CpNet::DescendantCone(VarId v) const {
  if (!validated_) return {};
  const VarRec& rec = recs_[static_cast<size_t>(v)];
  return {cone_pool_.data() + rec.cone_off, rec.cone_len};
}

const Cpt& CpNet::CptOf(VarId v) const {
  return variables_[static_cast<size_t>(v)].cpt;
}

size_t CpNet::ConfigurationSpaceSize() const {
  size_t total = 1;
  for (const Variable& var : variables_) {
    size_t d = var.value_names.size();
    if (d != 0 && total > std::numeric_limits<size_t>::max() / d) {
      return std::numeric_limits<size_t>::max();
    }
    total *= d;
  }
  return total;
}

Result<std::vector<VarId>> CpNet::TopologicalOrder() const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  return topo_order_;
}

Status CpNet::RowForError(VarId v, VarId parent, ValueId value) const {
  const Variable& var = variables_[static_cast<size_t>(v)];
  if (value == kUnassigned) {
    return Status::FailedPrecondition("parent \"" + VariableName(parent) +
                                      "\" of \"" + var.name +
                                      "\" is unassigned");
  }
  return Status::OutOfRange("parent value " + std::to_string(value) +
                            " outside domain of size " +
                            std::to_string(DomainSize(parent)));
}

Result<size_t> CpNet::RowFor(VarId v, const Assignment& outcome) const {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  const Variable& var = variables_[static_cast<size_t>(v)];
  if (validated_) {
    // Hot path: the flat parent arcs turn the row lookup into a dot
    // product over the outcome — no temporary parent-value vector and no
    // message construction unless a lookup actually fails.
    const VarRec& rec = recs_[static_cast<size_t>(v)];
    const ParentArc* arcs = parent_pool_.data() + rec.parents_off;
    size_t row = 0;
    for (uint32_t i = 0; i < rec.parents_len; ++i) {
      const ParentArc& arc = arcs[i];
      if (static_cast<size_t>(arc.parent) >= outcome.size()) {
        return RowForError(v, arc.parent, kUnassigned);
      }
      ValueId value = outcome.Get(arc.parent);
      if (value < 0 || value >= arc.domain) {
        return RowForError(v, arc.parent, value);
      }
      row += arc.stride * static_cast<size_t>(value);
    }
    return row;
  }
  std::vector<ValueId> parent_values;
  parent_values.reserve(var.parents.size());
  for (VarId p : var.parents) {
    if (!outcome.IsAssigned(p)) {
      return RowForError(v, p, kUnassigned);
    }
    parent_values.push_back(outcome.Get(p));
  }
  return var.cpt.RowIndex(parent_values);
}

Result<Assignment> CpNet::OptimalOutcome() const {
  return OptimalCompletion(Assignment(variables_.size()));
}

Result<Assignment> CpNet::OptimalCompletion(
    const Assignment& evidence) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (evidence.size() != variables_.size()) {
    return Status::InvalidArgument(
        "evidence covers " + std::to_string(evidence.size()) +
        " variables, network has " + std::to_string(variables_.size()));
  }
  Assignment outcome = evidence;
  uint64_t rows_swept = 0;
  for (VarId v : topo_order_) {
    const VarRec& rec = recs_[static_cast<size_t>(v)];
    ValueId fixed = evidence.Get(v);
    if (fixed != kUnassigned) {
      if (fixed < 0 || fixed >= rec.domain) {
        return Status::OutOfRange("evidence value " + std::to_string(fixed) +
                                  " outside domain of \"" + VariableName(v) +
                                  "\"");
      }
      continue;  // Viewer's explicit choice is frozen.
    }
    // Parents precede v in topo order, so their outcome values were
    // either swept (in range by construction) or frozen evidence that the
    // check above already validated — the row needs no range checks.
    const ParentArc* arcs = parent_pool_.data() + rec.parents_off;
    size_t row = 0;
    for (uint32_t i = 0; i < rec.parents_len; ++i) {
      row += arcs[i].stride * static_cast<size_t>(outcome.Get(arcs[i].parent));
    }
    outcome.Set(
        v, rankings_pool_[rec.rows_off +
                          row * static_cast<size_t>(rec.domain)]);
    ++rows_swept;
  }
  if (m_sweep_calls_ != nullptr) {
    m_sweep_calls_->Add(1);
    m_sweep_rows_->Add(rows_swept);
  }
  return outcome;
}

Status CpNet::RecompleteInto(const Assignment& base_outcome, VarId pinned,
                             ValueId value, Assignment* out) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (out == nullptr) {
    return Status::InvalidArgument("output assignment must not be null");
  }
  MMCONF_RETURN_IF_ERROR(CheckVar(pinned));
  if (base_outcome.size() != variables_.size() ||
      !base_outcome.IsComplete()) {
    return Status::InvalidArgument(
        "base outcome must be a full assignment over the network");
  }
  const VarRec& pin_rec = recs_[static_cast<size_t>(pinned)];
  if (value < 0 || value >= pin_rec.domain) {
    return Status::OutOfRange("value " + std::to_string(value) +
                              " outside domain of \"" +
                              VariableName(pinned) + "\"");
  }
  *out = base_outcome;  // Reuses out's storage when already sized.
  out->Set(pinned, value);
  uint64_t rows_touched = 0;
  uint64_t skipped = 0;
  if (value != base_outcome.Get(pinned)) {
    // Watched-style sweep over the pinned variable's descendant cone (in
    // topological order, the pin itself first). A variable re-ranks only
    // when some parent's value differs from the watched base assignment;
    // since changed parents are themselves cone members settled earlier
    // (or the pin), the dirty test needs nothing beyond comparing the two
    // assignments — no allocation, no visited set. A pin whose effect
    // dies out leaves the rest of the cone untouched.
    const VarId* cone = cone_pool_.data() + pin_rec.cone_off;
    for (uint32_t ci = 0; ci < pin_rec.cone_len; ++ci) {
      VarId v = cone[ci];
      if (v == pinned) continue;  // The newly pinned choice is frozen.
      const VarRec& rec = recs_[static_cast<size_t>(v)];
      const ParentArc* arcs = parent_pool_.data() + rec.parents_off;
      size_t row = 0;
      bool dirty = false;
      for (uint32_t i = 0; i < rec.parents_len; ++i) {
        const ParentArc& arc = arcs[i];
        ValueId pv = out->Get(arc.parent);
        dirty |= pv != base_outcome.Get(arc.parent);
        if (pv < 0 || pv >= arc.domain) {
          return RowForError(v, arc.parent, pv);
        }
        row += arc.stride * static_cast<size_t>(pv);
      }
      if (!dirty) {
        ++skipped;
        continue;  // Same row as the base sweep -> same best value.
      }
      out->Set(
          v, rankings_pool_[rec.rows_off +
                            row * static_cast<size_t>(rec.domain)]);
      ++rows_touched;
    }
  } else {
    // Pinning the value the base already carries changes nothing: the
    // base sweep would reproduce itself. skipped counts the cone suffix
    // the watch spared us.
    skipped = pin_rec.cone_len > 0 ? pin_rec.cone_len - 1 : 0;
  }
  if (m_recomplete_calls_ != nullptr) {
    m_recomplete_calls_->Add(1);
    m_recomplete_cone_->Add(pin_rec.cone_len);
    m_recomplete_rows_->Add(rows_touched);
    m_recomplete_skipped_->Add(skipped);
  }
  return Status::OK();
}

Result<Assignment> CpNet::RecompleteFrom(const Assignment& base_outcome,
                                         VarId pinned, ValueId value) const {
  Assignment out;
  MMCONF_RETURN_IF_ERROR(RecompleteInto(base_outcome, pinned, value, &out));
  return out;
}

Result<ValueId> CpNet::PreferredValue(VarId v,
                                      const Assignment& outcome) const {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, outcome));
  if (validated_) {
    const VarRec& rec = recs_[static_cast<size_t>(v)];
    return rankings_pool_[rec.rows_off +
                          row * static_cast<size_t>(rec.domain)];
  }
  return variables_[static_cast<size_t>(v)].cpt.BestValue(row);
}

Result<std::vector<Flip>> CpNet::ImprovingFlips(
    const Assignment& outcome) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (!outcome.IsComplete() || outcome.size() != variables_.size()) {
    return Status::InvalidArgument("outcome must assign every variable");
  }
  std::vector<Flip> flips;
  for (size_t v = 0; v < variables_.size(); ++v) {
    const VarRec& rec = recs_[v];
    const ParentArc* arcs = parent_pool_.data() + rec.parents_off;
    size_t row = 0;
    for (uint32_t i = 0; i < rec.parents_len; ++i) {
      const ParentArc& arc = arcs[i];
      ValueId pv = outcome.Get(arc.parent);
      if (pv < 0 || pv >= arc.domain) {
        return RowForError(static_cast<VarId>(v), arc.parent, pv);
      }
      row += arc.stride * static_cast<size_t>(pv);
    }
    // Walk the row's ranking in place: everything ranked above the
    // current value is an improving flip.
    const ValueId* ranking =
        rankings_pool_.data() + rec.rows_off +
        row * static_cast<size_t>(rec.domain);
    ValueId current = outcome.Get(static_cast<VarId>(v));
    const size_t domain = static_cast<size_t>(rec.domain);
    size_t rank = 0;
    while (rank < domain && ranking[rank] != current) ++rank;
    if (rank == domain) {
      return Status::InvalidArgument("value " + std::to_string(current) +
                                     " not in domain");
    }
    for (size_t r = 0; r < rank; ++r) {
      flips.push_back({static_cast<VarId>(v), ranking[r]});
    }
  }
  return flips;
}

Result<bool> CpNet::IsOptimal(const Assignment& outcome) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips, ImprovingFlips(outcome));
  return flips.empty();
}

void CpNet::SetObserver(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) {
    m_sweep_calls_ = nullptr;
    m_sweep_rows_ = nullptr;
    m_recomplete_calls_ = nullptr;
    m_recomplete_cone_ = nullptr;
    m_recomplete_rows_ = nullptr;
    m_recomplete_skipped_ = nullptr;
    return;
  }
  m_sweep_calls_ = metrics->GetCounter("cpnet.sweep.calls");
  m_sweep_rows_ = metrics->GetCounter("cpnet.sweep.rows");
  m_recomplete_calls_ = metrics->GetCounter("cpnet.recomplete.calls");
  m_recomplete_cone_ = metrics->GetCounter("cpnet.recomplete.cone_vars");
  m_recomplete_rows_ = metrics->GetCounter("cpnet.recomplete.rows_touched");
  m_recomplete_skipped_ =
      metrics->GetCounter("cpnet.recomplete.vars_skipped");
}

std::string CpNet::DebugString() const {
  std::string out;
  for (size_t v = 0; v < variables_.size(); ++v) {
    const Variable& var = variables_[v];
    out += var.name + " {";
    for (size_t i = 0; i < var.value_names.size(); ++i) {
      if (i > 0) out += ", ";
      out += var.value_names[i];
    }
    out += "}";
    if (!var.parents.empty()) {
      out += " <- ";
      for (size_t i = 0; i < var.parents.size(); ++i) {
        if (i > 0) out += ", ";
        out += VariableName(var.parents[i]);
      }
    }
    out += '\n';
    for (size_t row = 0; row < var.cpt.num_rows(); ++row) {
      Result<PreferenceRanking> ranking = var.cpt.Ranking(row);
      out += "  row " + std::to_string(row) + ": ";
      if (!ranking.ok()) {
        out += "(unset)\n";
        continue;
      }
      for (size_t i = 0; i < ranking->size(); ++i) {
        if (i > 0) out += " > ";
        out += var.value_names[static_cast<size_t>((*ranking)[i])];
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mmconf::cpnet
