#include "cpnet/cpnet.h"

#include <algorithm>
#include <limits>

namespace mmconf::cpnet {

VarId CpNet::AddVariable(std::string name,
                         std::vector<std::string> value_names) {
  Variable var;
  var.name = std::move(name);
  var.value_names = std::move(value_names);
  var.cpt = Cpt({}, static_cast<int>(var.value_names.size()));
  variables_.push_back(std::move(var));
  validated_ = false;
  return static_cast<VarId>(variables_.size() - 1);
}

Status CpNet::CheckVar(VarId v) const {
  if (v < 0 || static_cast<size_t>(v) >= variables_.size()) {
    return Status::OutOfRange("no variable with id " + std::to_string(v));
  }
  return Status::OK();
}

Status CpNet::SetParents(VarId v, std::vector<VarId> parents) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  std::vector<int> parent_domains;
  for (size_t i = 0; i < parents.size(); ++i) {
    MMCONF_RETURN_IF_ERROR(CheckVar(parents[i]));
    if (parents[i] == v) {
      return Status::InvalidArgument("variable cannot be its own parent");
    }
    for (size_t j = 0; j < i; ++j) {
      if (parents[j] == parents[i]) {
        return Status::InvalidArgument("duplicate parent " +
                                       std::to_string(parents[i]));
      }
    }
    parent_domains.push_back(DomainSize(parents[i]));
  }
  Variable& var = variables_[static_cast<size_t>(v)];
  var.parents = std::move(parents);
  var.cpt = Cpt(std::move(parent_domains),
                static_cast<int>(var.value_names.size()));
  validated_ = false;
  return Status::OK();
}

Status CpNet::SetPreference(VarId v,
                            const std::vector<ValueId>& parent_values,
                            PreferenceRanking ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetRanking(
      parent_values, std::move(ranking));
}

Status CpNet::SetUnconditionalPreference(VarId v,
                                         const PreferenceRanking& ranking) {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  validated_ = false;
  return variables_[static_cast<size_t>(v)].cpt.SetAllRankings(ranking);
}

Status CpNet::Validate() {
  // Kahn's algorithm for a topological order; a leftover node means a
  // cycle.
  const size_t n = variables_.size();
  // in_degree counts parents (edges parent -> child).
  std::vector<int> in_degree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    in_degree[v] = static_cast<int>(variables_[v].parents.size());
  }
  std::vector<VarId> order;
  order.reserve(n);
  std::vector<VarId> frontier;
  for (size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) frontier.push_back(static_cast<VarId>(v));
  }
  // Children adjacency.
  std::vector<std::vector<VarId>> children(n);
  for (size_t v = 0; v < n; ++v) {
    for (VarId p : variables_[v].parents) {
      children[static_cast<size_t>(p)].push_back(static_cast<VarId>(v));
    }
  }
  while (!frontier.empty()) {
    VarId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (VarId c : children[static_cast<size_t>(v)]) {
      if (--in_degree[static_cast<size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  if (order.size() != n) {
    return Status::InvalidArgument(
        "CP-net has a dependency cycle among its variables");
  }
  for (size_t v = 0; v < n; ++v) {
    if (variables_[v].value_names.empty()) {
      return Status::InvalidArgument("variable \"" + variables_[v].name +
                                     "\" has an empty domain");
    }
    if (!variables_[v].cpt.IsComplete()) {
      return Status::InvalidArgument(
          "variable \"" + variables_[v].name + "\" is missing rankings for " +
          std::to_string(variables_[v].cpt.MissingRows().size()) +
          " CPT row(s)");
    }
  }
  topo_order_ = std::move(order);
  children_ = std::move(children);

  // Mixed-radix parent strides: the CPT row of v under an outcome is
  // sum_i strides[i] * outcome[parents[i]], matching Cpt::RowIndex (first
  // parent most significant).
  parent_strides_.assign(n, {});
  for (size_t v = 0; v < n; ++v) {
    const std::vector<VarId>& parents = variables_[v].parents;
    std::vector<size_t>& strides = parent_strides_[v];
    strides.assign(parents.size(), 1);
    for (size_t i = parents.size(); i-- > 1;) {
      strides[i - 1] =
          strides[i] * static_cast<size_t>(DomainSize(parents[i]));
    }
  }

  // Descendant cones (v plus everything reachable via child arcs), each
  // in topological order — the re-sweep schedule of RecompleteFrom.
  std::vector<size_t> topo_pos(n, 0);
  for (size_t i = 0; i < n; ++i) {
    topo_pos[static_cast<size_t>(topo_order_[i])] = i;
  }
  descendant_cone_.assign(n, {});
  std::vector<char> reached(n);
  std::vector<VarId> stack;
  for (size_t v = 0; v < n; ++v) {
    std::fill(reached.begin(), reached.end(), 0);
    stack.assign(1, static_cast<VarId>(v));
    reached[v] = 1;
    while (!stack.empty()) {
      VarId at = stack.back();
      stack.pop_back();
      for (VarId c : children_[static_cast<size_t>(at)]) {
        if (!reached[static_cast<size_t>(c)]) {
          reached[static_cast<size_t>(c)] = 1;
          stack.push_back(c);
        }
      }
    }
    std::vector<VarId>& cone = descendant_cone_[v];
    for (size_t c = 0; c < n; ++c) {
      if (reached[c]) cone.push_back(static_cast<VarId>(c));
    }
    std::sort(cone.begin(), cone.end(), [&](VarId a, VarId b) {
      return topo_pos[static_cast<size_t>(a)] <
             topo_pos[static_cast<size_t>(b)];
    });
  }

  validated_ = true;
  return Status::OK();
}

const std::string& CpNet::VariableName(VarId v) const {
  return variables_[static_cast<size_t>(v)].name;
}

Result<VarId> CpNet::FindVariable(const std::string& name) const {
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].name == name) return static_cast<VarId>(v);
  }
  return Status::NotFound("no variable named \"" + name + "\"");
}

int CpNet::DomainSize(VarId v) const {
  return static_cast<int>(variables_[static_cast<size_t>(v)].value_names
                              .size());
}

const std::vector<std::string>& CpNet::ValueNames(VarId v) const {
  return variables_[static_cast<size_t>(v)].value_names;
}

const std::vector<VarId>& CpNet::Parents(VarId v) const {
  return variables_[static_cast<size_t>(v)].parents;
}

std::vector<VarId> CpNet::Children(VarId v) const {
  if (validated_) return children_[static_cast<size_t>(v)];
  std::vector<VarId> children;
  for (size_t c = 0; c < variables_.size(); ++c) {
    const std::vector<VarId>& parents = variables_[c].parents;
    if (std::find(parents.begin(), parents.end(), v) != parents.end()) {
      children.push_back(static_cast<VarId>(c));
    }
  }
  return children;
}

const std::vector<VarId>& CpNet::DescendantCone(VarId v) const {
  return descendant_cone_[static_cast<size_t>(v)];
}

const Cpt& CpNet::CptOf(VarId v) const {
  return variables_[static_cast<size_t>(v)].cpt;
}

size_t CpNet::ConfigurationSpaceSize() const {
  size_t total = 1;
  for (const Variable& var : variables_) {
    size_t d = var.value_names.size();
    if (d != 0 && total > std::numeric_limits<size_t>::max() / d) {
      return std::numeric_limits<size_t>::max();
    }
    total *= d;
  }
  return total;
}

Result<std::vector<VarId>> CpNet::TopologicalOrder() const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  return topo_order_;
}

Status CpNet::RowForError(VarId v, VarId parent, ValueId value) const {
  const Variable& var = variables_[static_cast<size_t>(v)];
  if (value == kUnassigned) {
    return Status::FailedPrecondition("parent \"" + VariableName(parent) +
                                      "\" of \"" + var.name +
                                      "\" is unassigned");
  }
  return Status::OutOfRange("parent value " + std::to_string(value) +
                            " outside domain of size " +
                            std::to_string(DomainSize(parent)));
}

Result<size_t> CpNet::RowFor(VarId v, const Assignment& outcome) const {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  const Variable& var = variables_[static_cast<size_t>(v)];
  if (validated_) {
    // Hot path: the cached strides turn the row lookup into a dot
    // product over the outcome — no temporary parent-value vector and no
    // message construction unless a lookup actually fails.
    const std::vector<size_t>& strides =
        parent_strides_[static_cast<size_t>(v)];
    size_t row = 0;
    for (size_t i = 0; i < var.parents.size(); ++i) {
      VarId p = var.parents[i];
      if (static_cast<size_t>(p) >= outcome.size()) {
        return RowForError(v, p, kUnassigned);
      }
      ValueId value = outcome.Get(p);
      if (value < 0 || value >= DomainSize(p)) {
        return RowForError(v, p, value);
      }
      row += strides[i] * static_cast<size_t>(value);
    }
    return row;
  }
  std::vector<ValueId> parent_values;
  parent_values.reserve(var.parents.size());
  for (VarId p : var.parents) {
    if (!outcome.IsAssigned(p)) {
      return RowForError(v, p, kUnassigned);
    }
    parent_values.push_back(outcome.Get(p));
  }
  return var.cpt.RowIndex(parent_values);
}

Result<Assignment> CpNet::OptimalOutcome() const {
  return OptimalCompletion(Assignment(variables_.size()));
}

Result<Assignment> CpNet::OptimalCompletion(
    const Assignment& evidence) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (evidence.size() != variables_.size()) {
    return Status::InvalidArgument(
        "evidence covers " + std::to_string(evidence.size()) +
        " variables, network has " + std::to_string(variables_.size()));
  }
  Assignment outcome = evidence;
  for (VarId v : topo_order_) {
    ValueId fixed = evidence.Get(v);
    if (fixed != kUnassigned) {
      if (fixed < 0 || fixed >= DomainSize(v)) {
        return Status::OutOfRange("evidence value " + std::to_string(fixed) +
                                  " outside domain of \"" + VariableName(v) +
                                  "\"");
      }
      continue;  // Viewer's explicit choice is frozen.
    }
    MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, outcome));
    MMCONF_ASSIGN_OR_RETURN(
        ValueId best, variables_[static_cast<size_t>(v)].cpt.BestValue(row));
    outcome.Set(v, best);
  }
  return outcome;
}

Status CpNet::RecompleteInto(const Assignment& base_outcome, VarId pinned,
                             ValueId value, Assignment* out) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (out == nullptr) {
    return Status::InvalidArgument("output assignment must not be null");
  }
  MMCONF_RETURN_IF_ERROR(CheckVar(pinned));
  if (base_outcome.size() != variables_.size() ||
      !base_outcome.IsComplete()) {
    return Status::InvalidArgument(
        "base outcome must be a full assignment over the network");
  }
  if (value < 0 || value >= DomainSize(pinned)) {
    return Status::OutOfRange("value " + std::to_string(value) +
                              " outside domain of \"" +
                              VariableName(pinned) + "\"");
  }
  *out = base_outcome;  // Reuses out's storage when already sized.
  out->Set(pinned, value);
  for (VarId v : descendant_cone_[static_cast<size_t>(pinned)]) {
    if (v == pinned) continue;  // The newly pinned choice is frozen.
    MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, *out));
    MMCONF_ASSIGN_OR_RETURN(
        ValueId best, variables_[static_cast<size_t>(v)].cpt.BestValue(row));
    out->Set(v, best);
  }
  return Status::OK();
}

Result<Assignment> CpNet::RecompleteFrom(const Assignment& base_outcome,
                                         VarId pinned, ValueId value) const {
  Assignment out;
  MMCONF_RETURN_IF_ERROR(RecompleteInto(base_outcome, pinned, value, &out));
  return out;
}

Result<ValueId> CpNet::PreferredValue(VarId v,
                                      const Assignment& outcome) const {
  MMCONF_RETURN_IF_ERROR(CheckVar(v));
  MMCONF_ASSIGN_OR_RETURN(size_t row, RowFor(v, outcome));
  return variables_[static_cast<size_t>(v)].cpt.BestValue(row);
}

Result<std::vector<Flip>> CpNet::ImprovingFlips(
    const Assignment& outcome) const {
  if (!validated_) {
    return Status::FailedPrecondition("CP-net not validated");
  }
  if (!outcome.IsComplete() || outcome.size() != variables_.size()) {
    return Status::InvalidArgument("outcome must assign every variable");
  }
  std::vector<Flip> flips;
  for (size_t v = 0; v < variables_.size(); ++v) {
    MMCONF_ASSIGN_OR_RETURN(size_t row,
                            RowFor(static_cast<VarId>(v), outcome));
    const Cpt& cpt = variables_[v].cpt;
    // Walk the ranking in place (no copy): everything ranked above the
    // current value is an improving flip.
    const PreferenceRanking* ranking = cpt.RankingOrNull(row);
    if (ranking == nullptr) {
      return Status::FailedPrecondition(
          "CPT row of \"" + variables_[v].name + "\" has no ranking");
    }
    ValueId current = outcome.Get(static_cast<VarId>(v));
    size_t rank = 0;
    while (rank < ranking->size() && (*ranking)[rank] != current) ++rank;
    if (rank == ranking->size()) {
      return Status::InvalidArgument("value " + std::to_string(current) +
                                     " not in domain");
    }
    for (size_t r = 0; r < rank; ++r) {
      flips.push_back({static_cast<VarId>(v), (*ranking)[r]});
    }
  }
  return flips;
}

Result<bool> CpNet::IsOptimal(const Assignment& outcome) const {
  MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips, ImprovingFlips(outcome));
  return flips.empty();
}

std::string CpNet::DebugString() const {
  std::string out;
  for (size_t v = 0; v < variables_.size(); ++v) {
    const Variable& var = variables_[v];
    out += var.name + " {";
    for (size_t i = 0; i < var.value_names.size(); ++i) {
      if (i > 0) out += ", ";
      out += var.value_names[i];
    }
    out += "}";
    if (!var.parents.empty()) {
      out += " <- ";
      for (size_t i = 0; i < var.parents.size(); ++i) {
        if (i > 0) out += ", ";
        out += VariableName(var.parents[i]);
      }
    }
    out += '\n';
    for (size_t row = 0; row < var.cpt.num_rows(); ++row) {
      Result<PreferenceRanking> ranking = var.cpt.Ranking(row);
      out += "  row " + std::to_string(row) + ": ";
      if (!ranking.ok()) {
        out += "(unset)\n";
        continue;
      }
      for (size_t i = 0; i < ranking->size(); ++i) {
        if (i > 0) out += " > ";
        out += var.value_names[static_cast<size_t>((*ranking)[i])];
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mmconf::cpnet
