#ifndef MMCONF_CPNET_SERIALIZE_H_
#define MMCONF_CPNET_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "cpnet/cpnet.h"

namespace mmconf::cpnet {

/// Serializes a CP-net to a line-oriented text form. The description of
/// the author's preferences "becomes a static part of the multimedia
/// document" — this is the format the document layer stores alongside the
/// component tree and ships to interaction servers.
///
///   cpnet 1
///   var <name> <k> <value-name>...      (one per variable, in id order)
///   parents <var-name> <parent-name>...
///   pref <var-name> [<parent-value-name>...] : <value-name>...
///   end
///
/// Variable and value names must not contain whitespace.
std::string ToText(const CpNet& net);

/// Parses the ToText format and validates the result.
Result<CpNet> FromText(const std::string& text);

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_SERIALIZE_H_
