#include "cpnet/brute_force.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace mmconf::cpnet {

Result<std::vector<Assignment>> EnumerateCompletions(
    const CpNet& net, const Assignment& evidence) {
  if (evidence.size() != net.num_variables()) {
    return Status::InvalidArgument("evidence size mismatch");
  }
  std::vector<VarId> free_vars;
  for (size_t v = 0; v < net.num_variables(); ++v) {
    if (!evidence.IsAssigned(static_cast<VarId>(v))) {
      free_vars.push_back(static_cast<VarId>(v));
    }
  }
  std::vector<Assignment> outcomes;
  Assignment current = evidence;
  // Odometer enumeration over the free variables.
  std::vector<ValueId> digits(free_vars.size(), 0);
  while (true) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      current.Set(free_vars[i], digits[i]);
    }
    outcomes.push_back(current);
    size_t pos = free_vars.size();
    while (pos > 0) {
      --pos;
      if (++digits[pos] < net.DomainSize(free_vars[pos])) break;
      digits[pos] = 0;
      if (pos == 0) return outcomes;
    }
    if (free_vars.empty()) return outcomes;
  }
}

Result<Assignment> BruteForceOptimalCompletion(const CpNet& net,
                                               const Assignment& evidence) {
  MMCONF_ASSIGN_OR_RETURN(std::vector<Assignment> outcomes,
                          EnumerateCompletions(net, evidence));
  for (const Assignment& outcome : outcomes) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips,
                            net.ImprovingFlips(outcome));
    bool blocked = false;
    for (const Flip& flip : flips) {
      // Flips on evidence variables are not available to the optimizer —
      // the viewer pinned those values.
      if (!evidence.IsAssigned(flip.var)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return outcome;
  }
  return Status::Internal(
      "no flip-free completion found; CP-net is not consistent");
}

Result<Assignment> BruteForceRecompleteFrom(const CpNet& net,
                                            const Assignment& evidence,
                                            VarId pinned, ValueId value) {
  if (evidence.size() != net.num_variables()) {
    return Status::InvalidArgument("evidence size mismatch");
  }
  if (pinned < 0 || static_cast<size_t>(pinned) >= net.num_variables()) {
    return Status::OutOfRange("no variable with id " +
                              std::to_string(pinned));
  }
  if (value < 0 || value >= net.DomainSize(pinned)) {
    return Status::OutOfRange("value " + std::to_string(value) +
                              " outside domain of \"" +
                              net.VariableName(pinned) + "\"");
  }
  Assignment extended = evidence;
  extended.Set(pinned, value);
  return BruteForceOptimalCompletion(net, extended);
}

Result<OutcomeRelation> CompareOutcomes(const CpNet& net,
                                        const Assignment& a,
                                        const Assignment& b,
                                        size_t max_nodes) {
  if (a == b) return OutcomeRelation::kEqual;
  MMCONF_ASSIGN_OR_RETURN(Dominance a_over_b,
                          DominanceQuery(net, a, b, max_nodes));
  if (a_over_b == Dominance::kDominates) {
    return OutcomeRelation::kFirstPreferred;
  }
  MMCONF_ASSIGN_OR_RETURN(Dominance b_over_a,
                          DominanceQuery(net, b, a, max_nodes));
  if (b_over_a == Dominance::kDominates) {
    return OutcomeRelation::kSecondPreferred;
  }
  if (a_over_b == Dominance::kAborted || b_over_a == Dominance::kAborted) {
    return OutcomeRelation::kUnknown;
  }
  return OutcomeRelation::kIncomparable;
}

Result<std::vector<Assignment>> FindImprovingSequence(
    const CpNet& net, const Assignment& better, const Assignment& worse,
    size_t max_nodes) {
  if (!better.IsComplete() || !worse.IsComplete() ||
      better.size() != net.num_variables() ||
      worse.size() != net.num_variables()) {
    return Status::InvalidArgument(
        "improving-sequence query requires two full outcomes");
  }
  if (better == worse) {
    return Status::NotFound("outcomes are equal; strict dominance fails");
  }
  std::deque<Assignment> frontier{worse};
  std::map<Assignment, Assignment> predecessor;  // child -> parent
  predecessor.emplace(worse, worse);
  while (!frontier.empty()) {
    if (predecessor.size() > max_nodes) {
      return Status::ResourceExhausted("flip-search node budget exhausted");
    }
    Assignment current = std::move(frontier.front());
    frontier.pop_front();
    MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips,
                            net.ImprovingFlips(current));
    for (const Flip& flip : flips) {
      Assignment next = current;
      next.Set(flip.var, flip.better);
      if (predecessor.count(next) > 0) continue;
      predecessor.emplace(next, current);
      if (next == better) {
        std::vector<Assignment> path{next};
        Assignment walk = current;
        while (!(predecessor.at(walk) == walk)) {
          path.push_back(walk);
          walk = predecessor.at(walk);
        }
        path.push_back(worse);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(std::move(next));
    }
  }
  return Status::NotFound("no improving flip sequence exists");
}

Result<Dominance> DominanceQuery(const CpNet& net, const Assignment& better,
                                 const Assignment& worse,
                                 size_t max_nodes) {
  if (!better.IsComplete() || !worse.IsComplete() ||
      better.size() != net.num_variables() ||
      worse.size() != net.num_variables()) {
    return Status::InvalidArgument(
        "dominance query requires two full outcomes");
  }
  if (better == worse) return Dominance::kNotDominates;  // Strict order.
  std::deque<Assignment> frontier{worse};
  std::set<Assignment> visited{worse};
  while (!frontier.empty()) {
    if (visited.size() > max_nodes) return Dominance::kAborted;
    Assignment current = std::move(frontier.front());
    frontier.pop_front();
    MMCONF_ASSIGN_OR_RETURN(std::vector<Flip> flips,
                            net.ImprovingFlips(current));
    for (const Flip& flip : flips) {
      Assignment next = current;
      next.Set(flip.var, flip.better);
      if (next == better) return Dominance::kDominates;
      if (visited.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  return Dominance::kNotDominates;
}

}  // namespace mmconf::cpnet
