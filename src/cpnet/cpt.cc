#include "cpnet/cpt.h"

#include <algorithm>

namespace mmconf::cpnet {

namespace {

size_t NumRowsFor(const std::vector<int>& parent_domain_sizes) {
  size_t rows = 1;
  for (int d : parent_domain_sizes) rows *= static_cast<size_t>(d);
  return rows;
}

}  // namespace

Cpt::Cpt(std::vector<int> parent_domain_sizes, int domain_size)
    : parent_domain_sizes_(std::move(parent_domain_sizes)),
      domain_size_(domain_size),
      rankings_(NumRowsFor(parent_domain_sizes_)) {}

Result<size_t> Cpt::RowIndex(
    const std::vector<ValueId>& parent_values) const {
  if (parent_values.size() != parent_domain_sizes_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(parent_domain_sizes_.size()) +
        " parent values, got " + std::to_string(parent_values.size()));
  }
  size_t row = 0;
  for (size_t i = 0; i < parent_values.size(); ++i) {
    ValueId v = parent_values[i];
    if (v < 0 || v >= parent_domain_sizes_[i]) {
      return Status::OutOfRange("parent value " + std::to_string(v) +
                                " outside domain of size " +
                                std::to_string(parent_domain_sizes_[i]));
    }
    row = row * static_cast<size_t>(parent_domain_sizes_[i]) +
          static_cast<size_t>(v);
  }
  return row;
}

std::vector<ValueId> Cpt::RowValues(size_t row) const {
  std::vector<ValueId> values(parent_domain_sizes_.size());
  for (size_t i = parent_domain_sizes_.size(); i-- > 0;) {
    size_t d = static_cast<size_t>(parent_domain_sizes_[i]);
    values[i] = static_cast<ValueId>(row % d);
    row /= d;
  }
  return values;
}

Status Cpt::SetRanking(size_t row, PreferenceRanking ranking) {
  if (row >= rankings_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " of " +
                              std::to_string(rankings_.size()));
  }
  if (ranking.size() != static_cast<size_t>(domain_size_)) {
    return Status::InvalidArgument(
        "ranking must order all " + std::to_string(domain_size_) +
        " domain values, got " + std::to_string(ranking.size()));
  }
  std::vector<bool> seen(static_cast<size_t>(domain_size_), false);
  for (ValueId v : ranking) {
    if (v < 0 || v >= domain_size_ || seen[static_cast<size_t>(v)]) {
      return Status::InvalidArgument("ranking is not a permutation");
    }
    seen[static_cast<size_t>(v)] = true;
  }
  rankings_[row] = std::move(ranking);
  return Status::OK();
}

Status Cpt::SetRanking(const std::vector<ValueId>& parent_values,
                       PreferenceRanking ranking) {
  MMCONF_ASSIGN_OR_RETURN(size_t row, RowIndex(parent_values));
  return SetRanking(row, std::move(ranking));
}

Status Cpt::SetAllRankings(const PreferenceRanking& ranking) {
  for (size_t row = 0; row < rankings_.size(); ++row) {
    MMCONF_RETURN_IF_ERROR(SetRanking(row, ranking));
  }
  return Status::OK();
}

Status Cpt::RowError(size_t row) const {
  if (row >= rankings_.size()) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  return Status::FailedPrecondition("CPT row " + std::to_string(row) +
                                    " has no ranking");
}

Result<PreferenceRanking> Cpt::Ranking(size_t row) const {
  const PreferenceRanking* ranking = RankingOrNull(row);
  if (ranking == nullptr) return RowError(row);
  return *ranking;
}

Result<ValueId> Cpt::BestValue(size_t row) const {
  const PreferenceRanking* ranking = RankingOrNull(row);
  if (ranking == nullptr) return RowError(row);
  return ranking->front();
}

Result<int> Cpt::RankOf(size_t row, ValueId value) const {
  const PreferenceRanking* ranking = RankingOrNull(row);
  if (ranking == nullptr) return RowError(row);
  auto it = std::find(ranking->begin(), ranking->end(), value);
  if (it == ranking->end()) {
    return Status::InvalidArgument("value " + std::to_string(value) +
                                   " not in domain");
  }
  return static_cast<int>(it - ranking->begin());
}

bool Cpt::IsComplete() const {
  return std::none_of(rankings_.begin(), rankings_.end(),
                      [](const PreferenceRanking& r) { return r.empty(); });
}

std::vector<size_t> Cpt::MissingRows() const {
  std::vector<size_t> missing;
  for (size_t row = 0; row < rankings_.size(); ++row) {
    if (rankings_[row].empty()) missing.push_back(row);
  }
  return missing;
}

}  // namespace mmconf::cpnet
