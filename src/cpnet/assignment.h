#ifndef MMCONF_CPNET_ASSIGNMENT_H_
#define MMCONF_CPNET_ASSIGNMENT_H_

#include <string>
#include <vector>

namespace mmconf::cpnet {

/// Index of a CP-net variable. In the presentation model each variable is
/// one document component.
using VarId = int;

/// Index of a value within a variable's domain. In the presentation model
/// each value is one presentation option of the component (e.g. flat /
/// segmented / hidden for a CT image).
using ValueId = int;

/// Marker for "unassigned" in partial assignments.
inline constexpr ValueId kUnassigned = -1;

/// An assignment of values to the variables of a CP-net. A *full*
/// assignment (every variable set) is an outcome — one complete
/// presentation configuration of the document. A *partial* assignment is
/// evidence: the viewers' explicit choices that the optimal completion
/// must respect.
class Assignment {
 public:
  Assignment() = default;
  /// Creates an all-unassigned partial assignment over `num_vars`.
  explicit Assignment(size_t num_vars)
      : values_(num_vars, kUnassigned) {}
  /// Wraps explicit values (kUnassigned entries allowed).
  explicit Assignment(std::vector<ValueId> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }

  ValueId Get(VarId v) const { return values_[static_cast<size_t>(v)]; }
  void Set(VarId v, ValueId value) {
    values_[static_cast<size_t>(v)] = value;
  }
  void Clear(VarId v) { values_[static_cast<size_t>(v)] = kUnassigned; }

  bool IsAssigned(VarId v) const { return Get(v) != kUnassigned; }
  /// True when every variable is assigned (the assignment is an outcome).
  bool IsComplete() const;
  /// Number of assigned variables.
  size_t AssignedCount() const;

  /// True if every assignment made in `other` matches this one. Both must
  /// have the same size.
  bool Extends(const Assignment& other) const;

  const std::vector<ValueId>& values() const { return values_; }

  /// "[0 1 * 2]" style rendering (* = unassigned).
  std::string ToString() const;

 private:
  std::vector<ValueId> values_;
};

bool operator==(const Assignment& a, const Assignment& b);
bool operator!=(const Assignment& a, const Assignment& b);
bool operator<(const Assignment& a, const Assignment& b);

}  // namespace mmconf::cpnet

#endif  // MMCONF_CPNET_ASSIGNMENT_H_
