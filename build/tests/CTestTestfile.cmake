# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/cpnet_test[1]_include.cmake")
include("/root/repo/build/tests/cpnet_update_test[1]_include.cmake")
include("/root/repo/build/tests/doc_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/audio_apps_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/authoring_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/triggers_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/imaging_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_store_test[1]_include.cmake")
