# Empty dependencies file for cpnet_test.
# This may be replaced when dependencies are built.
