file(REMOVE_RECURSE
  "CMakeFiles/cpnet_test.dir/cpnet_test.cc.o"
  "CMakeFiles/cpnet_test.dir/cpnet_test.cc.o.d"
  "cpnet_test"
  "cpnet_test.pdb"
  "cpnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
