# Empty compiler generated dependencies file for audio_apps_test.
# This may be replaced when dependencies are built.
