file(REMOVE_RECURSE
  "CMakeFiles/audio_apps_test.dir/audio_apps_test.cc.o"
  "CMakeFiles/audio_apps_test.dir/audio_apps_test.cc.o.d"
  "audio_apps_test"
  "audio_apps_test.pdb"
  "audio_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
