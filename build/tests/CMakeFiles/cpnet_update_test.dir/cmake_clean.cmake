file(REMOVE_RECURSE
  "CMakeFiles/cpnet_update_test.dir/cpnet_update_test.cc.o"
  "CMakeFiles/cpnet_update_test.dir/cpnet_update_test.cc.o.d"
  "cpnet_update_test"
  "cpnet_update_test.pdb"
  "cpnet_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpnet_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
