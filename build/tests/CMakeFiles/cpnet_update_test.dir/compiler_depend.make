# Empty compiler generated dependencies file for cpnet_update_test.
# This may be replaced when dependencies are built.
