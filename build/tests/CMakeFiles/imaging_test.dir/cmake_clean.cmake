file(REMOVE_RECURSE
  "CMakeFiles/imaging_test.dir/imaging_test.cc.o"
  "CMakeFiles/imaging_test.dir/imaging_test.cc.o.d"
  "imaging_test"
  "imaging_test.pdb"
  "imaging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
