
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/imaging_test.cc" "tests/CMakeFiles/imaging_test.dir/imaging_test.cc.o" "gcc" "tests/CMakeFiles/imaging_test.dir/imaging_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_cpnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
