# Empty compiler generated dependencies file for cmp_store_test.
# This may be replaced when dependencies are built.
