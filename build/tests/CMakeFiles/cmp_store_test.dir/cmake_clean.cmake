file(REMOVE_RECURSE
  "CMakeFiles/cmp_store_test.dir/cmp_store_test.cc.o"
  "CMakeFiles/cmp_store_test.dir/cmp_store_test.cc.o.d"
  "cmp_store_test"
  "cmp_store_test.pdb"
  "cmp_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
