# Empty compiler generated dependencies file for bench_voice.
# This may be replaced when dependencies are built.
