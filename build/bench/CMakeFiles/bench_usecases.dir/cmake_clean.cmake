file(REMOVE_RECURSE
  "CMakeFiles/bench_usecases.dir/bench_usecases.cc.o"
  "CMakeFiles/bench_usecases.dir/bench_usecases.cc.o.d"
  "bench_usecases"
  "bench_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
