# Empty dependencies file for bench_usecases.
# This may be replaced when dependencies are built.
