# Empty dependencies file for bench_rooms.
# This may be replaced when dependencies are built.
