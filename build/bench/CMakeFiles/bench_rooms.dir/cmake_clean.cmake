file(REMOVE_RECURSE
  "CMakeFiles/bench_rooms.dir/bench_rooms.cc.o"
  "CMakeFiles/bench_rooms.dir/bench_rooms.cc.o.d"
  "bench_rooms"
  "bench_rooms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rooms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
