file(REMOVE_RECURSE
  "CMakeFiles/bench_cpnet.dir/bench_cpnet.cc.o"
  "CMakeFiles/bench_cpnet.dir/bench_cpnet.cc.o.d"
  "bench_cpnet"
  "bench_cpnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
