# Empty dependencies file for bench_cpnet.
# This may be replaced when dependencies are built.
