file(REMOVE_RECURSE
  "CMakeFiles/bench_document.dir/bench_document.cc.o"
  "CMakeFiles/bench_document.dir/bench_document.cc.o.d"
  "bench_document"
  "bench_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
