# Empty compiler generated dependencies file for bench_document.
# This may be replaced when dependencies are built.
