# Empty dependencies file for adaptive_imaging.
# This may be replaced when dependencies are built.
