file(REMOVE_RECURSE
  "CMakeFiles/adaptive_imaging.dir/adaptive_imaging.cc.o"
  "CMakeFiles/adaptive_imaging.dir/adaptive_imaging.cc.o.d"
  "adaptive_imaging"
  "adaptive_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
