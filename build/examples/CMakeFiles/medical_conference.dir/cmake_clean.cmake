file(REMOVE_RECURSE
  "CMakeFiles/medical_conference.dir/medical_conference.cc.o"
  "CMakeFiles/medical_conference.dir/medical_conference.cc.o.d"
  "medical_conference"
  "medical_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
