# Empty compiler generated dependencies file for medical_conference.
# This may be replaced when dependencies are built.
