file(REMOVE_RECURSE
  "CMakeFiles/similar_cases.dir/similar_cases.cc.o"
  "CMakeFiles/similar_cases.dir/similar_cases.cc.o.d"
  "similar_cases"
  "similar_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similar_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
