# Empty compiler generated dependencies file for similar_cases.
# This may be replaced when dependencies are built.
