# Empty compiler generated dependencies file for audio_browsing.
# This may be replaced when dependencies are built.
