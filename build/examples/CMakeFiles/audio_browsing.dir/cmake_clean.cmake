file(REMOVE_RECURSE
  "CMakeFiles/audio_browsing.dir/audio_browsing.cc.o"
  "CMakeFiles/audio_browsing.dir/audio_browsing.cc.o.d"
  "audio_browsing"
  "audio_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
