
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/authoring.cc" "src/CMakeFiles/mmconf_doc.dir/doc/authoring.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/authoring.cc.o.d"
  "/root/repo/src/doc/builder.cc" "src/CMakeFiles/mmconf_doc.dir/doc/builder.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/builder.cc.o.d"
  "/root/repo/src/doc/component.cc" "src/CMakeFiles/mmconf_doc.dir/doc/component.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/component.cc.o.d"
  "/root/repo/src/doc/document.cc" "src/CMakeFiles/mmconf_doc.dir/doc/document.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/document.cc.o.d"
  "/root/repo/src/doc/presentation.cc" "src/CMakeFiles/mmconf_doc.dir/doc/presentation.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/presentation.cc.o.d"
  "/root/repo/src/doc/tuning.cc" "src/CMakeFiles/mmconf_doc.dir/doc/tuning.cc.o" "gcc" "src/CMakeFiles/mmconf_doc.dir/doc/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_cpnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
