file(REMOVE_RECURSE
  "libmmconf_doc.a"
)
