# Empty compiler generated dependencies file for mmconf_doc.
# This may be replaced when dependencies are built.
