file(REMOVE_RECURSE
  "CMakeFiles/mmconf_doc.dir/doc/authoring.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/authoring.cc.o.d"
  "CMakeFiles/mmconf_doc.dir/doc/builder.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/builder.cc.o.d"
  "CMakeFiles/mmconf_doc.dir/doc/component.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/component.cc.o.d"
  "CMakeFiles/mmconf_doc.dir/doc/document.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/document.cc.o.d"
  "CMakeFiles/mmconf_doc.dir/doc/presentation.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/presentation.cc.o.d"
  "CMakeFiles/mmconf_doc.dir/doc/tuning.cc.o"
  "CMakeFiles/mmconf_doc.dir/doc/tuning.cc.o.d"
  "libmmconf_doc.a"
  "libmmconf_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
