file(REMOVE_RECURSE
  "CMakeFiles/mmconf_search.dir/search/descriptors.cc.o"
  "CMakeFiles/mmconf_search.dir/search/descriptors.cc.o.d"
  "CMakeFiles/mmconf_search.dir/search/similarity_index.cc.o"
  "CMakeFiles/mmconf_search.dir/search/similarity_index.cc.o.d"
  "CMakeFiles/mmconf_search.dir/search/text_index.cc.o"
  "CMakeFiles/mmconf_search.dir/search/text_index.cc.o.d"
  "libmmconf_search.a"
  "libmmconf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
