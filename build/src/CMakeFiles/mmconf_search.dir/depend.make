# Empty dependencies file for mmconf_search.
# This may be replaced when dependencies are built.
