file(REMOVE_RECURSE
  "libmmconf_search.a"
)
