# Empty compiler generated dependencies file for mmconf_cpnet.
# This may be replaced when dependencies are built.
