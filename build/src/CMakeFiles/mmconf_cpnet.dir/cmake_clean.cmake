file(REMOVE_RECURSE
  "CMakeFiles/mmconf_cpnet.dir/cpnet/assignment.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/assignment.cc.o.d"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/brute_force.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/brute_force.cc.o.d"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/cpnet.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/cpnet.cc.o.d"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/cpt.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/cpt.cc.o.d"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/serialize.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/serialize.cc.o.d"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/update.cc.o"
  "CMakeFiles/mmconf_cpnet.dir/cpnet/update.cc.o.d"
  "libmmconf_cpnet.a"
  "libmmconf_cpnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_cpnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
