file(REMOVE_RECURSE
  "libmmconf_cpnet.a"
)
