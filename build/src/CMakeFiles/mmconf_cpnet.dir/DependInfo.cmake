
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpnet/assignment.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/assignment.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/assignment.cc.o.d"
  "/root/repo/src/cpnet/brute_force.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/brute_force.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/brute_force.cc.o.d"
  "/root/repo/src/cpnet/cpnet.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/cpnet.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/cpnet.cc.o.d"
  "/root/repo/src/cpnet/cpt.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/cpt.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/cpt.cc.o.d"
  "/root/repo/src/cpnet/serialize.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/serialize.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/serialize.cc.o.d"
  "/root/repo/src/cpnet/update.cc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/update.cc.o" "gcc" "src/CMakeFiles/mmconf_cpnet.dir/cpnet/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
