file(REMOVE_RECURSE
  "CMakeFiles/mmconf_client.dir/client/client.cc.o"
  "CMakeFiles/mmconf_client.dir/client/client.cc.o.d"
  "CMakeFiles/mmconf_client.dir/client/layout.cc.o"
  "CMakeFiles/mmconf_client.dir/client/layout.cc.o.d"
  "libmmconf_client.a"
  "libmmconf_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
