file(REMOVE_RECURSE
  "libmmconf_client.a"
)
