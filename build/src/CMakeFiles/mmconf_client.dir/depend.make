# Empty dependencies file for mmconf_client.
# This may be replaced when dependencies are built.
