file(REMOVE_RECURSE
  "CMakeFiles/mmconf_common.dir/common/bytes.cc.o"
  "CMakeFiles/mmconf_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/mmconf_common.dir/common/clock.cc.o"
  "CMakeFiles/mmconf_common.dir/common/clock.cc.o.d"
  "CMakeFiles/mmconf_common.dir/common/rng.cc.o"
  "CMakeFiles/mmconf_common.dir/common/rng.cc.o.d"
  "CMakeFiles/mmconf_common.dir/common/status.cc.o"
  "CMakeFiles/mmconf_common.dir/common/status.cc.o.d"
  "libmmconf_common.a"
  "libmmconf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
