# Empty compiler generated dependencies file for mmconf_common.
# This may be replaced when dependencies are built.
