file(REMOVE_RECURSE
  "libmmconf_common.a"
)
