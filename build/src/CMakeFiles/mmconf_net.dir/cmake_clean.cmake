file(REMOVE_RECURSE
  "CMakeFiles/mmconf_net.dir/net/network.cc.o"
  "CMakeFiles/mmconf_net.dir/net/network.cc.o.d"
  "libmmconf_net.a"
  "libmmconf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
