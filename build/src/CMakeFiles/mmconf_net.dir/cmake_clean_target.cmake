file(REMOVE_RECURSE
  "libmmconf_net.a"
)
