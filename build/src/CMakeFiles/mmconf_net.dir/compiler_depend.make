# Empty compiler generated dependencies file for mmconf_net.
# This may be replaced when dependencies are built.
