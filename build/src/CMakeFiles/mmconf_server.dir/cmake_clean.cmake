file(REMOVE_RECURSE
  "CMakeFiles/mmconf_server.dir/server/interaction_server.cc.o"
  "CMakeFiles/mmconf_server.dir/server/interaction_server.cc.o.d"
  "CMakeFiles/mmconf_server.dir/server/room.cc.o"
  "CMakeFiles/mmconf_server.dir/server/room.cc.o.d"
  "libmmconf_server.a"
  "libmmconf_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
