file(REMOVE_RECURSE
  "libmmconf_server.a"
)
