# Empty dependencies file for mmconf_server.
# This may be replaced when dependencies are built.
