file(REMOVE_RECURSE
  "libmmconf_storage.a"
)
