file(REMOVE_RECURSE
  "CMakeFiles/mmconf_storage.dir/storage/blob_store.cc.o"
  "CMakeFiles/mmconf_storage.dir/storage/blob_store.cc.o.d"
  "CMakeFiles/mmconf_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/mmconf_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/mmconf_storage.dir/storage/cmp_store.cc.o"
  "CMakeFiles/mmconf_storage.dir/storage/cmp_store.cc.o.d"
  "CMakeFiles/mmconf_storage.dir/storage/database.cc.o"
  "CMakeFiles/mmconf_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/mmconf_storage.dir/storage/object_table.cc.o"
  "CMakeFiles/mmconf_storage.dir/storage/object_table.cc.o.d"
  "libmmconf_storage.a"
  "libmmconf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
