# Empty dependencies file for mmconf_storage.
# This may be replaced when dependencies are built.
