
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blob_store.cc" "src/CMakeFiles/mmconf_storage.dir/storage/blob_store.cc.o" "gcc" "src/CMakeFiles/mmconf_storage.dir/storage/blob_store.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/mmconf_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/mmconf_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/cmp_store.cc" "src/CMakeFiles/mmconf_storage.dir/storage/cmp_store.cc.o" "gcc" "src/CMakeFiles/mmconf_storage.dir/storage/cmp_store.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/mmconf_storage.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/mmconf_storage.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/object_table.cc" "src/CMakeFiles/mmconf_storage.dir/storage/object_table.cc.o" "gcc" "src/CMakeFiles/mmconf_storage.dir/storage/object_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
