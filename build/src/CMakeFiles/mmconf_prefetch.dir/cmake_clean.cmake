file(REMOVE_RECURSE
  "CMakeFiles/mmconf_prefetch.dir/prefetch/cache.cc.o"
  "CMakeFiles/mmconf_prefetch.dir/prefetch/cache.cc.o.d"
  "CMakeFiles/mmconf_prefetch.dir/prefetch/predictor.cc.o"
  "CMakeFiles/mmconf_prefetch.dir/prefetch/predictor.cc.o.d"
  "CMakeFiles/mmconf_prefetch.dir/prefetch/session.cc.o"
  "CMakeFiles/mmconf_prefetch.dir/prefetch/session.cc.o.d"
  "libmmconf_prefetch.a"
  "libmmconf_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
