# Empty compiler generated dependencies file for mmconf_prefetch.
# This may be replaced when dependencies are built.
