file(REMOVE_RECURSE
  "libmmconf_prefetch.a"
)
