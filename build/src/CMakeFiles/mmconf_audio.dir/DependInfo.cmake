
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/browser.cc" "src/CMakeFiles/mmconf_audio.dir/audio/browser.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/browser.cc.o.d"
  "/root/repo/src/audio/features.cc" "src/CMakeFiles/mmconf_audio.dir/audio/features.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/features.cc.o.d"
  "/root/repo/src/audio/gmm.cc" "src/CMakeFiles/mmconf_audio.dir/audio/gmm.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/gmm.cc.o.d"
  "/root/repo/src/audio/hmm.cc" "src/CMakeFiles/mmconf_audio.dir/audio/hmm.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/hmm.cc.o.d"
  "/root/repo/src/audio/segmentation.cc" "src/CMakeFiles/mmconf_audio.dir/audio/segmentation.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/segmentation.cc.o.d"
  "/root/repo/src/audio/speaker_spotting.cc" "src/CMakeFiles/mmconf_audio.dir/audio/speaker_spotting.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/speaker_spotting.cc.o.d"
  "/root/repo/src/audio/word_spotting.cc" "src/CMakeFiles/mmconf_audio.dir/audio/word_spotting.cc.o" "gcc" "src/CMakeFiles/mmconf_audio.dir/audio/word_spotting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
