file(REMOVE_RECURSE
  "libmmconf_audio.a"
)
