# Empty compiler generated dependencies file for mmconf_audio.
# This may be replaced when dependencies are built.
