file(REMOVE_RECURSE
  "CMakeFiles/mmconf_audio.dir/audio/browser.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/browser.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/features.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/features.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/gmm.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/gmm.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/hmm.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/hmm.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/segmentation.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/segmentation.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/speaker_spotting.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/speaker_spotting.cc.o.d"
  "CMakeFiles/mmconf_audio.dir/audio/word_spotting.cc.o"
  "CMakeFiles/mmconf_audio.dir/audio/word_spotting.cc.o.d"
  "libmmconf_audio.a"
  "libmmconf_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
