
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/best_basis.cc" "src/CMakeFiles/mmconf_compress.dir/compress/best_basis.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/best_basis.cc.o.d"
  "/root/repo/src/compress/bitstream.cc" "src/CMakeFiles/mmconf_compress.dir/compress/bitstream.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/bitstream.cc.o.d"
  "/root/repo/src/compress/layered_codec.cc" "src/CMakeFiles/mmconf_compress.dir/compress/layered_codec.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/layered_codec.cc.o.d"
  "/root/repo/src/compress/local_cosine.cc" "src/CMakeFiles/mmconf_compress.dir/compress/local_cosine.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/local_cosine.cc.o.d"
  "/root/repo/src/compress/quantizer.cc" "src/CMakeFiles/mmconf_compress.dir/compress/quantizer.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/quantizer.cc.o.d"
  "/root/repo/src/compress/wavelet.cc" "src/CMakeFiles/mmconf_compress.dir/compress/wavelet.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/wavelet.cc.o.d"
  "/root/repo/src/compress/wavelet_packet.cc" "src/CMakeFiles/mmconf_compress.dir/compress/wavelet_packet.cc.o" "gcc" "src/CMakeFiles/mmconf_compress.dir/compress/wavelet_packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
