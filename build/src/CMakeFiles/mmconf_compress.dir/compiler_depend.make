# Empty compiler generated dependencies file for mmconf_compress.
# This may be replaced when dependencies are built.
