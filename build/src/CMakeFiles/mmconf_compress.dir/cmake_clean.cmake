file(REMOVE_RECURSE
  "CMakeFiles/mmconf_compress.dir/compress/best_basis.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/best_basis.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/bitstream.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/bitstream.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/layered_codec.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/layered_codec.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/local_cosine.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/local_cosine.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/quantizer.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/quantizer.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/wavelet.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/wavelet.cc.o.d"
  "CMakeFiles/mmconf_compress.dir/compress/wavelet_packet.cc.o"
  "CMakeFiles/mmconf_compress.dir/compress/wavelet_packet.cc.o.d"
  "libmmconf_compress.a"
  "libmmconf_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
