file(REMOVE_RECURSE
  "libmmconf_compress.a"
)
