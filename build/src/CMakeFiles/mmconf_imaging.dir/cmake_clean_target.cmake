file(REMOVE_RECURSE
  "libmmconf_imaging.a"
)
