file(REMOVE_RECURSE
  "CMakeFiles/mmconf_imaging.dir/imaging/freeze.cc.o"
  "CMakeFiles/mmconf_imaging.dir/imaging/freeze.cc.o.d"
  "CMakeFiles/mmconf_imaging.dir/imaging/ops.cc.o"
  "CMakeFiles/mmconf_imaging.dir/imaging/ops.cc.o.d"
  "libmmconf_imaging.a"
  "libmmconf_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
