
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/freeze.cc" "src/CMakeFiles/mmconf_imaging.dir/imaging/freeze.cc.o" "gcc" "src/CMakeFiles/mmconf_imaging.dir/imaging/freeze.cc.o.d"
  "/root/repo/src/imaging/ops.cc" "src/CMakeFiles/mmconf_imaging.dir/imaging/ops.cc.o" "gcc" "src/CMakeFiles/mmconf_imaging.dir/imaging/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_media.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
