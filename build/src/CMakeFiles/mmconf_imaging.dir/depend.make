# Empty dependencies file for mmconf_imaging.
# This may be replaced when dependencies are built.
