# Empty compiler generated dependencies file for mmconf_media.
# This may be replaced when dependencies are built.
