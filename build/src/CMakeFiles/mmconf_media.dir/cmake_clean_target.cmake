file(REMOVE_RECURSE
  "libmmconf_media.a"
)
