
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cc" "src/CMakeFiles/mmconf_media.dir/media/audio.cc.o" "gcc" "src/CMakeFiles/mmconf_media.dir/media/audio.cc.o.d"
  "/root/repo/src/media/image.cc" "src/CMakeFiles/mmconf_media.dir/media/image.cc.o" "gcc" "src/CMakeFiles/mmconf_media.dir/media/image.cc.o.d"
  "/root/repo/src/media/synthetic.cc" "src/CMakeFiles/mmconf_media.dir/media/synthetic.cc.o" "gcc" "src/CMakeFiles/mmconf_media.dir/media/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmconf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
