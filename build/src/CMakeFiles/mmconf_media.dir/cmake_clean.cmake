file(REMOVE_RECURSE
  "CMakeFiles/mmconf_media.dir/media/audio.cc.o"
  "CMakeFiles/mmconf_media.dir/media/audio.cc.o.d"
  "CMakeFiles/mmconf_media.dir/media/image.cc.o"
  "CMakeFiles/mmconf_media.dir/media/image.cc.o.d"
  "CMakeFiles/mmconf_media.dir/media/synthetic.cc.o"
  "CMakeFiles/mmconf_media.dir/media/synthetic.cc.o.d"
  "libmmconf_media.a"
  "libmmconf_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmconf_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
